#!/usr/bin/env python3
"""Watching the commit pipeline with the structured tracer.

Attaches a :class:`repro.sim.trace.Tracer` to a region and walks through
what §III.D/§III.E look like at runtime: asynchronous creates draining to
the DFS in the background, a barrier epoch fencing them, and the rmdir
discard rule eating a doomed straggler.

Run:  python examples/trace_commit_pipeline.py
"""

from repro.core import PaconConfig, PaconDeployment
from repro.dfs import BeeGFS
from repro.sim import Cluster, run_sync
from repro.sim.trace import Tracer


def main() -> None:
    cluster = Cluster(seed=2026)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"node{i}") for i in range(2)]
    pacon = PaconDeployment(cluster, dfs)
    region = pacon.create_region(PaconConfig(workspace="/job"), nodes)
    tracer = Tracer()
    region.tracer = tracer
    a = pacon.client(region, nodes[0])
    b = pacon.client(region, nodes[1])

    # A burst of asynchronous creates from both nodes...
    run_sync(cluster.env, a.mkdir("/job/out"))
    for i in range(4):
        run_sync(cluster.env, a.create(f"/job/out/a{i}"))
        run_sync(cluster.env, b.create(f"/job/out/b{i}"))
    # ...a readdir barrier that fences them all...
    names = run_sync(cluster.env, a.readdir("/job/out"))
    print(f"listing after barrier: {names}\n")
    # ...and an rmdir that discards whatever raced into the dying dir.
    run_sync(cluster.env, b.rmdir("/job/out"))

    print("commit-pipeline trace (per-node commit processes):")
    print(tracer.render())
    commits = len(list(tracer.events(kind="commit")))
    barriers = len(list(tracer.events(kind="barrier")))
    print(f"\n{commits} commits, {barriers} barrier passages,"
          f" {sum(cp.discarded for cp in region.commit_processes)}"
          " discards")
    print("same seed -> byte-identical trace: diffing two traces pinpoints"
          " any behavioural change")


if __name__ == "__main__":
    main()
