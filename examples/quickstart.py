#!/usr/bin/env python3
"""Quickstart: Pacon in five minutes.

Builds a complete simulated world — a BeeGFS-like DFS (1 MDS + 3 data
servers) and a Pacon consistent region over 4 client nodes — then walks
through the basic file interface: directories, files, inline small-file
data, listing, and removal.  Everything after `PaconFS(...)` looks like an
ordinary file-system API; the partial-consistency machinery (distributed
cache, commit queues, barriers) runs underneath.

Run:  python examples/quickstart.py
"""

from repro.core import PaconFS


def main() -> None:
    # One application: workspace /myapp, running on 4 client nodes.
    fs = PaconFS(workspace="/myapp", nodes=4)

    # -- metadata writes are absorbed by the distributed cache ---------
    fs.mkdir("/myapp/results")
    for i in range(10):
        fs.create(f"/myapp/results/run-{i:02d}.dat")
    print(f"created 10 files in {fs.now * 1e3:.2f} ms of simulated time")

    # They are already visible with strong consistency inside the region…
    assert fs.exists("/myapp/results/run-00.dat")
    # …but the DFS (backup copy) catches up asynchronously:
    print(f"DFS currently holds {fs.dfs_namespace_entries()} entries;"
          f" cache holds {fs.cache_items()}")
    fs.quiesce()   # wait for the commit queues to drain
    print(f"after quiesce the DFS holds {fs.dfs_namespace_entries()}")

    # -- small files live inline with their metadata -------------------
    fs.write("/myapp/results/run-00.dat", 0, data=b"temperature=42\n")
    print("read back:", fs.read("/myapp/results/run-00.dat", 0, 15))
    print("file size:", fs.stat("/myapp/results/run-00.dat").size, "bytes")

    # -- readdir/rmdir are the barrier-committed operations ------------
    names = fs.readdir("/myapp/results")          # barriers, then lists
    print(f"listing sees all {len(names)} files: {names[:3]} ...")
    fs.rm("/myapp/results/run-09.dat")
    removed = fs.rmdir("/myapp/results")          # recursive, synchronous
    print(f"rmdir removed {removed} entries")

    fs.close()
    print(f"done; total simulated time {fs.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
