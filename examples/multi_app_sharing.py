#!/usr/bin/env python3
"""Two applications sharing data by merging consistent regions (§III.B
case 2, §III.D.4).

A producer application writes results in its own workspace; a consumer
application runs in a different workspace.  Without a merge, the consumer
only sees whatever has already committed to the DFS (weak consistency
across regions).  After merging, the consumer reads the producer's
distributed cache directly — strongly consistent, and read-only.

Run:  python examples/multi_app_sharing.py
"""

from repro.core import PaconConfig, PaconDeployment
from repro.core.permissions import PermissionSpec
from repro.core.region import ReadOnlyRegion
from repro.dfs import BeeGFS, FileNotFound
from repro.sim import Cluster, run_sync


def main() -> None:
    cluster = Cluster(seed=42)
    dfs = BeeGFS(cluster)
    producer_nodes = [cluster.add_node(f"prod{i}") for i in range(2)]
    consumer_nodes = [cluster.add_node(f"cons{i}") for i in range(2)]
    pacon = PaconDeployment(cluster, dfs)

    # Each application declares its workspace and (share-friendly 0o755)
    # permission information up front — batch permission management.
    producer_region = pacon.create_region(
        PaconConfig(workspace="/producer", uid=1001, gid=1001,
                    permissions=PermissionSpec(0o755, 1001, 1001)),
        producer_nodes)
    consumer_region = pacon.create_region(
        PaconConfig(workspace="/consumer", uid=1002, gid=1002,
                    permissions=PermissionSpec(0o755, 1002, 1002)),
        consumer_nodes)

    producer = pacon.client(producer_region, producer_nodes[0])
    consumer = pacon.client(consumer_region, consumer_nodes[0])

    # Producer writes a result (async commit — not on the DFS yet).
    run_sync(cluster.env, producer.mkdir("/producer/out"))
    run_sync(cluster.env, producer.create("/producer/out/table.csv"))
    run_sync(cluster.env,
             producer.write("/producer/out/table.csv", 0,
                            data=b"x,y\n1,2\n"))

    # Before merging: the consumer is redirected to the DFS and may see
    # nothing (weak consistency between regions).
    try:
        run_sync(cluster.env, consumer.getattr("/producer/out/table.csv"))
        print("consumer saw the file via the DFS (commit already landed)")
    except FileNotFound:
        print("before merge: consumer cannot see the uncommitted file"
              " (expected: weak consistency across regions)")

    # Merge the regions: exchange region info, connect the caches.
    consumer_region.merge(producer_region)
    inode = run_sync(cluster.env,
                     consumer.getattr("/producer/out/table.csv"))
    data = run_sync(cluster.env,
                    consumer.read("/producer/out/table.csv", 0, inode.size))
    print(f"after merge: consumer reads {inode.size} bytes"
          f" strongly-consistently: {data!r}")

    # Merged access is read-only (§III.D.4).
    try:
        run_sync(cluster.env, consumer.create("/producer/out/hack.txt"))
    except ReadOnlyRegion as exc:
        print(f"write into the merged region correctly rejected: {exc}")

    pacon.quiesce_sync(producer_region)
    print(f"done; simulated time {cluster.env.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
