#!/usr/bin/env python3
"""Batch permission management vs hierarchical path traversal (§III.C).

Builds progressively deeper fanout trees on BeeGFS, IndexFS, and Pacon and
measures random stat throughput of the leaf directories — the experiment
behind the paper's Figs. 2 and 9.  On the traversal-bound systems each
extra level costs network round trips; Pacon's full-path keys plus batch
permission checks keep the curve flat.

Run:  python examples/deep_namespace_stat.py
"""

from repro.bench.fig02 import stat_throughput_at_depth


def main() -> None:
    fanout, nodes, cpn, stats = 3, 2, 5, 40
    systems = ("beegfs", "indexfs", "pacon")
    print(f"random leaf-dir stat, fanout={fanout}, {nodes * cpn} clients\n")
    print(f"{'depth':>5} " + "".join(f"{s:>12}" for s in systems))
    base = {}
    for depth in (3, 4, 5, 6):
        row = f"{depth:>5} "
        for system in systems:
            ops = stat_throughput_at_depth(system, depth, fanout, nodes,
                                           cpn, stats)
            base.setdefault(system, ops)
            row += f"{ops:>12,.0f}"
        print(row)
    print("\nloss at depth 6 vs depth 3:")
    for system in systems:
        deep = stat_throughput_at_depth(system, 6, fanout, nodes, cpn,
                                        stats)
        loss = (1 - deep / base[system]) * 100
        print(f"  {system:>8}: {loss:5.1f}%"
              + ("   <- flat: no path traversal" if system == "pacon"
                 else ""))


if __name__ == "__main__":
    main()
