#!/usr/bin/env python3
"""Run the MADbench2-derived application benchmark on Pacon and BeeGFS.

Reproduces the shape of the paper's Fig. 12 at laptop scale: a
data-intensive scientific workload where every file exceeds the
small-file threshold, so Pacon redirects the I/O to the DFS and the two
systems finish in nearly the same time — the metadata win only shows in
the (small) init phase.

Run:  python examples/madbench_run.py
"""

from repro.bench.systems import make_testbed
from repro.workloads.madbench import MadbenchConfig, run_madbench


def main() -> None:
    config = MadbenchConfig(workdir="/madbench",
                            file_size=1 * 1024 * 1024,
                            iterations=3)
    results = {}
    for system in ("beegfs", "pacon"):
        bed = make_testbed(system, n_apps=1, nodes_per_app=4,
                           clients_per_node=4, workdir_base="/madbench")
        results[system] = run_madbench(bed.env, bed.clients, config)
        bed.quiesce()

    base = results["beegfs"].total_time
    print(f"{'system':>8} {'total':>8} {'init%':>7} {'write%':>7}"
          f" {'read%':>7} {'other%':>7}")
    for system, r in results.items():
        s = r.shares()
        print(f"{system:>8} {r.total_time / base:>8.3f}"
              f" {s['init'] * 100:>7.2f} {s['write'] * 100:>7.1f}"
              f" {s['read'] * 100:>7.1f} {s['other'] * 100:>7.1f}")
    ratio = results["pacon"].total_time / base
    print(f"\nPacon/BeeGFS total runtime = {ratio:.3f} — data-intensive"
          " workloads are unaffected (paper Fig. 12)")


if __name__ == "__main__":
    main()
