#!/usr/bin/env python3
"""Failure recovery with region checkpoints (§III.G).

A client node crashes mid-run, destroying its cache shard and its queued
(uncommitted) operations.  The region recovers by rolling its workspace
subtree on the DFS back to the latest checkpoint and rebuilding the
distributed cache from it — nothing outside the region is touched.

Run:  python examples/checkpoint_recovery.py
"""

from repro.core import PaconConfig, PaconDeployment
from repro.core.failure import fail_node, recover_node
from repro.dfs import BeeGFS
from repro.sim import Cluster, run_sync


def main() -> None:
    cluster = Cluster(seed=7)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"node{i}") for i in range(4)]
    pacon = PaconDeployment(cluster, dfs)
    region = pacon.create_region(PaconConfig(workspace="/sim"), nodes)
    client = pacon.client(region, nodes[0])

    # Phase 1: stable work, committed and checkpointed.
    run_sync(cluster.env, client.mkdir("/sim/epoch-0"))
    for i in range(20):
        run_sync(cluster.env, client.create(f"/sim/epoch-0/state.{i}"))
    pacon.quiesce_sync(region)
    checkpointer = pacon.checkpointer(region)
    cp = run_sync(cluster.env, checkpointer.checkpoint())
    print(f"checkpoint taken at t={cp.taken_at * 1e3:.2f} ms"
          f" covering {cp.entries} entries")

    # Phase 2: new work queued on the node that is about to die.
    doomed_client = pacon.client(region, nodes[2])
    run_sync(cluster.env, doomed_client.mkdir("/sim/epoch-1"))
    for i in range(10):
        run_sync(cluster.env, doomed_client.create(f"/sim/epoch-1/x.{i}"))

    report = fail_node(region, nodes[2])
    print(f"node {report.node_name} crashed: lost"
          f" {report.lost_cache_entries} cached records and"
          f" {report.lost_queued_ops} queued ops")

    # Phase 3: recover — bring the node back, roll back, rebuild.
    recover_node(region, nodes[2])
    restored = run_sync(cluster.env, checkpointer.restore())
    print(f"rolled back to checkpoint: {restored} entries restored")

    assert dfs.namespace.exists("/sim/epoch-0/state.0")
    assert not dfs.namespace.exists("/sim/epoch-1")
    print("epoch-0 state intact; partially-committed epoch-1 rolled back")

    # The region is fully operational again.
    survivor = pacon.client(region, nodes[2])
    run_sync(cluster.env, survivor.create("/sim/epoch-0/after-recovery"))
    pacon.quiesce_sync(region)
    assert dfs.namespace.exists("/sim/epoch-0/after-recovery")
    print("post-recovery writes commit normally;"
          f" simulated time {cluster.env.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
