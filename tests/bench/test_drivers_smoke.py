"""Smoke tests: every experiment driver runs and emits sane rows.

These do not re-assert the paper's quantitative shapes (that is what
``benchmarks/`` does); they pin the drivers' row schemas and basic sanity
so refactors cannot silently break the harness.
"""

import pytest

from repro.bench import (
    ablations,
    fig01,
    fig02,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    latency,
    sensitivity,
    staleness,
    table1,
)


class TestDriverSchemas:
    def test_fig01(self):
        r = fig01.run("smoke")
        assert {row["system"] for row in r.rows} == {"beegfs", "indexfs"}
        assert all(row["ops_per_sec"] > 0 for row in r.rows)
        assert all(row["multiple"] > 0 for row in r.rows)

    def test_fig02(self):
        r = fig02.run("smoke")
        depths = fig02.SCALES["smoke"]["depths"]
        assert len(r.rows) == 2 * len(depths)
        assert r.rows[0]["loss_vs_shallowest_pct"] == 0

    def test_table1(self):
        r = table1.run("smoke")
        assert len(r.rows) == len(table1.DESIGN_TABLE)
        assert all(row["observed"] == "match" for row in r.rows)

    def test_fig07(self):
        r = fig07.run("smoke")
        assert {row["system"] for row in r.rows} == \
            {"beegfs", "indexfs", "pacon"}
        for row in r.rows:
            assert row["mkdir"] > 0 and row["create"] > 0 and \
                row["stat"] > 0

    def test_fig08(self):
        r = fig08.run("smoke")
        apps = fig08.SCALES["smoke"]["app_counts"]
        assert len(r.rows) == 3 * len(apps)

    def test_fig09(self):
        r = fig09.run("smoke")
        assert {row["system"] for row in r.rows} == \
            {"beegfs", "indexfs", "pacon"}

    def test_fig10(self):
        r = fig10.run("smoke")
        for row in r.rows:
            assert 0 < row["pacon_vs_memcached_pct"] < 100

    def test_fig11(self):
        r = fig11.run("smoke")
        for system in ("beegfs", "indexfs", "pacon"):
            rows = r.where(system=system)
            assert rows[0]["normalized"] == 1.0

    def test_fig12(self):
        r = fig12.run("smoke")
        assert len(r.rows) == 2
        for row in r.rows:
            shares = (row["init_pct"] + row["write_pct"] + row["read_pct"]
                      + row["other_pct"])
            assert shares == pytest.approx(100, abs=1.5)

    def test_latency(self):
        r = latency.run("smoke")
        assert len(r.rows) == 3
        for row in r.rows:
            assert row["p50_us"] > 0
            assert row["p99_us"] >= row["p50_us"]

    def test_sensitivity(self):
        r = sensitivity.run("smoke")
        assert all(row["pacon_wins"] == "yes" for row in r.rows)
        knobs = {row["knob"] for row in r.rows}
        assert knobs == {"network", "mds"}

    def test_staleness(self):
        r = staleness.run("smoke")
        batches = staleness.SCALES["smoke"]["batch_sizes"]
        assert [row["batch"] for row in r.rows] == batches
        for row in r.rows:
            assert row["reads_shared"] + row["reads_private"] \
                + row["reads_mds"] > 0
            assert row["stale_p99"] >= row["stale_p50"] >= 0
            assert row["vis_global_p99"] >= row["vis_commit_p99"] > 0
            # Every sweep point quiesced: partial consistency converged.
            assert row["pending_end"] == 0
        assert r.derived["consistency.staleness_p99"] == \
            max(row["stale_p99"] for row in r.rows)

    def test_ablations(self):
        results = ablations.run_all("smoke")
        assert [r.experiment for r in results] == \
            ["ablA", "ablB", "ablC", "ablD", "ablE"]
        assert all(r.rows for r in results)
