"""Benchmark snapshot contract: build, validate, byte-identity, diffing.

The regression gate's whole value rests on two properties pinned here:
(1) every driver lands in the snapshot with its parameters, seed, rows,
and derived claims, and (2) two same-seed runs are byte-identical in the
simulated subset, which is what licenses exact comparison as the default
regression check.
"""

import copy
import json

import pytest

from repro.bench import runner
from repro.bench.baseline import (
    DEFAULT_HOST_THRESHOLD,
    compare_snapshots,
    flatten_metrics,
    history_rows,
    render_comparison,
    render_history,
    sparkline,
)
from repro.bench.snapshot import (
    BENCH_SCHEMA,
    SnapshotError,
    build_snapshot,
    collect_snapshot_paths,
    load_snapshot,
    simulated_view,
    snapshot_path,
    to_json,
    write_snapshot,
)
from repro.bench.systems import DEFAULT_SEED
from repro.obs.schema import validate_bench

EXPECTED_EXPERIMENTS = {
    "fig01", "fig02", "table1", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "latency", "sensitivity", "staleness",
    "ablA", "ablB", "ablC", "ablD", "ablE",
}


@pytest.fixture(scope="module")
def snapshot_pair():
    """Two full smoke sweeps with the same seed, as snapshot docs."""
    docs = []
    for label, wall in (("one", 0.25), ("two", 0.5)):
        results = runner.run_all("smoke", verbose=False)
        docs.append(build_snapshot(results, label=label, scale="smoke",
                                   seed=DEFAULT_SEED, wall_clock_s=wall))
    return docs


class TestSnapshotBuild:
    def test_record_per_driver(self, snapshot_pair):
        doc = snapshot_pair[0]
        assert set(doc["experiments"]) == EXPECTED_EXPERIMENTS

    def test_conforms_to_schema(self, snapshot_pair):
        assert validate_bench(snapshot_pair[0]) == []

    def test_every_record_is_seeded_and_parameterized(self, snapshot_pair):
        for name, record in snapshot_pair[0]["experiments"].items():
            assert record["seed"] == DEFAULT_SEED, name
            assert record["rows"], name
            assert record["derived"], name
            assert "wall_clock_s" in record["host"], name

    def test_same_seed_runs_byte_identical_in_simulated_view(
            self, snapshot_pair):
        one, two = snapshot_pair
        assert to_json(simulated_view(one)) == to_json(simulated_view(two))

    def test_simulated_view_strips_host_and_label(self, snapshot_pair):
        view = simulated_view(snapshot_pair[0])
        assert "host" not in view and "label" not in view
        assert all("host" not in rec for rec in view["experiments"].values())
        # ...without mutating the original document.
        assert "host" in snapshot_pair[0]

    def test_roundtrip(self, snapshot_pair, tmp_path):
        path = snapshot_path("one", str(tmp_path))
        assert write_snapshot(snapshot_pair[0], path) == path
        assert load_snapshot(path) == snapshot_pair[0]
        assert collect_snapshot_paths(str(tmp_path)) == [path]

    def test_write_refuses_nonconformant_doc(self, tmp_path):
        with pytest.raises(SnapshotError, match="experiments"):
            write_snapshot({"schema": BENCH_SCHEMA},
                           str(tmp_path / "bad.json"))

    def test_load_refuses_foreign_schema(self, snapshot_pair, tmp_path):
        doc = copy.deepcopy(snapshot_pair[0])
        doc["schema"] = "pacon.bench/v99"
        path = tmp_path / "BENCH_v99.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="pacon.bench/v1"):
            load_snapshot(str(path))

class TestFlatten:
    def test_simulated_and_host_kinds(self, snapshot_pair):
        metrics = flatten_metrics(snapshot_pair[0])
        assert metrics["fig07.derived.create_speedup_vs_beegfs"].kind \
            == "simulated"
        assert metrics["host.wall_clock_s"].kind == "host"
        assert metrics["fig07.host.wall_clock_s"].kind == "host"

    def test_row_context_names_the_row(self, snapshot_pair):
        metrics = flatten_metrics(snapshot_pair[0])
        row_metrics = [m for name, m in metrics.items()
                       if name.startswith("fig07.rows[")]
        assert row_metrics
        assert any("system=pacon" in m.context for m in row_metrics)


class TestCompare:
    def test_identical_docs_compare_clean(self, snapshot_pair):
        comp = compare_snapshots(snapshot_pair[0],
                                 copy.deepcopy(snapshot_pair[0]))
        assert comp.ok
        assert not comp.regressions
        assert "OK" in render_comparison(comp)

    def test_same_seed_runs_compare_clean_ignoring_host(
            self, snapshot_pair):
        one, two = snapshot_pair
        comp = compare_snapshots(one, two, ignore_host=True)
        assert comp.ok

    def test_perturbed_simulated_metric_is_named(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["fig07"]["rows"][2]["create"] *= 0.9
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert not comp.ok
        names = [d.metric for d in comp.regressions]
        assert names == ["fig07.rows[2].create"]
        text = render_comparison(comp)
        assert "fig07.rows[2].create" in text
        assert "-10.00%" in text
        assert "must match exactly" in text
        assert "system=pacon" in text

    def test_tolerance_override_absolves(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["fig07"]["rows"][2]["create"] *= 0.9
        comp = compare_snapshots(
            snapshot_pair[0], doc, ignore_host=True,
            tolerances={"fig07.rows[2].create": 0.15})
        assert comp.ok

    def test_glob_tolerance(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["fig11"]["derived"]["scaling_vs_beegfs"] *= 1.01
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True,
                                 tolerances={"fig11.derived.*": 0.05})
        assert comp.ok

    def test_removed_simulated_metric_regresses(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        del doc["experiments"]["fig07"]["derived"][
            "create_speedup_vs_beegfs"]
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert not comp.ok
        assert comp.regressions[0].metric \
            == "fig07.derived.create_speedup_vs_beegfs"
        assert "disappeared" in comp.regressions[0].detail

    def test_added_metric_does_not_fail(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["fig07"]["derived"]["brand_new"] = 1.0
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert comp.ok
        assert comp.counts().get("added") == 1

    def test_host_growth_beyond_threshold_and_floor(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["host"]["wall_clock_s"] = \
            snapshot_pair[0]["host"]["wall_clock_s"] + 2.0
        comp = compare_snapshots(snapshot_pair[0], doc)
        bad = [d for d in comp.regressions
               if d.metric == "host.wall_clock_s"]
        assert bad and "host metrics may grow at most" in bad[0].detail

    def test_host_growth_under_absolute_floor_is_noise(
            self, snapshot_pair):
        # +0.25 s is over the default 50% threshold relative to the 0.25 s
        # baseline but under the 1 s absolute floor: not a regression.
        comp = compare_snapshots(snapshot_pair[0], snapshot_pair[1])
        assert all(d.metric != "host.wall_clock_s"
                   for d in comp.regressions)

    def test_ignore_host_drops_host_metrics(self, snapshot_pair):
        comp = compare_snapshots(snapshot_pair[0], snapshot_pair[1],
                                 ignore_host=True)
        assert all(d.kind == "simulated" for d in comp.deltas)

    def test_mismatched_schema_refused(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["schema"] = "pacon.bench/v2"
        with pytest.raises(SnapshotError, match="cannot compare"):
            compare_snapshots(snapshot_pair[0], doc)

    def test_seed_mismatch_warns(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["seed"] = DEFAULT_SEED + 1
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert any("seed differs" in w for w in comp.warnings)

    def test_host_threshold_configurable(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["host"]["wall_clock_s"] = \
            snapshot_pair[0]["host"]["wall_clock_s"] + 2.0
        comp = compare_snapshots(snapshot_pair[0], doc,
                                 host_threshold=1e6)
        assert comp.ok
        assert DEFAULT_HOST_THRESHOLD == pytest.approx(0.5)

    def test_sketch_quantiles_get_one_bucket_tolerance(self, snapshot_pair):
        # A sketch-derived percentile drifting within one log bucket
        # (growth 1.05) is quantization, not a regression.
        doc = copy.deepcopy(snapshot_pair[1])
        row = doc["experiments"]["staleness"]["rows"][0]
        row["stale_p99"] *= 1.04
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert comp.ok
        # Beyond one bucket it regresses like any simulated metric.
        row["stale_p99"] *= 1.10
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert not comp.ok
        assert comp.regressions[0].metric == "staleness.rows[0].stale_p99"

    def test_sketch_counts_stay_exact(self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["staleness"]["rows"][0]["reads_shared"] += 1
        comp = compare_snapshots(snapshot_pair[0], doc, ignore_host=True)
        assert not comp.ok

    def test_explicit_tolerance_overrides_sketch_default(
            self, snapshot_pair):
        doc = copy.deepcopy(snapshot_pair[1])
        doc["experiments"]["staleness"]["rows"][0]["stale_p99"] *= 1.04
        comp = compare_snapshots(
            snapshot_pair[0], doc, ignore_host=True,
            tolerances={"staleness.rows[0].stale_p99": 0.0})
        assert not comp.ok


class TestHistory:
    def test_default_rows_are_derived_claims(self, snapshot_pair):
        rows = history_rows(snapshot_pair)
        names = [row["metric"] for row in rows]
        assert "fig07.derived.create_speedup_vs_beegfs" in names
        assert "host.wall_clock_s" in names
        assert all(".rows[" not in n or n == "host.wall_clock_s"
                   for n in names)
        same_seed = [r for r in rows
                     if r["metric"].startswith("fig07.derived.")]
        assert all(r["delta"] == "=" for r in same_seed)

    def test_exact_metric_name_with_brackets(self, snapshot_pair):
        rows = history_rows(snapshot_pair,
                            metric_glob="fig07.rows[2].create")
        assert [row["metric"] for row in rows] \
            == ["fig07.rows[2].create"]

    def test_render_history_mentions_labels(self, snapshot_pair):
        text = render_history(snapshot_pair)
        assert "one -> two" in text
        assert "trend" in text

    def test_sparkline_shape(self):
        assert sparkline([1.0, None, 2.0]) == "▁·█"
        assert sparkline([3.0, 3.0]) == "▄▄"
        assert sparkline([]) == ""
