"""Unit tests for the bench result containers and renderers."""

import pytest

from repro.bench.report import ExperimentResult, fmt_ops, format_table, \
    write_markdown


class TestExperimentResult:
    def test_add_and_column(self):
        r = ExperimentResult("figX", "test")
        r.add(system="a", ops=1)
        r.add(system="b", ops=2)
        assert r.column("ops") == [1, 2]

    def test_where_and_value(self):
        r = ExperimentResult("figX", "test")
        r.add(system="a", depth=3, ops=10)
        r.add(system="a", depth=6, ops=5)
        assert r.value("ops", system="a", depth=6) == 5
        assert len(r.where(system="a")) == 2

    def test_value_ambiguous_raises(self):
        r = ExperimentResult("figX", "test")
        r.add(system="a", ops=1)
        r.add(system="a", ops=2)
        with pytest.raises(KeyError):
            r.value("ops", system="a")

    def test_render_contains_rows_and_notes(self):
        r = ExperimentResult("figX", "My Title")
        r.add(system="abc", ops=123)
        r.note("a note")
        text = r.render()
        assert "figX" in text and "My Title" in text
        assert "abc" in text and "123" in text
        assert "a note" in text


class TestFormatting:
    def test_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_ragged_rows(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_fmt_ops_scales(self):
        assert fmt_ops(1_500_000) == "1.50M"
        assert fmt_ops(12_300) == "12.3K"
        assert fmt_ops(42.0) == "42.0"

    def test_write_markdown(self, tmp_path):
        r = ExperimentResult("figX", "title")
        r.add(a=1, b=2.5)
        r.note("note text")
        out = tmp_path / "report.md"
        write_markdown([r], str(out))
        content = out.read_text()
        assert "## figX" in content
        assert "| a | b |" in content
        assert "note text" in content
