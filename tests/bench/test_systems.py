"""Tests for the testbed builders shared by all experiment drivers."""

import pytest

from repro.bench.systems import SYSTEMS, make_testbed
from repro.sim.core import run_sync


class TestMakeTestbed:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            make_testbed("lustre")

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_single_app_geometry(self, system):
        bed = make_testbed(system, n_apps=1, nodes_per_app=2,
                           clients_per_node=3)
        assert len(bed.apps) == 1
        assert len(bed.clients) == 6
        assert bed.app.workdir == "/app"

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_multi_app_geometry(self, system):
        bed = make_testbed(system, n_apps=3, nodes_per_app=2,
                           clients_per_node=2)
        assert [app.workdir for app in bed.apps] == ["/app0", "/app1",
                                                     "/app2"]
        # Apps get disjoint node sets.
        all_nodes = [n for app in bed.apps for n in app.nodes]
        assert len(all_nodes) == len(set(all_nodes)) == 6

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_workdir_usable_immediately(self, system):
        bed = make_testbed(system, n_apps=1, nodes_per_app=1,
                           clients_per_node=1)
        client = bed.clients[0]
        inode = run_sync(bed.env, client.create("/app/probe"))
        assert inode.is_file

    def test_pacon_regions_per_app(self):
        bed = make_testbed("pacon", n_apps=2, nodes_per_app=2,
                           clients_per_node=1)
        assert bed.apps[0].region is not bed.apps[1].region
        assert bed.apps[0].region.workspace == "/app0"

    def test_indexfs_colocated_with_all_client_nodes(self):
        bed = make_testbed("indexfs", n_apps=2, nodes_per_app=2,
                           clients_per_node=1)
        assert len(bed.indexfs.servers) == 4

    def test_beegfs_topology(self):
        bed = make_testbed("beegfs", n_apps=1, nodes_per_app=2,
                           clients_per_node=1, n_mds=2, n_data=4)
        assert len(bed.dfs.mds_servers) == 2
        assert len(bed.dfs.data_servers) == 4

    def test_quiesce_lands_pacon_commits(self):
        bed = make_testbed("pacon", n_apps=1, nodes_per_app=2,
                           clients_per_node=2)
        run_sync(bed.env, bed.clients[0].create("/app/f"))
        bed.quiesce()
        assert bed.dfs.namespace.exists("/app/f")

    def test_quiesce_noop_elsewhere(self):
        bed = make_testbed("beegfs", n_apps=1, nodes_per_app=1,
                           clients_per_node=1)
        bed.quiesce()  # must not raise

    def test_per_app_uids_differ(self):
        bed = make_testbed("beegfs", n_apps=2, nodes_per_app=1,
                           clients_per_node=1)
        assert bed.apps[0].clients[0].uid != bed.apps[1].clients[0].uid
