"""Fixtures for the observability tests: Pacon worlds with a hub attached."""

from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.core.client import PaconClient
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.core.region import ConsistentRegion
from repro.dfs.beegfs import BeeGFS
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster, Node
from repro.sim.trace import Tracer


@dataclass
class ObservedWorld:
    cluster: Cluster
    dfs: BeeGFS
    deployment: PaconDeployment
    region: ConsistentRegion
    nodes: List[Node]
    clients: List[PaconClient]
    hub: Optional[MetricsHub]

    @property
    def env(self):
        return self.cluster.env

    @property
    def client(self) -> PaconClient:
        return self.clients[0]

    def run(self, gen, label: str = "test"):
        return run_sync(self.env, gen, label=label)

    def quiesce(self):
        self.deployment.quiesce_sync(self.region)


def make_observed_world(seed: int = 7, n_nodes: int = 2,
                        clients_per_node: int = 1,
                        with_hub: bool = True,
                        with_tracer: bool = True,
                        sample_interval: Optional[float] = 100e-6,
                        start_commit: bool = True) -> ObservedWorld:
    cluster = Cluster(seed=seed)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"client{i}") for i in range(n_nodes)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(PaconConfig(workspace="/app"), nodes,
                                      start_commit=start_commit)
    hub = None
    if with_hub:
        hub = MetricsHub(tracer=Tracer() if with_tracer else None,
                         sample_interval=sample_interval)
        hub.attach_region(region)
    clients = [deployment.client(region, node) for node in nodes
               for _ in range(clients_per_node)]
    if hub is not None:
        for client in clients:
            hub.attach_client(client)
    return ObservedWorld(cluster=cluster, dfs=dfs, deployment=deployment,
                         region=region, nodes=nodes, clients=clients,
                         hub=hub)


@pytest.fixture
def observed() -> ObservedWorld:
    return make_observed_world()
