"""Chrome trace-event export: structure, windowing, byte determinism."""

import json

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.sim.trace import Tracer

from tests.obs.conftest import make_observed_world


def _workload(client, tag):
    yield from client.mkdir(f"/app/{tag}")
    for j in range(3):
        path = f"/app/{tag}/f{j}"
        yield from client.create(path)
        yield from client.getattr(path)


def _drive(world):
    for i, client in enumerate(world.clients):
        world.run(_workload(client, f"d{i}"), label=f"w{i}")
    world.quiesce()
    world.hub.stop_samplers()
    return world


class TestStructure:
    def test_spans_counters_metadata_present(self):
        world = _drive(make_observed_world())
        doc = chrome_trace(world.hub.tracer, world.hub)
        events = doc["traceEvents"]
        phases = {ev["ph"] for ev in events}
        assert {"X", "C", "M", "i"} <= phases
        ops = [ev for ev in events
               if ev["ph"] == "X" and ev["cat"] == "op"]
        assert len(ops) == len(world.hub.tracer.attributions())
        for ev in ops:
            assert ev["dur"] >= 0.0
            assert ev["ts"] >= 0.0
            assert ev["args"]["op_id"] > 0
        # Counter tracks live on the dedicated counters pid.
        counter_pids = {ev["pid"] for ev in events if ev["ph"] == "C"}
        assert counter_pids == {1}
        names = {ev["args"]["name"] for ev in events
                 if ev["ph"] == "M" and ev["name"] == "process_name"}
        assert "counters" in names and "client" in names

    def test_open_span_exported_as_begin_event(self):
        t = Tracer()
        ctx = t.root_context()
        t.emit(1.0, "client:x", "op.start", "create /f", op_id=ctx.op_id,
               span_id=ctx.span_id)
        doc = chrome_trace(t)
        (begin,) = [ev for ev in doc["traceEvents"] if ev["ph"] == "B"]
        assert begin["cat"] == "op"

    def test_window_filters_ops_by_root_start(self):
        world = _drive(make_observed_world())
        tracer = world.hub.tracer
        spans = sorted((s, op) for op, (s, e, d) in tracer.spans().items())
        cut = spans[len(spans) // 2][0]
        doc = chrome_trace(tracer, world.hub, since=cut)
        kept = [ev for ev in doc["traceEvents"]
                if ev["ph"] == "X" and ev["cat"] == "op"]
        expected = [op for s, op in spans if s >= cut]
        assert sorted(ev["args"]["op_id"] for ev in kept) == expected
        assert len(expected) < len(spans)


class TestControlPlaneTracks:
    def test_timeline_renders_on_control_plane_process(self):
        world = _drive(make_observed_world())
        tl = world.hub.timeline
        seq = tl.record(0.001, "chaos", "fault.injected", "mds_crash[0]")
        tl.record(0.003, "chaos", "fault.recovered", "mds_crash[0]",
                  ref=seq)
        tl.record(0.002, "autoscale", "scale.grow", "grow[node2]")
        doc = chrome_trace(world.hub.tracer, world.hub)
        control = [ev for ev in doc["traceEvents"]
                   if ev.get("pid") == 1_000_000]
        names = {ev["args"]["name"] for ev in control if ev["ph"] == "M"}
        assert {"control-plane", "chaos", "autoscale"} <= names
        # Injection/recovery pair folds into one complete slice.
        (fault,) = [ev for ev in control
                    if ev.get("cat") == "fault.injected"]
        assert fault["ph"] == "X"
        assert fault["dur"] == (0.003 - 0.001) * 1e6
        # The recovery event itself is folded away, not double-drawn.
        assert not any(ev.get("cat") == "fault.recovered"
                       for ev in control)
        (grow,) = [ev for ev in control if ev.get("cat") == "scale.grow"]
        assert grow["ph"] == "i"

    def test_incidents_render_as_slices_with_top_suspect(self):
        world = _drive(make_observed_world())
        incidents = [{"id": "INC-001", "rule": "commit-stall",
                      "series": "commit.stall_age", "start": 0.001,
                      "end": 0.004, "peak": 2.0, "bound": 0.5,
                      "suspects": [{"rank": 1, "seq": 1,
                                    "kind": "fault.injected",
                                    "label": "mds_crash[0]", "t": 0.001,
                                    "score": 1.0, "evidence": "e"}]}]
        doc = chrome_trace(world.hub.tracer, world.hub,
                           incidents=incidents)
        track = [ev for ev in doc["traceEvents"]
                 if ev.get("pid") == 1_000_001]
        (slice_,) = [ev for ev in track if ev["ph"] == "X"]
        assert slice_["name"] == "INC-001 commit-stall"
        assert slice_["args"]["top_suspect"] == "mds_crash[0]"
        assert slice_["dur"] == (0.004 - 0.001) * 1e6

    def test_disabled_hub_emits_no_control_tracks(self):
        world = _drive(make_observed_world())
        doc = chrome_trace(world.hub.tracer, hub=None)
        assert not any(ev.get("pid") in (1_000_000, 1_000_001)
                       for ev in doc["traceEvents"])


class TestDeterminism:
    def test_same_seed_runs_byte_identical(self, tmp_path):
        """Two same-seed observed runs must produce byte-identical Chrome
        trace files and byte-identical v2 metrics JSON."""
        paths = []
        jsons = []
        for run in ("a", "b"):
            world = _drive(make_observed_world(seed=13))
            path = tmp_path / f"trace_{run}.json"
            write_chrome_trace(str(path), world.hub.tracer, world.hub)
            paths.append(path)
            jsons.append(world.hub.to_json())
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert jsons[0] == jsons[1]

    def test_write_returns_event_count(self, tmp_path):
        world = _drive(make_observed_world())
        path = tmp_path / "out.json"
        count = write_chrome_trace(str(path), world.hub.tracer, world.hub)
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"]) > 0
        assert doc["displayTimeUnit"] == "ms"
