"""Cross-process determinism: same seed → byte-identical observable output.

Regression for the salted-``hash()`` shadow-file names: fsync used the
built-in ``hash(path)`` to name its DFS cache files, which varies with
``PYTHONHASHSEED`` — so two same-seed runs in different processes produced
different shadow paths, traces, and metrics exports.  The fix routes the
name through ``repro.sim.rng.stable_hash``.  This test runs the same
seeded workload in two subprocesses with *different* hash seeds and
requires identical output (shadow file listing + trace rendering +
MetricsHub JSON); it fails before the fix.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

SCRIPT = r"""
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster
from repro.sim.trace import Tracer

cluster = Cluster(seed=7)
dfs = BeeGFS(cluster)
nodes = [cluster.add_node(f"client{i}") for i in range(2)]
dep = PaconDeployment(cluster, dfs)
# start_commit=False keeps creates uncommitted, so fsync must park the
# inline bytes in hash-named shadow files on the DFS.
region = dep.create_region(PaconConfig(workspace="/app"), nodes,
                           start_commit=False)
hub = MetricsHub(tracer=Tracer(), sample_interval=100e-6)
hub.attach_region(region)
clients = [dep.client(region, node) for node in nodes]
for client in clients:
    hub.attach_client(client)


def work(client, tag):
    yield from client.mkdir(f"/app/{tag}")
    for j in range(4):
        path = f"/app/{tag}/f{j}"
        yield from client.create(path)
        yield from client.write(path, 0, size=512)
        yield from client.fsync(path)


for i, client in enumerate(clients):
    run_sync(cluster.env, work(client, f"d{i}"), label=f"work{i}")
dep.start_commit_processes(region)
dep.quiesce_sync(region)
hub.stop_samplers()

shadows = sorted(path for path, inode in
                 dfs.namespace.walk(region.dfs_shadow_dir)
                 if path != region.dfs_shadow_dir)
assert len(shadows) >= 8, f"expected shadow files, got {shadows}"
print("\n".join(shadows))
print("===")
print(hub.tracer.render(limit=100000))
print("===")
print(hub.to_json())
"""


def _run(hashseed: int) -> str:
    env = dict(os.environ, PYTHONHASHSEED=str(hashseed), PYTHONPATH=SRC)
    proc = subprocess.run([sys.executable, "-c", SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_output_identical_across_hash_seeds():
    assert _run(1) == _run(2)
