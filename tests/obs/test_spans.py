"""Per-operation spans: pairing, exception handling, zero-overhead path."""

import pytest

from repro.dfs.errors import FileNotFound

from tests.obs.conftest import make_observed_world


def _workload(client, tag):
    yield from client.mkdir(f"/app/{tag}")
    for j in range(3):
        path = f"/app/{tag}/f{j}"
        yield from client.create(path)
        yield from client.getattr(path)


class TestSpans:
    def test_ops_emit_paired_spans(self, observed):
        observed.run(_workload(observed.client, "d0"))
        tracer = observed.hub.tracer
        spans = tracer.spans()
        # mkdir + 3x(create, getattr) = 7 complete spans.
        assert len(spans) == 7
        for start, end, detail in spans.values():
            assert 0.0 <= start <= end
        starts = list(tracer.events(kind="op.start"))
        ends = list(tracer.events(kind="op.end"))
        assert len(starts) == len(ends) == 7

    def test_end_event_carries_outcome_and_classification(self, observed):
        observed.run(observed.client.mkdir("/app/d"))
        (end,) = observed.hub.tracer.events(kind="op.end")
        assert "[ok]" in end.detail
        # Table-I tags for mkdir: put / async / independent commit.
        assert "cache=put" in end.detail
        assert "comm=async" in end.detail
        assert "commit=indep" in end.detail

    def test_span_closes_when_op_raises(self, observed):
        with pytest.raises(FileNotFound):
            observed.run(observed.client.getattr("/app/nope"))
        tracer = observed.hub.tracer
        ends = list(tracer.events(kind="op.end"))
        assert len(ends) == 1
        assert "[FileNotFound]" in ends[0].detail
        # The span is paired even though the generator raised.
        assert len(tracer.spans()) == 1
        # And the hub counted it as an error, not a success.
        counters = observed.hub.stats.counters()
        assert counters["client.op.getattr.errors"] == 1

    def test_latency_histogram_fed_per_op_type(self, observed):
        observed.run(_workload(observed.client, "d0"))
        hists = observed.hub.stats.histograms()
        assert hists["client.op.mkdir.latency"]["count"] == 1
        assert hists["client.op.create.latency"]["count"] == 3
        assert hists["client.op.getattr.latency"]["count"] == 3
        assert hists["client.op.create.latency"]["mean"] > 0


class TestZeroOverhead:
    def test_disabled_returns_raw_generator(self):
        plain = make_observed_world(with_hub=False)
        gen = plain.client.mkdir("/app/x")
        # NULL_TRACER/NULL_HUB fast path: the decorator hands back the
        # undecorated generator, not the _spanned wrapper.
        assert gen.gi_code.co_name == "mkdir"
        gen.close()

    def test_enabled_wraps_in_span(self, observed):
        gen = observed.client.mkdir("/app/x")
        assert gen.gi_code.co_name == "_spanned"
        gen.close()

    def test_simulated_time_identical_with_and_without_observability(self):
        def drive(world):
            for i, client in enumerate(world.clients):
                world.run(_workload(client, f"d{i}"))
            world.quiesce()
            return world.env.now

        t_plain = drive(make_observed_world(seed=11, with_hub=False))
        t_obs = drive(make_observed_world(seed=11, with_hub=True))
        assert t_plain == t_obs
