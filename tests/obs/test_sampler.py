"""GaugeSampler lifecycle: clean shutdown and deterministic series."""

from repro.obs.hub import MetricsHub
from repro.obs.sampler import GaugeSampler
from repro.sim.core import Environment

from tests.obs.conftest import make_observed_world


def _workload(client, tag):
    yield from client.mkdir(f"/app/{tag}")
    for j in range(3):
        path = f"/app/{tag}/f{j}"
        yield from client.create(path)
        yield from client.getattr(path)


def _drive(world):
    for i, client in enumerate(world.clients):
        world.run(_workload(client, f"d{i}"), label=f"w{i}")
    return world


def _series_lengths(hub):
    return {name: len(points["t"])
            for name, points in hub.stats.series_export().items()}


def _advance(world, dt):
    def waiter():
        yield world.env.timeout(dt)
    world.run(waiter(), label="advance")


class TestShutdown:
    def test_series_stop_growing_after_queues_close(self):
        world = _drive(make_observed_world())
        world.quiesce()
        world.region.close()  # closes the queues; the sampler loop exits
        _advance(world, 2 * world.hub.sample_interval)  # loop's last check
        lengths = _series_lengths(world.hub)
        assert lengths, "sampler recorded nothing"
        _advance(world, 50 * world.hub.sample_interval)
        assert _series_lengths(world.hub) == lengths

    def test_series_stop_growing_after_stop_samplers(self):
        world = _drive(make_observed_world())
        # Queues still open: stop() alone must halt sampling.
        world.hub.stop_samplers()
        _advance(world, 2 * world.hub.sample_interval)  # loop takes a step
        lengths = _series_lengths(world.hub)
        _advance(world, 50 * world.hub.sample_interval)
        assert _series_lengths(world.hub) == lengths
        world.quiesce()

    def test_resource_util_series_recorded_and_bounded(self):
        world = _drive(make_observed_world())
        world.quiesce()
        world.hub.stop_samplers()
        series = world.hub.stats.series_export()
        util = {name: points for name, points in series.items()
                if name.startswith("resource.util[")}
        assert util, "no resource utilization series recorded"
        assert any(max(points["v"], default=0.0) > 0.0
                   for points in util.values())
        for name, points in util.items():
            for v in points["v"]:
                assert 0.0 <= v <= 1.0 + 1e-9, (name, v)

    def test_exported_series_identical_across_same_seed_runs(self):
        exports = []
        for _ in range(2):
            world = _drive(make_observed_world(seed=21))
            world.quiesce()
            world.hub.stop_samplers()
            exports.append(world.hub.stats.series_export())
        assert exports[0] == exports[1]


class TestFlightRecorderGauges:
    """The incident detector's input gauges: stall age and error rate."""

    def test_clean_run_records_zero_error_rate(self):
        world = _drive(make_observed_world())
        world.quiesce()
        world.hub.stop_samplers()
        series = world.hub.stats.series_export()
        assert "commit.stall_age[/app]" in series
        errors = series["client.error_rate[/app]"]["v"]
        assert errors and all(v == 0.0 for v in errors)
        assert all(v >= 0.0
                   for v in series["commit.stall_age[/app]"]["v"])

    def test_error_rate_is_per_tick_delta(self):
        world = make_observed_world(sample_interval=None)
        sampler = GaugeSampler(world.hub, world.region, interval=1e-4)
        sampler.sample_once()
        world.hub.observe_op("getattr", 1e-6, ok=False, weight=3)
        sampler.sample_once()
        sampler.sample_once()  # no new errors: delta back to zero
        rates = world.hub.stats.series_export()["client.error_rate[/app]"]["v"]
        assert rates == [0.0, 3.0, 0.0]

    def test_stall_age_grows_without_commit_progress_then_resets(self):
        world = make_observed_world(sample_interval=None,
                                    start_commit=False)
        for i in range(3):
            world.run(world.client.create(f"/app/f{i}"))
        sampler = GaugeSampler(world.hub, world.region, interval=1e-4)
        sampler.sample_once()
        _advance(world, 5e-4)
        sampler.sample_once()
        stalls = world.hub.stats.series_export()["commit.stall_age[/app]"]["v"]
        assert stalls[-1] > stalls[0] >= 0.0
        # Draining the pipeline is progress: the gauge snaps back to 0.
        world.deployment.start_commit_processes(world.region)
        world.quiesce()
        sampler.sample_once()
        stalls = world.hub.stats.series_export()["commit.stall_age[/app]"]["v"]
        assert stalls[-1] == 0.0


class _QueuelessRegion:
    """Minimal region stand-in: a cache-only region with no commit queues."""

    class _Queues:
        @staticmethod
        def queues():
            return ()

        @staticmethod
        def total_backlog():
            return 0

    class _Cache:
        @staticmethod
        def used_bytes():
            return 128

        @staticmethod
        def hit_rate():
            return 0.5

    def __init__(self, env):
        self.env = env
        self.name = "cacheonly"
        self.queues = self._Queues()
        self.cache = self._Cache()

    @staticmethod
    def oldest_outstanding_op_timestamp():
        return None


class TestZeroQueueRegion:
    """Regression: ``all(...)`` over a region with zero commit queues is
    vacuously True — the sampler used to exit after a single sample."""

    def test_sampler_keeps_running_with_no_queues(self):
        env = Environment()
        hub = MetricsHub()
        sampler = GaugeSampler(hub, _QueuelessRegion(env), interval=1.0)
        proc = sampler.start()
        env.run(until=10.5)
        assert proc.is_alive, "sampler exited on a queue-less region"
        assert sampler.samples >= 10

    def test_sampler_still_stops_on_request(self):
        env = Environment()
        hub = MetricsHub()
        sampler = GaugeSampler(hub, _QueuelessRegion(env), interval=1.0)
        proc = sampler.start()
        env.run(until=3.5)
        sampler.stop()
        env.run()
        assert not proc.is_alive
        taken = sampler.samples
        series = hub.stats.series_export()
        assert len(series["cache.used_bytes[cacheonly]"]["t"]) == taken

    def test_sampler_with_queues_still_exits_when_all_close(self):
        world = _drive(make_observed_world())
        world.quiesce()
        world.region.close()
        _advance(world, 2 * world.hub.sample_interval)
        for sampler in world.hub.samplers:
            assert not sampler._process.is_alive
