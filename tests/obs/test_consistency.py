"""Tests for the consistency observatory: the quantile sketch, the
staleness/visibility lens, the SLO engine, and the v3 schema."""

import json
import random

import pytest

from repro.obs import schema
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (BurnRateObjective, ErrorRatioObjective,
                           LatencyObjective, Policy, StalenessObjective,
                           default_policy, get_policy)
from tests.obs.conftest import make_observed_world


# --------------------------------------------------------------- sketch

class TestQuantileSketch:
    def test_percentiles_track_sorted_reference(self):
        rng = random.Random(0xC0FFEE)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        sketch = QuantileSketch("t")
        for v in values:
            sketch.observe(v)
        ordered = sorted(values)
        for q in (10, 50, 90, 95, 99):
            exact = ordered[min(len(ordered) - 1,
                                int(q / 100.0 * len(ordered)))]
            approx = sketch.percentile(q)
            # One log bucket of slack either way (growth 1.05), doubled
            # for the rank-interpolation difference at the reference.
            assert approx == pytest.approx(exact, rel=0.10)

    def test_count_sum_min_max_exact(self):
        sketch = QuantileSketch()
        values = [3.0, 1.5, 9.25, 0.125]
        for v in values:
            sketch.observe(v)
        assert sketch.count == len(values)
        assert sketch.total == pytest.approx(sum(values))
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.mean() == pytest.approx(sum(values) / len(values))

    def test_weighted_observe_equals_repeated(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.observe(2.5, weight=7)
        for _ in range(7):
            b.observe(2.5)
        assert a.export() == b.export()

    def test_zero_and_negative_land_in_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(-1.0)
        assert sketch.zero_count == 2
        assert len(sketch) == 0  # no log buckets allocated
        assert sketch.percentile(50) == 0.0

    def test_merge_associative_and_commutative(self):
        rng = random.Random(42)
        parts = []
        for _ in range(3):
            sk = QuantileSketch()
            for _ in range(200):
                sk.observe(rng.expovariate(1.0))
            parts.append(sk)

        def combine(order):
            out = QuantileSketch()
            for i in order:
                out.merge(parts[i])
            return out.export()

        assert combine([0, 1, 2]) == combine([2, 0, 1]) == combine([1, 2, 0])

    def test_merge_growth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(growth=1.05).merge(QuantileSketch(growth=1.1))

    def test_export_round_trip(self):
        sketch = QuantileSketch("rt")
        for v in (0.0, 0.5, 1.0, 2.0, 4.0):
            sketch.observe(v, weight=3)
        doc = json.loads(json.dumps(sketch.export()))
        back = QuantileSketch.from_export(doc, "rt")
        assert back.export() == sketch.export()
        assert back.percentile(95) == sketch.percentile(95)

    def test_summary_shares_histogram_keys(self):
        assert set(QuantileSketch().summary()) == \
            {"count", "mean", "p50", "p95", "p99", "max"}

    def test_constant_memory(self):
        sketch = QuantileSketch()
        rng = random.Random(1)
        for _ in range(20000):
            sketch.observe(rng.lognormvariate(0.0, 3.0))
        # Buckets span the observed range at O(log(max/min)) — far below
        # one bucket per sample.
        assert len(sketch) < 600


# ---------------------------------------------------------- staleness lens

class TestStalenessLens:
    def test_reads_tagged_by_tier_and_op(self):
        world = make_observed_world()
        for i in range(4):
            world.run(world.client.create(f"/app/f{i}"))
        for i in range(4):
            world.run(world.client.stat(f"/app/f{i}"))
        world.quiesce()
        world.hub.stop_samplers()
        cons = world.hub.consistency_snapshot()
        assert sum(cons["reads"].values()) > 0
        assert set(cons["reads"]) <= {"private", "shared", "mds"}
        assert cons["staleness"]["age"]["count"] == \
            sum(cons["reads"].values())
        # Per-tier:op sketches exist for every read tier.
        tiers = {name.split("[", 1)[1].split(":", 1)[0]
                 for name in cons["sketches"]
                 if name.startswith("consistency.staleness.age[")}
        assert tiers == set(cons["reads"])

    def test_visibility_recorded_per_committed_op(self):
        world = make_observed_world()
        for i in range(5):
            world.run(world.client.create(f"/app/v{i}"))
        world.quiesce()
        world.hub.stop_samplers()
        cons = world.hub.consistency_snapshot()
        committed = world.region.ops_committed
        assert cons["visibility"]["committed"]["count"] == committed
        assert cons["visibility"]["global"]["count"] == committed
        # Global visibility includes the post-commit cache flip, so it
        # can never beat committed visibility.
        assert cons["visibility"]["global"]["p99"] >= \
            cons["visibility"]["committed"]["p99"]

    def test_pending_mutations_drain_to_zero(self):
        world = make_observed_world()
        for i in range(5):
            world.run(world.client.create(f"/app/p{i}"))
        world.quiesce()
        world.hub.stop_samplers()
        assert world.hub.consistency_snapshot()["pending_mutations"] == 0

    def test_aggregate_weights_match_faithful_at_logical_scale(self):
        from repro.bench.systems import make_testbed
        from repro.obs.hub import MetricsHub
        from repro.workloads.mdtest import MdtestConfig, run_mdtest

        def consistency(cpn, mult):
            hub = MetricsHub()
            bed = make_testbed("pacon", n_apps=1, nodes_per_app=2,
                               clients_per_node=cpn, hub=hub, seed=7,
                               aggregate_multiplier=mult)
            config = MdtestConfig(workdir="/app", items_per_client=5,
                                  phases=("create", "stat"))
            run_mdtest(bed.env, bed.clients, config)
            bed.quiesce()
            doc = hub.export()
            cons = doc["consistency"]
            return (doc["counters"]["client.ops"], cons["reads"],
                    cons["staleness"]["age"]["count"],
                    cons["visibility"]["committed"]["count"],
                    cons["visibility"]["global"]["count"])

        faithful = consistency(cpn=2, mult=1)   # 4 physical = 4 logical
        aggregate = consistency(cpn=1, mult=2)  # 2 physical x2 = 4 logical
        assert faithful == aggregate


# ------------------------------------------------------------- zero cost

class TestZeroCostWhenOff:
    def test_uninstrumented_run_allocates_no_sketch_or_slo_state(
            self, monkeypatch):
        from repro.sim import stats as stats_mod

        def boom(*a, **kw):
            raise AssertionError("sketch allocated on an uninstrumented"
                                 " run")

        monkeypatch.setattr(stats_mod.StatsRegistry, "sketch", boom)
        monkeypatch.setattr(QuantileSketch, "__init__", boom)
        world = make_observed_world(with_hub=False)
        for i in range(5):
            world.run(world.client.create(f"/app/off{i}"))
            world.run(world.client.stat(f"/app/off{i}"))
        world.quiesce()
        assert world.client.ops > 0

    def test_null_hub_consistency_recorders_discard(self):
        from repro.obs.hub import NULL_HUB
        NULL_HUB.observe_staleness("shared", "stat", 1.0, 2)
        NULL_HUB.observe_visibility("committed", "create", 1.0)
        assert NULL_HUB.stats.counters() == {}


# ------------------------------------------------------------ slo engine

def _doc(histograms=None, counters=None, series=None, consistency=None):
    return {"histograms": histograms or {}, "counters": counters or {},
            "series": series or {}, "consistency": consistency or {}}


class TestSloEngine:
    def test_latency_objective_pass_and_fail(self):
        obj = LatencyObjective("lat", "commit.latency", "p99", 1.0)
        doc = _doc(histograms={"commit.latency": {"count": 10, "p99": 0.5}})
        assert obj.evaluate(doc).ok
        doc["histograms"]["commit.latency"]["p99"] = 2.0
        verdict = obj.evaluate(doc)
        assert not verdict.ok and verdict.measured == 2.0

    def test_latency_objective_abstains_when_windowed(self):
        obj = LatencyObjective("lat", "commit.latency", "p99", 1.0)
        assert obj.evaluate(_doc(), window=(0.0, 1.0)) is None

    def test_staleness_whole_run_reads_consistency_section(self):
        obj = StalenessObjective("st", bound=0.5)
        doc = _doc(consistency={"staleness": {
            "age": {"count": 3, "p99": 0.25}}})
        assert obj.evaluate(doc).ok
        doc["consistency"]["staleness"]["age"]["p99"] = 0.75
        assert not obj.evaluate(doc).ok

    def test_staleness_windowed_max_vs_final(self):
        series = {"consistency.pending_age[r]": {
            "t": [0.0, 1.0, 2.0], "v": [0.0, 5.0, 0.0]}}
        doc = _doc(series=series)
        worst = StalenessObjective("w", bound=1.0, mode="max")
        final = StalenessObjective("f", bound=1.0, mode="final")
        assert not worst.evaluate(doc, window=(0.0, 2.0)).ok
        assert final.evaluate(doc, window=(0.0, 2.0)).ok
        # Window clipping: exclude the spike and max passes too.
        assert worst.evaluate(doc, window=(1.5, 2.0)).ok

    def test_error_ratio_counts_per_op_errors(self):
        obj = ErrorRatioObjective("err", max_ratio=0.1)
        counters = {"client.ops": 100, "client.op.stat.errors": 5,
                    "client.op.create.errors": 4}
        assert obj.evaluate(_doc(counters=counters)).ok
        counters["client.op.stat.errors"] = 50
        assert not obj.evaluate(_doc(counters=counters)).ok

    def test_burn_rate_needs_all_windows_burning(self):
        # Early violation that fully recovers: the long window burns but
        # the short (most recent 10%) window is clean -> no page.
        t = [i / 10.0 for i in range(40)]
        v = [2.0] * 10 + [0.0] * 30
        doc = _doc(series={"consistency.pending_age[r]": {"t": t, "v": v}})
        obj = BurnRateObjective("burn", "consistency.pending_age",
                                threshold=1.0, budget=0.05)
        assert obj.evaluate(doc).ok
        # Still violating at the end: every window burns -> fail.
        doc2 = _doc(series={"consistency.pending_age[r]": {
            "t": t, "v": [2.0] * 40}})
        assert not obj.evaluate(doc2).ok

    def test_policy_skips_abstaining_objectives(self):
        policy = Policy("p", [
            LatencyObjective("lat", "commit.latency", "p99", 1.0),
            StalenessObjective("st", bound=1.0),
        ])
        result = policy.evaluate(_doc(), window=(0.0, 1.0))
        assert [v.name for v in result.verdicts] == ["st"]

    def test_default_policy_passes_on_clean_run(self):
        world = make_observed_world()
        for i in range(5):
            world.run(world.client.create(f"/app/s{i}"))
        world.quiesce()
        world.hub.stop_samplers()
        doc = world.hub.export()
        assert doc["slo"]["verdict"] == "pass"
        result = default_policy().evaluate(doc)
        assert result.passed
        assert result.to_doc() == doc["slo"]

    def test_get_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_policy("no-such-policy")


# ------------------------------------------------------------- v3 schema

def exported_doc():
    world = make_observed_world()
    for i in range(5):
        world.run(world.client.create(f"/app/f{i}"))
    world.quiesce()
    world.hub.stop_samplers()
    return world.hub.export()


class TestSchemaV3:
    def test_v3_export_conforms(self):
        assert schema.validate(exported_doc()) == []

    def test_v3_round_trips_through_json(self):
        assert schema.validate(json.loads(json.dumps(exported_doc()))) == []

    def test_v2_document_still_validates(self):
        # An archived v2 export = a v3 export minus the additive sections.
        doc = exported_doc()
        doc["schema"] = schema.SCHEMA_V2
        del doc["consistency"]
        del doc["slo"]
        assert schema.validate(doc) == []

    def test_v3_requires_consistency_and_slo(self):
        doc = exported_doc()
        del doc["consistency"]
        assert any("consistency" in p for p in schema.validate(doc))
        doc = exported_doc()
        del doc["slo"]
        assert any("slo" in p for p in schema.validate(doc))

    def test_missing_consistency_field_flagged(self):
        doc = exported_doc()
        del doc["consistency"]["staleness_p99"]
        assert any("staleness_p99" in p for p in schema.validate(doc))

    def test_bad_slo_verdict_flagged(self):
        doc = exported_doc()
        doc["slo"]["verdict"] = "maybe"
        assert any("verdict" in p for p in schema.validate(doc))

    def test_same_seed_exports_byte_identical(self):
        a = make_observed_world(seed=11)
        b = make_observed_world(seed=11)
        for world in (a, b):
            for i in range(4):
                world.run(world.client.create(f"/app/d{i}"))
            world.quiesce()
            world.hub.stop_samplers()
        assert a.hub.to_json() == b.hub.to_json()
