"""Tests for incident detection + blame attribution (repro.obs.incidents).

Unit tests drive the detector over hand-built documents (the detection
and blame arithmetic is pure); integration tests prove the flight
recorder end to end on a chaos scenario — timeline recorded, incidents
detected, the injected fault ranked top suspect — plus same-seed
byte-determinism and the zero-cost-when-off guarantee.
"""

import json

from repro.chaos.scenarios import run_scenario
from repro.obs.incidents import (
    CAUSE_WEIGHTS,
    DEFAULT_RULES,
    IncidentRule,
    detect_incidents,
    fault_attribution,
    format_report,
)


def make_doc(points, events=(), series="x"):
    """Minimal metrics doc: one gauge series + timeline events."""
    return {
        "schema": "pacon.metrics/v4",
        "series": {series: {"t": [t for t, _ in points],
                            "v": [v for _, v in points]}},
        "timeline": {"count": len(events), "dropped": 0,
                     "events": list(events)},
    }


def event(seq, t, kind, label="ev", ref=-1, duration=0.0):
    return {"seq": seq, "t": t, "source": "chaos", "kind": kind,
            "label": label, "detail": "", "duration": duration,
            "ref": ref}


RULE = IncidentRule("r", "x", bound=1.0, open_after=2, close_after=2)


class TestDetection:
    def test_breach_streak_opens_and_closes_incident(self):
        points = [(i * 0.25, v) for i, v in
                  enumerate([0, 0, 2, 3, 2, 0, 0, 0])]
        section = detect_incidents(make_doc(points), rules=(RULE,))
        assert section["count"] == 1
        (inc,) = section["incidents"]
        assert inc["id"] == "INC-001"
        assert inc["start"] == 0.5
        assert inc["end"] == 1.0
        assert inc["peak"] == 3
        assert inc["bound"] == 1.0
        assert inc["verdict"]["ok"] is False

    def test_single_blip_below_open_after_is_ignored(self):
        points = [(i * 0.25, v) for i, v in enumerate([0, 5, 0, 0, 5, 0, 0])]
        section = detect_incidents(make_doc(points), rules=(RULE,))
        assert section["count"] == 0

    def test_flapping_inside_close_after_stays_one_incident(self):
        # one clean tick between breaches < close_after=2: no split
        points = [(i * 0.25, v) for i, v in
                  enumerate([2, 2, 0, 2, 2, 0, 0, 0])]
        section = detect_incidents(make_doc(points), rules=(RULE,))
        assert section["count"] == 1
        (inc,) = section["incidents"]
        assert (inc["start"], inc["end"]) == (0.0, 1.0)

    def test_open_incident_at_end_of_run_still_reported(self):
        points = [(i * 0.25, v) for i, v in enumerate([0, 0, 2, 3])]
        section = detect_incidents(make_doc(points), rules=(RULE,))
        (inc,) = section["incidents"]
        assert (inc["start"], inc["end"]) == (0.5, 0.75)

    def test_peak_includes_preconfirmation_ticks(self):
        # the highest sample arrives before the streak confirms
        points = [(i * 0.25, v) for i, v in enumerate([0, 9, 2, 2, 0, 0, 0])]
        rule = IncidentRule("r", "x", bound=1.0, open_after=3,
                            close_after=2)
        (inc,) = detect_incidents(make_doc(points),
                                  rules=(rule,))["incidents"]
        assert inc["peak"] == 9

    def test_absent_series_yields_no_incidents(self):
        section = detect_incidents(make_doc([], series="y"), rules=(RULE,))
        assert section["count"] == 0
        assert [r["name"] for r in section["rules"]] == ["r"]


class TestAdaptiveBound:
    def test_fixed_bound_wins_over_adaptation(self):
        rule = IncidentRule("r", "x", bound=2.0, adapt_factor=100.0)
        assert rule.resolve_bound([1.0, 1.0], span=10.0) == 2.0

    def test_percentile_scaling(self):
        rule = IncidentRule("r", "x", adapt_factor=4.0,
                            adapt_percentile=50.0)
        assert rule.resolve_bound([0.0, 1.0, 2.0], span=0.0) == 4.0

    def test_floor_dominates_tiny_baselines(self):
        rule = IncidentRule("r", "x", adapt_factor=2.0, floor=5.0)
        assert rule.resolve_bound([0.1, 0.1, 0.1], span=0.0) == 5.0

    def test_floor_frac_tracks_peak(self):
        rule = IncidentRule("r", "x", adapt_factor=0.0, floor_frac=0.5)
        assert rule.resolve_bound([0.0, 8.0], span=0.0) == 4.0

    def test_span_frac_tracks_sampled_span(self):
        rule = IncidentRule("r", "x", adapt_factor=0.0, span_frac=0.25)
        assert rule.resolve_bound([0.0, 0.1], span=2.0) == 0.5

    def test_empty_series_falls_back_to_floor(self):
        rule = IncidentRule("r", "x", floor=3.0)
        assert rule.resolve_bound([], span=9.0) == 3.0


class TestBlame:
    def breach_points(self):
        return [(i * 0.25, v) for i, v in
                enumerate([0, 0, 2, 3, 2, 0, 0, 0])]

    def test_fault_interval_paired_by_ref(self):
        events = [event(1, 0.4, "fault.injected", "mds_crash[0]"),
                  event(2, 1.1, "fault.recovered", "mds_crash[0]", ref=1)]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        (suspect,) = inc["suspects"]
        assert suspect["rank"] == 1
        assert suspect["seq"] == 1
        assert suspect["kind"] == "fault.injected"
        assert "mds_crash[0]" in suspect["evidence"]
        assert "breach" in suspect["evidence"]

    def test_unrecovered_fault_is_open_ended(self):
        events = [event(1, 0.4, "fault.injected", "mds_crash[0]")]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        assert inc["suspects"][0]["seq"] == 1

    def test_cause_after_incident_end_not_blamed(self):
        events = [event(1, 3.0, "scale.grow", "late")]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        assert inc["suspects"] == []

    def test_overlapping_fault_outranks_preceding_stall(self):
        events = [event(1, 0.45, "backpressure.stall", "q0", duration=0.02),
                  event(2, 0.4, "fault.injected", "mds_crash[0]"),
                  event(3, 1.1, "fault.recovered", "mds_crash[0]", ref=2)]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        assert [s["seq"] for s in inc["suspects"]] == [2, 1]

    def test_suspect_list_capped(self):
        events = [event(i, 0.4 + i * 1e-3, "node.joined", f"n{i}")
                  for i in range(1, 10)]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        assert len(inc["suspects"]) == 5
        assert [s["rank"] for s in inc["suspects"]] == [1, 2, 3, 4, 5]

    def test_recovered_event_is_not_its_own_cause(self):
        events = [event(1, 0.4, "fault.injected", "f"),
                  event(2, 0.25, "fault.recovered", "f", ref=1)]
        (inc,) = detect_incidents(make_doc(self.breach_points(), events),
                                  rules=(RULE,))["incidents"]
        assert [s["seq"] for s in inc["suspects"]] == [1]

    def test_every_timeline_kind_has_a_weight_or_is_recovery(self):
        # the vocabulary documented in repro.obs.timeline
        vocabulary = {"fault.injected", "scale.grow", "scale.retire",
                      "scale.failed", "scale.rejected", "node.joined",
                      "node.departed", "backpressure.stall"}
        assert vocabulary == set(CAUSE_WEIGHTS)


class TestAttribution:
    def test_attributed_fault(self):
        events = [event(1, 0.4, "fault.injected", "mds_crash[0]"),
                  event(2, 1.1, "fault.recovered", "mds_crash[0]", ref=1)]
        doc = make_doc([(i * 0.25, v) for i, v in
                        enumerate([0, 0, 2, 3, 2, 0, 0, 0])], events)
        doc["incidents"] = detect_incidents(doc, rules=(RULE,))
        (row,) = fault_attribution(doc)
        assert row["fault"] == "mds_crash[0]"
        assert row["attributed"] is True
        assert row["top_suspect_of"] == ["INC-001"]
        assert "ok" in format_report(doc)

    def test_unattributed_fault_flagged(self):
        events = [event(1, 0.4, "fault.injected", "mds_crash[0]")]
        doc = make_doc([(0.0, 0.0), (0.1, 0.0)], events)
        doc["incidents"] = detect_incidents(doc, rules=(RULE,))
        (row,) = fault_attribution(doc)
        assert row["attributed"] is False
        assert "MISS" in format_report(doc)

    def test_no_faults_no_rows(self):
        doc = make_doc([(0.0, 0.0)])
        doc["incidents"] = detect_incidents(doc, rules=(RULE,))
        assert fault_attribution(doc) == []


class TestFlightRecorderEndToEnd:
    def test_node_crash_fault_is_top_suspect(self):
        result = run_scenario("node_crash")
        doc = result.metrics_doc
        assert doc["timeline"]["count"] >= 2  # inject + recover at least
        kinds = {ev["kind"] for ev in doc["timeline"]["events"]}
        assert {"fault.injected", "fault.recovered"} <= kinds
        assert doc["incidents"]["count"] >= 1
        assert result.attribution, "fault_attribution produced no rows"
        assert result.faults_attributed, format_report(doc)

    def test_same_seed_sections_byte_identical(self):
        a = run_scenario("node_crash", items=8)
        b = run_scenario("node_crash", items=8)
        for key in ("timeline", "incidents"):
            assert (json.dumps(a.metrics_doc[key], sort_keys=True)
                    == json.dumps(b.metrics_doc[key], sort_keys=True))

    def test_default_rules_cover_the_three_lenses(self):
        lenses = {rule.series for rule in DEFAULT_RULES}
        assert {"commit.stall_age", "client.error_rate",
                "consistency.pending_age"} <= lenses


class TestZeroCostWhenOff:
    def test_disabled_world_allocates_no_timeline_or_detector(
            self, monkeypatch):
        import repro.obs.incidents as incidents_mod
        import repro.obs.timeline as timeline_mod
        from repro.obs.hub import NULL_HUB, MetricsHub
        from repro.obs.timeline import NULL_TIMELINE
        from tests.obs.conftest import make_observed_world

        def boom(*a, **kw):
            raise AssertionError("allocated with observability off")

        monkeypatch.setattr(timeline_mod.Timeline, "__init__", boom)
        monkeypatch.setattr(incidents_mod, "detect_incidents", boom)
        # A disabled hub shares the null timeline instead of building one.
        assert MetricsHub(enabled=False).timeline is NULL_TIMELINE
        # An uninstrumented world exercises every hook site's guard:
        # membership changes and client publishes must not record.
        world = make_observed_world(with_hub=False)
        for i in range(4):
            world.run(world.client.create(f"/app/f{i}"))
        extra = world.cluster.add_node("extra")
        world.region.add_node(extra)
        world.region.remove_node(extra)
        world.quiesce()
        assert world.region.hub is NULL_HUB
        assert len(world.region.hub.timeline) == 0
