"""Causal span trees and latency attribution (the tentpole contract).

The acceptance properties:

* every op's span tree is rooted at the client op with causally-linked
  children (cache/network/commit-queue/barrier stages),
* per-op bucket sums never exceed the op's span duration, and
  ``duration == sum(buckets) + residual`` exactly — the residual is
  reported, never hidden,
* the per-class rollup reconstructs each class's mean end-to-end latency
  from its bucket means within 1%  (exact, in fact),
* on the seeded fig. 7 smoke run the same holds for every op class,
* with observability off, no SpanContext objects are allocated anywhere
  on the hot path.
"""

import pytest

import repro.sim.trace as trace_mod
from repro.obs.hub import attribution_rollup
from repro.sim.trace import ATTRIBUTION_BUCKETS

from tests.obs.conftest import make_observed_world

#: Categories a client op's tree may contain besides the buckets: the
#: async commit-queue residency span and the base-Service (DFS-internal)
#: spans, none of which are critical-path buckets.
NON_BUCKET_CATEGORIES = {"op", "commit_queue", "svc_queue", "svc_service"}


def _workload(client, tag):
    yield from client.mkdir(f"/app/{tag}")
    for j in range(4):
        path = f"/app/{tag}/f{j}"
        yield from client.create(path)
        yield from client.getattr(path)
    yield from client.readdir(f"/app/{tag}")


def _drive(world):
    for i, client in enumerate(world.clients):
        world.run(_workload(client, f"d{i}"), label=f"w{i}")
    world.quiesce()
    world.hub.stop_samplers()
    return world


@pytest.fixture(scope="module")
def driven():
    return _drive(make_observed_world(n_nodes=2, clients_per_node=2))


class TestSpanTrees:
    def test_every_op_rooted_with_children(self, driven):
        tracer = driven.hub.tracer
        trees = tracer.span_trees()
        assert trees, "no span trees assembled"
        categories = set()
        for op_id, root in trees.items():
            assert root.category == "op"
            assert root.op_id == op_id
            assert root.end is not None
            for span in root.walk():
                categories.add(span.category)
                assert span.op_id == op_id
                if span is not root:
                    assert span.start >= root.start
        # The workload exercises cache KV calls, network transfers, and
        # the async commit queue as child stages.
        assert {"cache", "network", "commit_queue"} <= categories
        assert categories <= set(ATTRIBUTION_BUCKETS) | NON_BUCKET_CATEGORIES

    def test_readdir_tree_contains_barrier_span(self, driven):
        tracer = driven.hub.tracer
        barrier_ops = set()
        for op_id, root in tracer.span_trees().items():
            if root.name.split(" ", 1)[0] != "readdir":
                continue
            cats = {span.category for span in root.walk()}
            if "barrier" in cats:
                barrier_ops.add(op_id)
        assert barrier_ops, "no readdir op carried a barrier span"

    def test_single_op_tree_matches_batch(self, driven):
        tracer = driven.hub.tracer
        trees = tracer.span_trees()
        op_id = sorted(trees)[0]
        single = tracer.span_tree(op_id)
        assert single is not None
        assert ([ (s.span_id, s.category) for s in single.walk() ]
                == [ (s.span_id, s.category) for s in trees[op_id].walk() ])


class TestAttribution:
    def test_bucket_sums_bounded_by_duration(self, driven):
        """Property: for every completed op, sum(buckets) <= duration."""
        attributions = driven.hub.tracer.attributions()
        assert attributions
        for att in attributions.values():
            total = sum(att["buckets"].values())
            assert total <= att["duration"] + 1e-12, att
            assert att["residual"] >= -1e-12, att
            assert (total + att["residual"]
                    == pytest.approx(att["duration"], abs=1e-12))

    def test_rollup_reconstructs_mean_within_one_percent(self, driven):
        rollup = attribution_rollup(driven.hub.tracer)
        assert rollup["buckets"] == list(ATTRIBUTION_BUCKETS)
        assert rollup["ops"]
        for op_class, entry in rollup["ops"].items():
            reconstructed = (sum(entry["buckets"].values())
                             + entry["residual"])
            assert reconstructed == pytest.approx(
                entry["mean_latency"], rel=0.01), op_class

    def test_readdir_attribution_includes_barrier_wait(self, driven):
        rollup = attribution_rollup(driven.hub.tracer)
        assert "readdir" in rollup["ops"]
        assert rollup["ops"]["readdir"]["buckets"]["barrier"] > 0.0


class TestFig07Acceptance:
    def test_fig07_smoke_decomposition(self):
        """Seeded fig. 7 smoke run: every op class's mean latency is
        decomposed into buckets + residual summing to within 1%."""
        from repro.bench import fig07
        from repro.obs.hub import MetricsHub
        from repro.sim.trace import Tracer

        hub = MetricsHub(tracer=Tracer(), sample_interval=200e-6)
        fig07.run("smoke", hub=hub)
        rollup = attribution_rollup(hub.tracer)
        assert rollup["total_ops"] > 0
        assert hub.tracer.open_span_count() == 0
        for op_class, entry in rollup["ops"].items():
            reconstructed = (sum(entry["buckets"].values())
                             + entry["residual"])
            assert reconstructed == pytest.approx(
                entry["mean_latency"], rel=0.01), op_class


class TestZeroAllocationWhenOff:
    def test_no_span_context_allocated_on_hot_path(self, monkeypatch):
        """With NULL_TRACER/NULL_HUB installed, running a full workload
        (client ops, commits, barriers) must construct zero SpanContext
        objects — the guard is ``tracer.enabled``, checked before every
        context creation.

        SpanContext is only ever constructed inside Tracer methods, which
        resolve the name through the trace module's globals — so swapping
        the module-level name for an exploding stand-in catches every
        construction path (patching ``__new__`` on the class would work
        too, but CPython cannot cleanly restore ``tp_new`` afterwards).
        """
        world = make_observed_world(with_hub=False)

        class Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "SpanContext allocated with tracing off")

        monkeypatch.setattr(trace_mod, "SpanContext", Boom)
        world.run(_workload(world.client, "d0"))
        world.quiesce()
