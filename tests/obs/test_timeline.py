"""Tests for the control-plane timeline (repro.obs.timeline)."""

import pytest

from repro.obs.timeline import NULL_TIMELINE, ControlEvent, Timeline


class TestTimeline:
    def test_record_returns_monotonic_seq(self):
        tl = Timeline()
        seq_a = tl.record(0.1, "chaos", "fault.injected", "mds_crash[0]")
        seq_b = tl.record(0.2, "chaos", "fault.recovered", "mds_crash[0]",
                          ref=seq_a)
        assert seq_b > seq_a > 0
        assert len(tl) == 2

    def test_events_sorted_by_time_then_seq(self):
        tl = Timeline()
        tl.record(0.5, "autoscale", "scale.grow", "late")
        tl.record(0.1, "commit", "backpressure.stall", "early",
                  duration=0.02)
        tl.record(0.1, "membership", "node.joined", "tie")
        keys = [(ev.time, ev.seq) for ev in tl.events()]
        assert keys == sorted(keys)
        assert [ev.label for ev in tl.events()] == ["early", "tie", "late"]

    def test_export_shape_and_event_fields(self):
        tl = Timeline()
        seq = tl.record(0.1, "chaos", "fault.injected", "partition[0]",
                        detail="cut#1")
        doc = tl.export()
        assert doc["count"] == 1
        assert doc["dropped"] == 0
        (ev,) = doc["events"]
        assert ev == {"seq": seq, "t": 0.1, "source": "chaos",
                      "kind": "fault.injected", "label": "partition[0]",
                      "detail": "cut#1", "duration": 0.0, "ref": -1}

    def test_capacity_drops_and_counts(self):
        tl = Timeline(capacity=2)
        assert tl.record(0.1, "chaos", "fault.injected", "a") > 0
        assert tl.record(0.2, "chaos", "fault.injected", "b") > 0
        assert tl.record(0.3, "chaos", "fault.injected", "c") == -1
        assert len(tl) == 2
        assert tl.dropped == 1
        assert tl.export()["dropped"] == 1

    def test_clear_keeps_seq_monotonic(self):
        tl = Timeline()
        first = tl.record(0.1, "chaos", "fault.injected", "a")
        tl.clear()
        assert len(tl) == 0
        assert tl.export()["events"] == []
        # seq keeps climbing across clear: pairs recorded before a clear
        # can never alias pairs recorded after it.
        assert tl.record(0.2, "chaos", "fault.injected", "b") > first

    def test_control_event_is_immutable(self):
        ev = ControlEvent(seq=1, time=0.1, source="chaos",
                          kind="fault.injected", label="x")
        with pytest.raises(AttributeError):
            ev.time = 0.5


class TestNullTimeline:
    def test_record_is_a_discarding_noop(self):
        assert NULL_TIMELINE.record(0.1, "chaos", "fault.injected",
                                    "x") == -1
        assert len(NULL_TIMELINE) == 0
        assert NULL_TIMELINE.events() == []
        assert NULL_TIMELINE.export() == {"count": 0, "dropped": 0,
                                          "events": []}
