"""MetricsHub aggregation, the gauge sampler, and export stability."""

import json

import pytest

from repro.obs.hub import NULL_HUB, MetricsHub
from repro.obs.sampler import GaugeSampler

from tests.obs.conftest import make_observed_world


def _drive(world):
    def workload(client, tag):
        yield from client.mkdir(f"/app/{tag}")
        for j in range(4):
            path = f"/app/{tag}/f{j}"
            yield from client.create(path)
            yield from client.write(path, 0, size=256)
            yield from client.getattr(path)

    for i, client in enumerate(world.clients):
        world.run(workload(client, f"d{i}"))
    world.quiesce()
    world.hub.stop_samplers()
    return world


class TestExport:
    def test_document_shape(self):
        world = _drive(make_observed_world())
        doc = world.hub.export()
        assert doc["schema"] == "pacon.metrics/v4"
        assert doc["enabled"] is True
        hists = doc["histograms"]
        for op in ("mkdir", "create", "write", "getattr"):
            assert hists[f"client.op.{op}.latency"]["count"] > 0
        assert hists["commit.latency"]["count"] > 0
        assert doc["counters"]["commit.committed"] > 0
        assert doc["clients"]["count"] == len(world.clients)
        assert doc["clients"]["ops"] > 0
        (region_snap,) = doc["regions"].values()
        assert region_snap["workspace"] == "/app"
        assert region_snap["commit"]["committed"] > 0
        assert region_snap["cache"]["items"] > 0
        assert doc["trace"]["events"] > 0

    def test_queue_depth_series_sampled(self):
        world = _drive(make_observed_world())
        series = world.hub.export()["series"]
        depth_names = [n for n in series if n.startswith("queue.depth[")]
        assert len(depth_names) == len(world.nodes)
        backlog = series[f"queue.backlog[{world.region.name}]"]
        assert len(backlog["t"]) > 1

    def test_sampled_series_times_monotonic(self):
        world = _drive(make_observed_world())
        for name, series in world.hub.export()["series"].items():
            times = series["t"]
            assert times == sorted(times), name
            # One point per tick per gauge: strictly increasing.
            assert all(b > a for a, b in zip(times, times[1:])), name

    def test_barrier_ops_feed_barrier_wait_histogram(self):
        world = make_observed_world()

        def work(client):
            yield from client.mkdir("/app/d")
            for j in range(3):
                yield from client.create(f"/app/d/f{j}")
            yield from client.readdir("/app/d")  # barrier commit
            yield from client.rmdir("/app/d")    # barrier commit

        world.run(work(world.client))
        world.quiesce()
        world.hub.stop_samplers()
        doc = world.hub.export()
        assert doc["histograms"]["commit.barrier_wait"]["count"] > 0
        assert doc["counters"]["commit.barriers_passed"] > 0

    def test_same_seed_exports_byte_identical(self):
        a = _drive(make_observed_world(seed=23)).hub
        b = _drive(make_observed_world(seed=23)).hub
        assert a.to_json() == b.to_json()
        assert (a.tracer.render(limit=100_000)
                == b.tracer.render(limit=100_000))

    def test_to_json_is_sorted_and_parseable(self):
        world = _drive(make_observed_world())
        text = world.hub.to_json(indent=2)
        doc = json.loads(text)
        assert json.dumps(doc, sort_keys=True, indent=2) == text


class TestSampler:
    def test_rejects_non_positive_interval(self):
        world = make_observed_world(with_hub=False)
        hub = MetricsHub()
        with pytest.raises(ValueError):
            GaugeSampler(hub, world.region, 0.0)
        with pytest.raises(ValueError):
            GaugeSampler(hub, world.region, -1.0)

    def test_stop_interrupts_the_loop(self):
        world = make_observed_world()
        (sampler,) = world.hub.samplers

        def wait(dt):
            yield world.env.timeout(dt)

        world.run(world.client.mkdir("/app/d"))
        assert sampler.samples > 0
        world.hub.stop_samplers()
        # Let the interrupt propagate one sim step.
        world.run(wait(sampler.interval))
        assert not sampler._process.is_alive
        before = sampler.samples
        world.run(wait(10 * sampler.interval))
        assert sampler.samples == before

    def test_sampler_exits_when_queues_close(self):
        world = make_observed_world()
        world.run(world.client.mkdir("/app/d"))
        world.quiesce()
        # No stop_samplers() here: closing the queues must be enough.
        world.region.close()
        world.env.run()  # must drain: the sampler must not loop forever
        for sampler in world.hub.samplers:
            assert not sampler._process.is_alive


class TestNullHub:
    def test_null_hub_is_disabled_and_read_only(self):
        assert NULL_HUB.enabled is False
        world = make_observed_world(with_hub=False)
        with pytest.raises(RuntimeError):
            NULL_HUB.attach_region(world.region)
        # Recording into it is a silent no-op.
        NULL_HUB.observe_op("mkdir", 1.0)
        NULL_HUB.count("x")
        assert NULL_HUB.stats.counters() == {}

    def test_regions_start_on_null_hub(self):
        world = make_observed_world(with_hub=False)
        assert world.region.hub is NULL_HUB
        assert not world.region.tracer.enabled
