"""Tests for the pacon.metrics/v2 schema guard (repro.obs.schema)."""

import json

from repro.obs import schema
from tests.obs.conftest import make_observed_world


def exported_doc():
    world = make_observed_world()
    for i in range(5):
        world.run(world.client.create(f"/app/f{i}"))
    world.quiesce()
    world.hub.stop_samplers()
    return world.hub.export()


class TestValidate:
    def test_real_export_conforms(self):
        doc = exported_doc()
        assert schema.validate(doc) == []

    def test_round_trip_through_json_conforms(self):
        doc = json.loads(json.dumps(exported_doc()))
        assert schema.validate(doc) == []

    def test_wrong_schema_string_flagged(self):
        doc = exported_doc()
        doc["schema"] = "pacon.metrics/v1"
        problems = schema.validate(doc)
        assert any("pacon.metrics/v2" in p for p in problems)

    def test_missing_counter_flagged(self):
        doc = exported_doc()
        del doc["counters"]["commit.published"]
        problems = schema.validate(doc)
        assert any("commit.published" in p for p in problems)

    def test_missing_histogram_flagged(self):
        doc = exported_doc()
        del doc["histograms"]["commit.batch_size"]
        problems = schema.validate(doc)
        assert any("commit.batch_size" in p for p in problems)

    def test_missing_top_level_section_flagged(self):
        doc = exported_doc()
        del doc["regions"]
        problems = schema.validate(doc)
        assert any("regions" in p for p in problems)

    def test_region_commit_snapshot_fields_required(self):
        doc = exported_doc()
        region_key = next(iter(doc["regions"]))
        del doc["regions"][region_key]["commit"]["coalesced"]
        problems = schema.validate(doc)
        assert any("coalesced" in p for p in problems)

    def test_non_dict_document_rejected(self):
        assert schema.validate([]) != []


class TestCli:
    def test_main_accepts_conformant_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(exported_doc()))
        assert schema.main([str(path)]) == 0

    def test_main_rejects_drifted_file(self, tmp_path):
        doc = exported_doc()
        del doc["counters"]["commit.published"]
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        assert schema.main([str(path)]) == 1

    def test_main_without_args_is_usage_error(self):
        assert schema.main([]) == 2
