"""Tests for the pacon.metrics schema guard (repro.obs.schema)."""

import json

from repro.obs import schema
from tests.obs.conftest import make_observed_world


def exported_doc():
    world = make_observed_world()
    for i in range(5):
        world.run(world.client.create(f"/app/f{i}"))
    world.quiesce()
    world.hub.stop_samplers()
    return world.hub.export()


class TestValidate:
    def test_real_export_conforms(self):
        doc = exported_doc()
        assert schema.validate(doc) == []

    def test_round_trip_through_json_conforms(self):
        doc = json.loads(json.dumps(exported_doc()))
        assert schema.validate(doc) == []

    def test_wrong_schema_string_flagged(self):
        doc = exported_doc()
        doc["schema"] = "pacon.metrics/v1"
        problems = schema.validate(doc)
        assert any("pacon.metrics/v2" in p for p in problems)

    def test_missing_counter_flagged(self):
        doc = exported_doc()
        del doc["counters"]["commit.published"]
        problems = schema.validate(doc)
        assert any("commit.published" in p for p in problems)

    def test_missing_histogram_flagged(self):
        doc = exported_doc()
        del doc["histograms"]["commit.batch_size"]
        problems = schema.validate(doc)
        assert any("commit.batch_size" in p for p in problems)

    def test_missing_top_level_section_flagged(self):
        doc = exported_doc()
        del doc["regions"]
        problems = schema.validate(doc)
        assert any("regions" in p for p in problems)

    def test_region_commit_snapshot_fields_required(self):
        doc = exported_doc()
        region_key = next(iter(doc["regions"]))
        del doc["regions"][region_key]["commit"]["coalesced"]
        problems = schema.validate(doc)
        assert any("coalesced" in p for p in problems)

    def test_non_dict_document_rejected(self):
        assert schema.validate([]) != []


class TestValidateV4:
    """v4-only sections: the incident flight recorder."""

    def test_missing_timeline_section_flagged(self):
        doc = exported_doc()
        del doc["timeline"]
        problems = schema.validate(doc)
        assert any("timeline" in p for p in problems)

    def test_missing_incidents_section_flagged(self):
        doc = exported_doc()
        del doc["incidents"]
        problems = schema.validate(doc)
        assert any("incidents" in p for p in problems)

    def test_timeline_event_missing_field_flagged(self):
        doc = exported_doc()
        doc["timeline"]["events"].append(
            {"seq": 99, "t": 0.1, "source": "chaos",
             "kind": "fault.injected", "label": "x", "detail": "",
             "duration": 0.0})  # no "ref"
        problems = schema.validate(doc)
        assert any("seq=99" in p and "'ref'" in p for p in problems)

    def test_incident_suspect_missing_field_flagged(self):
        doc = exported_doc()
        doc["incidents"]["incidents"].append(
            {"id": "INC-009", "rule": "r", "series": "x", "start": 0.0,
             "end": 0.1, "peak": 1.0, "bound": 0.5,
             "verdict": {"ok": False},
             "suspects": [{"rank": 1, "seq": 1, "kind": "fault.injected",
                           "label": "f", "t": 0.0, "score": 1.0}]})
        problems = schema.validate(doc)
        assert any("INC-009" in p and "evidence" in p for p in problems)

    def test_v3_shaped_doc_still_validates(self):
        doc = exported_doc()
        del doc["timeline"]
        del doc["incidents"]
        doc["schema"] = "pacon.metrics/v3"
        assert schema.validate(doc) == []


def bench_doc():
    """A minimal conformant pacon.bench/v1 document."""
    return {
        "schema": schema.BENCH_SCHEMA,
        "label": "test",
        "scale": "smoke",
        "seed": 0xBEE,
        "experiments": {
            "figX": {
                "title": "t", "scale": "smoke", "seed": 0xBEE,
                "params": {"nodes": 2},
                "rows": [{"system": "pacon", "ops": 1.0}],
                "derived": {"speedup": 2.0}, "notes": ["n"],
                "host": {"wall_clock_s": 0.1},
            },
        },
        "host": {"wall_clock_s": 0.2, "peak_rss_bytes": 1024},
    }


class TestValidateBench:
    def test_minimal_doc_conforms(self):
        assert schema.validate_bench(bench_doc()) == []

    def test_wrong_schema_string_flagged(self):
        doc = bench_doc()
        doc["schema"] = "pacon.bench/v0"
        problems = schema.validate_bench(doc)
        assert any("pacon.bench/v1" in p for p in problems)

    def test_missing_top_level_field_flagged(self):
        doc = bench_doc()
        del doc["seed"]
        assert any("seed" in p for p in schema.validate_bench(doc))

    def test_empty_experiments_flagged(self):
        doc = bench_doc()
        doc["experiments"] = {}
        assert schema.validate_bench(doc) != []

    def test_missing_experiment_field_flagged(self):
        doc = bench_doc()
        del doc["experiments"]["figX"]["derived"]
        problems = schema.validate_bench(doc)
        assert any("derived" in p for p in problems)

    def test_empty_rows_flagged(self):
        doc = bench_doc()
        doc["experiments"]["figX"]["rows"] = []
        assert schema.validate_bench(doc) != []

    def test_non_numeric_derived_flagged(self):
        doc = bench_doc()
        doc["experiments"]["figX"]["derived"]["speedup"] = "fast"
        problems = schema.validate_bench(doc)
        assert any("speedup" in p for p in problems)

    def test_non_dict_document_rejected(self):
        assert schema.validate_bench([]) != []

    def test_validate_any_dispatches_on_schema(self):
        assert schema.validate_any(bench_doc()) == []
        assert schema.validate_any(exported_doc()) == []


class TestCli:
    def test_main_accepts_conformant_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(exported_doc()))
        assert schema.main([str(path)]) == 0

    def test_main_rejects_drifted_file(self, tmp_path):
        doc = exported_doc()
        del doc["counters"]["commit.published"]
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        assert schema.main([str(path)]) == 1

    def test_main_without_args_is_usage_error(self):
        assert schema.main([]) == 2

    def test_main_accepts_bench_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_doc()))
        assert schema.main([str(path)]) == 0

    def test_main_rejects_drifted_bench_file(self, tmp_path):
        doc = bench_doc()
        del doc["experiments"]["figX"]["rows"]
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        assert schema.main([str(path)]) == 1
