"""Property test for the §III.E commit-order equivalence theorem.

The paper proves that non-dependent operations (create/mkdir/rm) need no
temporal ordering at commit time: as long as each queue resubmits
operations rejected by the namespace conventions, *any* distribution of a
valid operation sequence across independent per-node queues converges to
the same DFS namespace as committing the sequence in temporal order.

Here hypothesis generates random valid operation sequences, executes them
through real Pacon clients spread over several nodes (so the commit
machinery sees genuinely independent queues with resubmission), and
compares the final DFS namespace against a sequential oracle.
"""

from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster

WS = "/app"


@st.composite
def op_sequences(draw) -> List[Tuple[str, str]]:
    """A valid temporal sequence of create/mkdir/rm under the conventions."""
    n_ops = draw(st.integers(min_value=1, max_value=30))
    dirs: List[str] = [WS]
    files: List[str] = []
    used_names: Set[str] = set()
    ops: List[Tuple[str, str]] = []
    counter = 0
    for _ in range(n_ops):
        choices = ["mkdir", "create"]
        if files:
            choices.append("rm")
            choices.append("recreate")
        op = draw(st.sampled_from(choices))
        if op == "mkdir":
            parent = draw(st.sampled_from(dirs))
            path = f"{parent}/d{counter}"
            counter += 1
            dirs.append(path)
            ops.append(("mkdir", path))
        elif op == "create":
            parent = draw(st.sampled_from(dirs))
            path = f"{parent}/f{counter}"
            counter += 1
            files.append(path)
            ops.append(("create", path))
        elif op == "rm":
            path = draw(st.sampled_from(files))
            files.remove(path)
            used_names.add(path)
            ops.append(("rm", path))
        else:  # recreate a previously removed name
            candidates = sorted(used_names)
            if not candidates:
                continue
            path = draw(st.sampled_from(candidates))
            used_names.discard(path)
            files.append(path)
            ops.append(("create", path))
    return ops


def oracle_namespace(ops: List[Tuple[str, str]]) -> Set[Tuple[str, str]]:
    """Apply the sequence in temporal order to a model; return final set."""
    state: Dict[str, str] = {WS: "dir"}
    for op, path in ops:
        if op == "mkdir":
            state[path] = "dir"
        elif op == "create":
            state[path] = "file"
        elif op == "rm":
            del state[path]
    state.pop(WS)
    return set(state.items())


def dfs_namespace(dfs: BeeGFS) -> Set[Tuple[str, str]]:
    out = set()
    for path, inode in dfs.namespace.walk(WS):
        if path == WS:
            continue
        out.add((path, "dir" if inode.is_dir else "file"))
    return out


@given(ops=op_sequences(), node_picks=st.lists(
    st.integers(min_value=0, max_value=3), min_size=30, max_size=30),
    data=st.data())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_independent_commit_converges_to_temporal_order(ops, node_picks,
                                                        data):
    cluster = Cluster(seed=17)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"n{i}") for i in range(4)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(
        PaconConfig(workspace=WS, parent_check=True), nodes)
    clients = [deployment.client(region, node) for node in nodes]

    # Execute the temporal sequence, each op from a pseudo-random client:
    # the cache (primary copy) sees the valid order, while the per-node
    # commit queues each get an arbitrary subsequence.
    for i, (op, path) in enumerate(ops):
        client = clients[node_picks[i % len(node_picks)]]
        if op == "mkdir":
            run_sync(cluster.env, client.mkdir(path))
        elif op == "create":
            run_sync(cluster.env, client.create(path))
        else:
            run_sync(cluster.env, client.rm(path))

    deployment.quiesce_sync(region)
    assert dfs_namespace(dfs) == oracle_namespace(ops)
    # Resubmission is a permitted mechanism, stalling is not.
    for cp in region.commit_processes:
        assert cp.idle


@pytest.mark.parametrize("batch_size,coalesce",
                         [(1, True), (4, True), (4, False),
                          (32, True), (32, False)])
@given(ops=op_sequences(), node_picks=st.lists(
    st.integers(min_value=0, max_value=3), min_size=30, max_size=30))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batched_commit_converges_to_temporal_order(batch_size, coalesce,
                                                    ops, node_picks):
    """§III.E holds for every commit batch size, with or without
    create+rm coalescing — and the pipeline accounts for every published
    op exactly once (committed, discarded, or coalesced)."""
    cluster = Cluster(seed=23)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"n{i}") for i in range(4)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(
        PaconConfig(workspace=WS, parent_check=True,
                    commit_batch_size=batch_size,
                    commit_coalesce=coalesce), nodes)
    hub = MetricsHub()
    hub.attach_region(region)
    clients = [deployment.client(region, node) for node in nodes]

    for i, (op, path) in enumerate(ops):
        client = clients[node_picks[i % len(node_picks)]]
        if op == "mkdir":
            run_sync(cluster.env, client.mkdir(path))
        elif op == "create":
            run_sync(cluster.env, client.create(path))
        else:
            run_sync(cluster.env, client.rm(path))

    deployment.quiesce_sync(region)
    assert dfs_namespace(dfs) == oracle_namespace(ops)
    for cp in region.commit_processes:
        assert cp.idle
    counters = hub.stats.counters()
    published = counters.get("commit.published", 0)
    assert published == len(ops)
    assert published == (counters.get("commit.committed", 0)
                         + counters.get("commit.discarded", 0)
                         + counters.get("commit.coalesced", 0))
