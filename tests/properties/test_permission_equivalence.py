"""Property test: batch permission checks ≡ hierarchical traversal.

Under the paper's HPC assumptions — every entry in a workspace carries the
region's normal permission except a declared special list — Pacon's batch
check (one normal match + one special-list scan) must agree with the
classic layer-by-layer traversal over a real namespace carrying those same
modes.  Hypothesis generates random trees, special lists, and access
requests; the oracle is the repro DFS namespace itself.
"""

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permissions import PermissionSpec, RegionPermissions
from repro.dfs.errors import PermissionDenied
from repro.dfs.inode import AccessMode
from repro.dfs.namespace import Namespace, parent_of

WS = "/ws"
APP = (1000, 1000)
MODES = [0o700, 0o750, 0o755, 0o500, 0o300, 0o770]
USERS = [(1000, 1000), (1000, 2000), (2000, 1000), (2000, 2000), (0, 0)]


@st.composite
def workspaces(draw):
    """A random tree plus a special-permission assignment."""
    n_dirs = draw(st.integers(min_value=1, max_value=8))
    n_files = draw(st.integers(min_value=1, max_value=8))
    normal_mode = draw(st.sampled_from(MODES))
    dirs = [WS]
    entries: List[Tuple[str, str]] = []
    for i in range(n_dirs):
        parent = draw(st.sampled_from(dirs))
        path = f"{parent}/d{i}"
        dirs.append(path)
        entries.append((path, "dir"))
    for i in range(n_files):
        parent = draw(st.sampled_from(dirs))
        entries.append((f"{parent}/f{i}", "file"))
    special: Dict[str, int] = {}
    for path, _ftype in entries:
        if draw(st.booleans()) and len(special) < 3:
            special[path] = draw(st.sampled_from(MODES))
    return normal_mode, entries, special


def build_oracle(normal_mode: int, entries, special) -> Namespace:
    ns = Namespace()
    # Entry (search permission) into the region root is granted at region
    # creation, so the oracle's /ws carries exec-for-all; its other bits
    # stay per the normal permission (writes into the workspace root are
    # still governed by the declared permission information).
    ns.mkdir(WS, mode=normal_mode | 0o111, uid=APP[0], gid=APP[1],
             check_perms=False)
    for path, ftype in entries:
        mode = special.get(path, normal_mode)
        if ftype == "dir":
            ns.mkdir(path, mode=mode, uid=APP[0], gid=APP[1],
                     check_perms=False)
        else:
            ns.create(path, mode=mode, uid=APP[0], gid=APP[1],
                      check_perms=False)
    return ns


def oracle_allows(ns: Namespace, op: str, path: str, uid: int,
                  gid: int) -> bool:
    """Hierarchical traversal verdict, scoped to ancestors inside WS.

    The region grants workspace entry at creation, so the oracle walks
    from WS (not from /), matching what the batch check answers for.
    """
    try:
        if op == "create":
            parent = parent_of(path)
            ns.getattr(parent, uid, gid, check_perms=True)
            inode = ns.getattr(parent, 0, 0, check_perms=False)
            return inode.permits(uid, gid,
                                 AccessMode.WRITE | AccessMode.EXECUTE)
        if op == "getattr":
            parent = parent_of(path)
            ns.getattr(parent, uid, gid, check_perms=True)
            inode = ns.getattr(parent, 0, 0, check_perms=False)
            return inode.permits(uid, gid, AccessMode.EXECUTE)
        if op == "readdir":
            ns.getattr(path, uid, gid, check_perms=True)
            inode = ns.getattr(path, 0, 0, check_perms=False)
            return inode.permits(uid, gid, AccessMode.READ)
        if op == "write":
            ns.getattr(path, uid, gid, check_perms=True)
            inode = ns.getattr(path, 0, 0, check_perms=False)
            return inode.permits(uid, gid, AccessMode.WRITE)
    except PermissionDenied:
        return False
    raise ValueError(op)


@given(ws=workspaces(), user=st.sampled_from(USERS),
       op=st.sampled_from(["create", "getattr", "readdir", "write"]),
       pick=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=200, deadline=None)
def test_batch_check_matches_hierarchical_traversal(ws, user, op, pick):
    normal_mode, entries, special = ws
    uid, gid = user
    ns = build_oracle(normal_mode, entries, special)
    perms = RegionPermissions(
        WS, PermissionSpec(mode=normal_mode, uid=APP[0], gid=APP[1]),
        {p: PermissionSpec(mode=m, uid=APP[0], gid=APP[1])
         for p, m in special.items()})

    # Pick an existing entry appropriate for the op.
    if op == "readdir":
        candidates = [p for p, f in entries if f == "dir"] or [WS]
    else:
        candidates = [p for p, _f in entries]
    path = candidates[pick % len(candidates)]
    if path == WS:
        return  # region-root access is granted by construction

    batch = perms.check_op(op, path, uid, gid).allowed
    oracle = oracle_allows(ns, op, path, uid, gid)
    assert batch == oracle, (
        f"divergence on {op} {path} as uid={uid},gid={gid}: "
        f"batch={batch} oracle={oracle} normal={oct(normal_mode)} "
        f"special={ {p: oct(m) for p, m in special.items()} }")
