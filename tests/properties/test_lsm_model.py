"""Model-based property tests: LSMTree against a plain-dict oracle,
including flush/compaction transparency and WAL crash recovery."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.kvstore.lsm import LSMTree

keys = st.sampled_from([f"/p{i}/k{j}" for i in range(3) for j in range(5)])
values = st.integers(min_value=0, max_value=999)


class LSMMachine(RuleBasedStateMachine):
    """put/delete/get/scan must match the model across flush/compact."""

    def __init__(self):
        super().__init__()
        self.lsm = LSMTree(memtable_limit=6, l0_limit=2)
        self.model = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.lsm.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.lsm.delete(key)
        self.model.pop(key, None)

    @rule(key=keys)
    def get(self, key):
        receipt = self.lsm.get(key)
        if key in self.model:
            assert receipt.found and receipt.value == self.model[key]
        else:
            assert not receipt.found

    @rule()
    def flush(self):
        self.lsm.flush()

    @rule()
    def compact(self):
        self.lsm.compact()

    @rule(prefix=st.sampled_from(["/p0/", "/p1/", "/p2/"]))
    def scan(self, prefix):
        got = dict(self.lsm.scan_prefix(prefix))
        expected = {k: v for k, v in self.model.items()
                    if k.startswith(prefix)}
        assert got == expected

    @invariant()
    def live_key_count_matches(self):
        assert self.lsm.total_live_keys() == len(self.model)


TestLSMModel = LSMMachine.TestCase
TestLSMModel.settings = settings(max_examples=50, stateful_step_count=50,
                                 deadline=None)


class DurableLSMMachine(RuleBasedStateMachine):
    """With auto-synced WAL, crash+recover never loses acknowledged data."""

    def __init__(self):
        super().__init__()
        self.lsm = LSMTree(memtable_limit=5, l0_limit=2, auto_sync_wal=True)
        self.model = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.lsm.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.lsm.delete(key)
        self.model.pop(key, None)

    @rule()
    def crash_and_recover(self):
        lost = self.lsm.crash()
        assert lost == 0  # auto-sync: nothing acknowledged is lost
        self.lsm.recover()

    @invariant()
    def model_matches(self):
        for key, value in self.model.items():
            receipt = self.lsm.get(key)
            assert receipt.found and receipt.value == value


TestDurableLSM = DurableLSMMachine.TestCase
TestDurableLSM.settings = settings(max_examples=40,
                                   stateful_step_count=40, deadline=None)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=80))
@settings(max_examples=50, deadline=None)
def test_heavy_write_then_full_readback(writes):
    lsm = LSMTree(memtable_limit=4, l0_limit=1)
    model = {}
    for key, value in writes:
        lsm.put(key, value)
        model[key] = value
    for key, value in model.items():
        assert lsm.get(key).value == value
    assert dict(lsm.scan_prefix("/")) == model
