"""Model-based property tests: the DFS namespace vs a path-set oracle."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.dfs.namespace import Namespace, parent_of

NAMES = ["a", "b", "c"]
paths = st.lists(st.sampled_from(NAMES), min_size=1, max_size=4).map(
    lambda parts: "/" + "/".join(parts))


class NamespaceMachine(RuleBasedStateMachine):
    """mkdir/create/unlink/rmdir/rename against a dict model.

    The model maps path -> 'dir'|'file'; the machine asserts that each
    operation succeeds or fails exactly when the model says it should.
    """

    def __init__(self):
        super().__init__()
        self.ns = Namespace()
        self.model = {"/": "dir"}

    # -- helpers -----------------------------------------------------------
    def _parent_ok(self, path):
        return self.model.get(parent_of(path)) == "dir"

    def _has_children(self, path):
        prefix = path.rstrip("/") + "/"
        return any(p.startswith(prefix) for p in self.model)

    # -- rules ---------------------------------------------------------------
    @rule(path=paths)
    def mkdir(self, path):
        should_fail = path in self.model or not self._parent_ok(path)
        try:
            self.ns.mkdir(path, check_perms=False)
            assert not should_fail
            self.model[path] = "dir"
        except (FileExists, FileNotFound, NotADirectory):
            assert should_fail

    @rule(path=paths)
    def create(self, path):
        should_fail = path in self.model or not self._parent_ok(path)
        try:
            self.ns.create(path, check_perms=False)
            assert not should_fail
            self.model[path] = "file"
        except (FileExists, FileNotFound, NotADirectory):
            assert should_fail

    @rule(path=paths)
    def unlink(self, path):
        kind = self.model.get(path)
        try:
            self.ns.unlink(path, check_perms=False)
            assert kind == "file"
            del self.model[path]
        except FileNotFound:
            assert kind is None or not self._parent_ok(path)
        except (IsADirectory, NotADirectory):
            assert kind == "dir" or not self._parent_ok(path)

    @rule(path=paths)
    def rmdir(self, path):
        kind = self.model.get(path)
        try:
            self.ns.rmdir(path, check_perms=False)
            assert kind == "dir" and not self._has_children(path)
            del self.model[path]
        except FileNotFound:
            assert kind is None
        except NotADirectory:
            assert kind == "file" or not self._parent_ok(path)
        except DirectoryNotEmpty:
            assert self._has_children(path)

    @rule(path=paths)
    def rmdir_recursive(self, path):
        kind = self.model.get(path)
        try:
            removed = self.ns.rmdir(path, check_perms=False, recursive=True)
            assert kind == "dir"
            doomed = [p for p in self.model
                      if p == path or p.startswith(path.rstrip("/") + "/")]
            assert removed == len(doomed)
            for p in doomed:
                del self.model[p]
        except FileNotFound:
            assert kind is None
        except NotADirectory:
            assert kind == "file" or not self._parent_ok(path)

    @rule(path=paths)
    def getattr(self, path):
        kind = self.model.get(path)
        try:
            inode = self.ns.getattr(path, check_perms=False)
            assert kind == ("dir" if inode.is_dir else "file")
        except (FileNotFound, NotADirectory):
            assert kind is None

    @rule(path=paths)
    def readdir(self, path):
        kind = self.model.get(path)
        prefix = path.rstrip("/") + "/"
        try:
            names = self.ns.readdir(path, check_perms=False)
            assert kind == "dir"
            expected = sorted({p[len(prefix):].split("/")[0]
                               for p in self.model if p.startswith(prefix)})
            assert names == expected
        except (FileNotFound, NotADirectory):
            assert kind != "dir"

    # -- invariants -----------------------------------------------------------
    @invariant()
    def entry_count_matches(self):
        assert self.ns.count_entries() == len(self.model) - 1

    @invariant()
    def walk_matches_model(self):
        seen = {path: ("dir" if inode.is_dir else "file")
                for path, inode in self.ns.walk("/")}
        assert seen == self.model


TestNamespaceModel = NamespaceMachine.TestCase
TestNamespaceModel.settings = settings(max_examples=60,
                                       stateful_step_count=50,
                                       deadline=None)
