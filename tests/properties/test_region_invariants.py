"""Property tests for region-level invariants: barrier correctness and
eviction safety under random operation mixes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster

WS = "/app"


def build_world(n_nodes=3, cache_capacity=512 * 1024 * 1024):
    cluster = Cluster(seed=23)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"n{i}") for i in range(n_nodes)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(
        PaconConfig(workspace=WS, cache_capacity_bytes=cache_capacity),
        nodes)
    clients = [deployment.client(region, node) for node in nodes]
    return cluster, dfs, deployment, region, clients


@given(counts=st.lists(st.integers(min_value=0, max_value=8), min_size=3,
                       max_size=3),
       barrier_client=st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_barrier_exposes_every_earlier_op(counts, barrier_client):
    """readdir (a barrier op) must observe every create that returned
    before it, no matter which client or node they came from."""
    cluster, dfs, deployment, region, clients = build_world()
    expected = []
    for ci, count in enumerate(counts):
        for i in range(count):
            name = f"f{ci}_{i}"
            run_sync(cluster.env, clients[ci].create(f"{WS}/{name}"))
            expected.append(name)
    names = run_sync(cluster.env, clients[barrier_client].readdir(WS))
    assert names == sorted(expected)
    # At barrier completion every commit process drained its epoch.
    for cp in region.commit_processes:
        assert cp.current_epoch == 1


@given(dirs=st.integers(min_value=1, max_value=4),
       files_per_dir=st.integers(min_value=1, max_value=5),
       evict_rounds=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_eviction_never_loses_data(dirs, files_per_dir, evict_rounds):
    """After any number of eviction rounds at any commit state, every
    created entry remains reachable through the client API."""
    cluster, dfs, deployment, region, clients = build_world()
    created = []
    for d in range(dirs):
        run_sync(cluster.env, clients[d % 3].mkdir(f"{WS}/d{d}"))
        for i in range(files_per_dir):
            path = f"{WS}/d{d}/f{i}"
            run_sync(cluster.env, clients[(d + i) % 3].create(path))
            created.append(path)
    evictor = deployment.evictor(region)
    for _ in range(evict_rounds):
        run_sync(cluster.env, evictor.evict_once())
    deployment.quiesce_sync(region)
    reader = clients[0]
    for path in created:
        inode = run_sync(cluster.env, reader.getattr(path))
        assert inode.is_file
    # And the DFS backup copy is complete.
    for path in created:
        assert dfs.namespace.exists(path)


@given(ops=st.lists(st.sampled_from(["create", "rm", "readdir", "getattr"]),
                    min_size=1, max_size=25))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cache_agrees_with_dfs_after_quiesce(ops):
    """After quiescing, the cache's committed view equals the DFS."""
    from repro.dfs.errors import FileNotFound

    cluster, dfs, deployment, region, clients = build_world()
    alive = set()
    counter = 0
    client = clients[0]
    for op in ops:
        if op == "create":
            path = f"{WS}/f{counter}"
            counter += 1
            run_sync(cluster.env, client.create(path))
            alive.add(path)
        elif op == "rm" and alive:
            path = sorted(alive)[0]
            run_sync(cluster.env, client.rm(path))
            alive.discard(path)
        elif op == "readdir":
            run_sync(cluster.env, client.readdir(WS))
        elif op == "getattr" and alive:
            run_sync(cluster.env,
                     client.getattr(sorted(alive)[-1]))
    deployment.quiesce_sync(region)
    on_dfs = set(dfs.namespace.readdir(WS))
    assert on_dfs == {p.rsplit("/", 1)[1] for p in alive}
    # Every cached, committed, non-deleted entry exists on the DFS.
    for shard in region.shards:
        for key, record in shard.kv.scan_prefix(WS):
            if record["committed"] and not record["deleted"]:
                assert dfs.namespace.exists(key)
