"""Model-based property tests: MemKV against a plain-dict oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, \
    precondition, rule

from repro.kvstore.memkv import CasMismatch, KeyExists, MemKV

keys = st.sampled_from([f"/k{i}" for i in range(8)])
values = st.integers(min_value=0, max_value=1000)


class MemKVMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kv = MemKV(capacity_bytes=1 << 20)
        self.model = {}
        self.tokens = {}  # key -> last gets() token and model value then

    @rule(key=keys, value=values)
    def set(self, key, value):
        self.kv.set(key, value)
        self.model[key] = value

    @rule(key=keys, value=values)
    def add(self, key, value):
        if key in self.model:
            try:
                self.kv.add(key, value)
                raise AssertionError("add on existing key must fail")
            except KeyExists:
                pass
        else:
            self.kv.add(key, value)
            self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        assert self.kv.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete(self, key):
        existed = self.kv.delete(key)
        assert existed == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys)
    def remember_token(self, key):
        got = self.kv.gets(key)
        if got is None:
            assert key not in self.model
        else:
            value, token = got
            assert value == self.model[key]
            self.tokens[key] = (token, value)

    @rule(key=keys, value=values)
    def cas_with_remembered_token(self, key, value):
        if key not in self.tokens:
            return
        token, seen_value = self.tokens.pop(key)
        current = self.kv.gets(key)
        fresh = current is not None and current[1] == token
        if fresh:
            self.kv.cas(key, value, token)
            self.model[key] = value
        else:
            try:
                self.kv.cas(key, value, token)
                raise AssertionError("stale CAS must fail")
            except CasMismatch:
                pass

    @invariant()
    def same_size(self):
        assert len(self.kv) == len(self.model)

    @invariant()
    def usage_nonnegative(self):
        assert self.kv.used_bytes >= 0


TestMemKVModel = MemKVMachine.TestCase
TestMemKVModel.settings = settings(max_examples=60,
                                   stateful_step_count=40, deadline=None)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_last_write_wins(writes):
    kv = MemKV()
    model = {}
    for key, value in writes:
        kv.set(key, value)
        model[key] = value
    for key, value in model.items():
        assert kv.get(key) == value


@given(st.lists(keys, min_size=2, max_size=20, unique=True))
@settings(max_examples=40, deadline=None)
def test_versions_unique_and_monotonic(key_list):
    kv = MemKV()
    tokens = []
    for key in key_list:
        tokens.append(kv.set(key, 0))
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == len(tokens)
