"""Property (§III.A elasticity): membership churn is invisible to the
namespace.

grow→retire→grow cycles running concurrently with a multi-client
workload must leave the DFS namespace byte-identical to a same-seed run
with static membership, and the op accounting must balance exactly —
``submitted == committed + discarded + coalesced`` with nothing lost
and nothing double-committed.  Membership changes move metadata between
shards; they never create, destroy, or re-execute it.

Retired nodes take their commit process (and its counters) out of
``region.commit_processes``, so the accounting is summed over every
commit process that ever served the region, not just the final members.
"""

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.invariants import namespace_entries
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster

WS = "/app"


def _workload(client, base: str, n_files: int, rm_every: int):
    yield from client.mkdir(base)
    for i in range(n_files):
        path = f"{base}/f{i}"
        yield from client.create(path)
        if rm_every and i % rm_every == rm_every - 1:
            yield from client.rm(path)


def _run(seed: int, n_files: int, rm_every: int, cycles: int):
    """One world; ``cycles`` grow→retire rounds (0 = static membership).

    Returns ``(namespace entries under WS, submitted, accounted)``.
    """
    cluster = Cluster(seed=seed)
    dfs = BeeGFS(cluster)
    env = cluster.env
    nodes = [cluster.add_node(f"c{i}") for i in range(3)]
    spare = cluster.add_node("spare")
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(PaconConfig(workspace=WS), nodes)
    clients = [deployment.client(region, n) for n in nodes]
    procs = [env.process(_workload(c, f"{WS}/w{i}", n_files, rm_every),
                         label=f"w{i}")
             for i, c in enumerate(clients)]
    all_cps = set(region.commit_processes)

    def driver():
        for _ in range(cycles):
            yield from deployment.grow_region_async(region, spare)
            all_cps.update(region.commit_processes)
            yield from deployment.retire_node_async(region, spare)
        if cycles:
            # End grown: the final namespace must not depend on which
            # membership the run happens to finish at.
            yield from deployment.grow_region_async(region, spare)
            all_cps.update(region.commit_processes)
        for proc in procs:
            yield proc
        yield from deployment.quiesce(region)

    run_sync(env, driver(), label="driver")
    submitted = region.ops_submitted
    accounted = sum(cp.committed + cp.discarded + cp.coalesced
                    for cp in all_cps)
    entries: List[Tuple] = namespace_entries(dfs.namespace, WS)
    region.close()
    return entries, submitted, accounted


@given(seed=st.integers(min_value=0, max_value=7),
       n_files=st.integers(min_value=2, max_value=8),
       rm_every=st.sampled_from([0, 2, 3]),
       cycles=st.integers(min_value=1, max_value=2))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_churn_is_invisible_and_accounting_exact(seed, n_files, rm_every,
                                                 cycles):
    churn_entries, submitted, accounted = _run(seed, n_files, rm_every,
                                               cycles)
    static_entries, s_submitted, s_accounted = _run(seed, n_files,
                                                    rm_every, 0)
    # Exact loss accounting on both runs: no op vanished, none ran twice.
    assert submitted == accounted
    assert s_submitted == s_accounted
    assert submitted == s_submitted
    # Byte-identity: churn must not change what the DFS ends up holding.
    assert churn_entries == static_entries
