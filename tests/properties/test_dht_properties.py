"""Property tests for consistent-hash placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.dht import ConsistentHashRing, HashPartitioner


class Member:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"Member({self.name})"


member_counts = st.integers(min_value=1, max_value=8)
key_lists = st.lists(st.text(alphabet="abcdef/", min_size=1, max_size=12),
                     min_size=1, max_size=60, unique=True)


@given(n=member_counts, keys=key_lists)
@settings(max_examples=60, deadline=None)
def test_lookup_total_and_stable(n, keys):
    ring = ConsistentHashRing(vnodes=32)
    members = [Member(f"m{i}") for i in range(n)]
    for m in members:
        ring.add(m)
    first = [ring.lookup(k).name for k in keys]
    second = [ring.lookup(k).name for k in keys]
    assert first == second
    assert all(name in {m.name for m in members} for name in first)


@given(n=st.integers(min_value=2, max_value=8), keys=key_lists)
@settings(max_examples=50, deadline=None)
def test_removal_only_moves_removed_members_keys(n, keys):
    ring = ConsistentHashRing(vnodes=32)
    members = [Member(f"m{i}") for i in range(n)]
    for m in members:
        ring.add(m)
    before = {k: ring.lookup(k) for k in keys}
    victim = members[0]
    ring.remove(victim)
    for k in keys:
        after = ring.lookup(k)
        if before[k] is not victim:
            assert after is before[k], "non-victim key moved"
        else:
            assert after is not victim


@given(n=member_counts, keys=key_lists)
@settings(max_examples=50, deadline=None)
def test_addition_only_steals_keys_for_new_member(n, keys):
    ring = ConsistentHashRing(vnodes=32)
    members = [Member(f"m{i}") for i in range(n)]
    for m in members:
        ring.add(m)
    before = {k: ring.lookup(k) for k in keys}
    newbie = Member("newbie")
    ring.add(newbie)
    for k in keys:
        after = ring.lookup(k)
        assert after is before[k] or after is newbie


@given(n=member_counts, keys=key_lists,
       replicas=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_lookup_n_prefix_property(n, keys, replicas):
    ring = ConsistentHashRing(vnodes=16)
    for i in range(n):
        ring.add(Member(f"m{i}"))
    for k in keys[:10]:
        owners = ring.lookup_n(k, replicas)
        assert len(owners) == min(replicas, n)
        assert owners[0] is ring.lookup(k)
        assert len({id(o) for o in owners}) == len(owners)


@given(n=member_counts, keys=key_lists)
@settings(max_examples=50, deadline=None)
def test_mod_partitioner_total_and_deterministic(n, keys):
    members = [Member(f"m{i}") for i in range(n)]
    part = HashPartitioner(members)
    for k in keys:
        assert part.lookup(k) is part.lookup(k)
        assert 0 <= part.index_of(k) < n
