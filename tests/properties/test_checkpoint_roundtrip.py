"""Property: subtree export → restore is an identity on the subtree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs.namespace import Namespace

WS = "/ws"
MODES = [0o700, 0o755, 0o640]


@st.composite
def trees(draw):
    n = draw(st.integers(min_value=0, max_value=15))
    dirs = [WS]
    entries = []
    for i in range(n):
        parent = draw(st.sampled_from(dirs))
        kind = draw(st.sampled_from(["dir", "file"]))
        path = f"{parent}/{kind[0]}{i}"
        mode = draw(st.sampled_from(MODES))
        size = draw(st.integers(min_value=0, max_value=4096)) \
            if kind == "file" else 0
        entries.append((path, kind, mode, size))
        if kind == "dir":
            dirs.append(path)
    return entries


def build(entries) -> Namespace:
    ns = Namespace()
    ns.mkdir(WS, mode=0o777, check_perms=False)
    for path, kind, mode, size in entries:
        if kind == "dir":
            ns.mkdir(path, mode=mode, uid=7, gid=8, check_perms=False)
        else:
            ns.create(path, mode=mode, uid=7, gid=8, check_perms=False)
            if size:
                ns.setattr(path, size=size, check_perms=False)
    return ns


def snapshot_view(ns: Namespace):
    return {
        path: (inode.ftype.value, inode.mode, inode.uid, inode.gid,
               inode.size)
        for path, inode in ns.walk(WS)
    }


@given(entries=trees(), extra=st.integers(min_value=0, max_value=5))
@settings(max_examples=80, deadline=None)
def test_export_restore_identity(entries, extra):
    ns = build(entries)
    before = snapshot_view(ns)
    checkpoint = ns.export_subtree(WS)
    # Mutate arbitrarily after the checkpoint.
    for i in range(extra):
        ns.create(f"{WS}/garbage{i}", check_perms=False)
    doomed = [p for p, (kind, *_rest) in before.items()
              if kind == "file" and p != WS]
    for path in doomed[: len(doomed) // 2]:
        ns.unlink(path, check_perms=False)
    # Restore must reproduce the snapshot exactly.
    ns.restore_subtree(checkpoint)
    assert snapshot_view(ns) == before


@given(entries=trees())
@settings(max_examples=50, deadline=None)
def test_restore_is_idempotent(entries):
    ns = build(entries)
    checkpoint = ns.export_subtree(WS)
    ns.restore_subtree(checkpoint)
    once = snapshot_view(ns)
    ns.restore_subtree(checkpoint)
    assert snapshot_view(ns) == once
