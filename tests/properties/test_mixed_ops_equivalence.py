"""Property: the full operation mix (including dependent rmdir) converges.

Extends the §III.E equivalence test with the *dependent* operation type:
random sequences of mkdir/create/rm/rmdir spread over multiple clients and
nodes.  rmdir takes the barrier path (flush earlier ops, recursive DFS
removal, cache cleanup, discard rule), so this exercises every commit
discipline against a sequential oracle.
"""

from typing import Dict, List, Set, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster

WS = "/app"


@st.composite
def op_sequences(draw) -> List[Tuple[str, str]]:
    n_ops = draw(st.integers(min_value=1, max_value=24))
    dirs: List[str] = [WS]
    files: List[str] = []
    counter = 0
    ops: List[Tuple[str, str]] = []
    for _ in range(n_ops):
        choices = ["mkdir", "create", "mkdir", "create"]
        if files:
            choices.append("rm")
        if len(dirs) > 1:
            choices.append("rmdir")
        op = draw(st.sampled_from(choices))
        if op == "mkdir":
            parent = draw(st.sampled_from(dirs))
            path = f"{parent}/d{counter}"
            counter += 1
            dirs.append(path)
            ops.append(("mkdir", path))
        elif op == "create":
            parent = draw(st.sampled_from(dirs))
            path = f"{parent}/f{counter}"
            counter += 1
            files.append(path)
            ops.append(("create", path))
        elif op == "rm":
            path = draw(st.sampled_from(files))
            files.remove(path)
            ops.append(("rm", path))
        else:  # rmdir: remove a whole subtree
            path = draw(st.sampled_from(dirs[1:]))
            doomed = [d for d in dirs
                      if d == path or d.startswith(path + "/")]
            for d in doomed:
                dirs.remove(d)
            files[:] = [f for f in files
                        if not f.startswith(path + "/")]
            ops.append(("rmdir", path))
    return ops


def oracle(ops: List[Tuple[str, str]]) -> Set[Tuple[str, str]]:
    state: Dict[str, str] = {WS: "dir"}
    for op, path in ops:
        if op == "mkdir":
            state[path] = "dir"
        elif op == "create":
            state[path] = "file"
        elif op == "rm":
            del state[path]
        else:  # rmdir
            for p in list(state):
                if p == path or p.startswith(path + "/"):
                    del state[p]
    state.pop(WS)
    return set(state.items())


@given(ops=op_sequences(),
       picks=st.lists(st.integers(min_value=0, max_value=2), min_size=24,
                      max_size=24))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mixed_ops_converge_to_oracle(ops, picks):
    cluster = Cluster(seed=41)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"n{i}") for i in range(3)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(PaconConfig(workspace=WS), nodes)
    clients = [deployment.client(region, node) for node in nodes]
    for i, (op, path) in enumerate(ops):
        client = clients[picks[i % len(picks)]]
        method = {"mkdir": client.mkdir, "create": client.create,
                  "rm": client.rm, "rmdir": client.rmdir}[op]
        run_sync(cluster.env, method(path))
    deployment.quiesce_sync(region)

    observed = set()
    for path, inode in dfs.namespace.walk(WS):
        if path != WS:
            observed.add((path, "dir" if inode.is_dir else "file"))
    assert observed == oracle(ops)
    # Cache view consistency: committed, non-deleted cache entries exist
    # on the DFS.
    for shard in region.shards:
        for key, record in shard.kv.scan_prefix(WS + "/"):
            if record["committed"] and not record["deleted"]:
                assert dfs.namespace.exists(key), key
