"""Property test: inline small-file content vs a byte-array oracle.

Random sequences of writes (possibly sparse, possibly overlapping, from
multiple clients) against one small file must read back exactly what a
flat bytearray oracle holds — including across the small→large threshold
crossing, after which reads are served by the DFS (which tracks sizes, so
the oracle degrades to length checks there).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster

THRESHOLD = 256


def build_world():
    cluster = Cluster(seed=31)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"n{i}") for i in range(2)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(
        PaconConfig(workspace="/app", small_file_threshold=THRESHOLD),
        nodes)
    clients = [deployment.client(region, node) for node in nodes]
    return cluster, deployment, region, clients


writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=THRESHOLD - 1),   # offset
        st.binary(min_size=1, max_size=48),                  # data
        st.integers(min_value=0, max_value=1),               # client pick
    ),
    min_size=1, max_size=12)


@given(ws=writes)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_inline_content_matches_bytearray_oracle(ws):
    cluster, deployment, region, clients = build_world()
    run_sync(cluster.env, clients[0].create("/app/f"))
    oracle = bytearray()
    stayed_small = True
    for offset, data, pick in ws:
        end = offset + len(data)
        if end > THRESHOLD:
            stayed_small = False
        if len(oracle) < end:
            oracle.extend(b"\x00" * (end - len(oracle)))
        oracle[offset:end] = data
        run_sync(cluster.env,
                 clients[pick].write("/app/f", offset, data=data))
    inode = run_sync(cluster.env, clients[0].getattr("/app/f"))
    assert inode.size == len(oracle)
    if stayed_small:
        got = run_sync(cluster.env,
                       clients[1].read("/app/f", 0, len(oracle)))
        assert got == bytes(oracle)
        # Sub-range reads agree too.
        mid = len(oracle) // 2
        got_tail = run_sync(cluster.env,
                            clients[0].read("/app/f", mid,
                                            len(oracle) - mid))
        assert got_tail == bytes(oracle[mid:])


@given(pre=st.binary(min_size=1, max_size=64),
       big=st.integers(min_value=THRESHOLD + 1, max_value=THRESHOLD * 4))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_threshold_crossing_preserves_size(pre, big):
    cluster, deployment, region, clients = build_world()
    run_sync(cluster.env, clients[0].create("/app/f"))
    run_sync(cluster.env, clients[0].write("/app/f", 0, data=pre))
    run_sync(cluster.env, clients[1].write("/app/f", len(pre), size=big))
    expected = len(pre) + big
    inode = run_sync(cluster.env, clients[0].getattr("/app/f"))
    assert inode.size == expected
    record = region.cache.peek("/app/f")
    assert record["large"] is True
    assert record["inline_data"] is None
    # The DFS holds the full extent once converted.
    deployment.quiesce_sync(region)
    assert region.dfs.namespace.getattr("/app/f").size == expected
