"""Chaos engine, scenarios, and convergence invariants (§III.E, §III.G).

The scenario tests run the full two-run protocol from
:mod:`repro.chaos.scenarios` — a fault-free reference pass calibrates
the schedule, then the same seeded world reruns with faults injected
mid-flight — and assert the convergence invariant the paper claims:
loss-free faults reproduce the reference namespace byte-exactly,
destructive faults produce a subset with exact loss accounting.
"""

import pytest

from repro.chaos.engine import ChaosEngine, ChaosSchedule, Fault
from repro.chaos.invariants import (
    check_convergence,
    namespace_digest,
    namespace_entries,
)
from repro.chaos.scenarios import run_scenario
from repro.core.failure import fail_node
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster, MessageDropped, NodeDownError
from tests.core.conftest import make_world


# ------------------------------------------------------------- scenarios
class TestScenarios:
    def test_mds_crash_mid_commit_replays_to_identical_namespace(self):
        result = run_scenario("mds_crash")
        assert result.ok, result.report.problems
        # The crash really hit commits in flight: recovery replayed lost
        # round trips (dedup'd by commit tokens) and dropped messages
        # at delivery — yet nothing was lost and the namespace matches
        # the fault-free run byte-exactly.
        assert result.replays > 0
        assert result.dropped > 0
        assert result.lost_ops == 0
        assert result.report.checks["reference"] == "identical"

    def test_crash_during_barrier_recovers_and_accounts_losses(self):
        result = run_scenario("barrier_crash")
        assert result.ok, result.report.problems
        # rmdir rounds kept barrier epochs in flight across the crash;
        # recovery republished the destroyed markers, so every epoch
        # still completed and the accounting identity held exactly.
        assert result.report.checks["barrier_epochs"] > 0
        assert result.report.checks["reference"].startswith("subset")

    def test_partition_heal_converges_identically(self):
        result = run_scenario("partition_heal")
        assert result.ok, result.report.problems
        assert result.dropped > 0      # the cut really severed traffic
        assert result.lost_ops == 0
        assert result.report.checks["reference"] == "identical"

    def test_cache_churn_is_loss_free(self):
        result = run_scenario("cache_churn")
        assert result.ok, result.report.problems
        assert result.lost_ops == 0
        assert result.report.checks["reference"] == "identical"
        assert result.report.checks["leaked_waiters"] == 0

    def test_node_crash_subset_with_exact_accounting(self):
        result = run_scenario("node_crash")
        assert result.ok, result.report.problems
        assert result.report.checks["reference"].startswith("subset")

    def test_same_seed_same_fault_schedule_and_outcome(self):
        a = run_scenario("node_crash", seed=0xFEED)
        b = run_scenario("node_crash", seed=0xFEED)
        assert a.schedule_signature == b.schedule_signature
        assert a.report.digest == b.report.digest
        assert a.lost_ops == b.lost_ops

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("rack_fire")


# -------------------------------------------------------------- schedule
class TestChaosSchedule:
    def test_poisson_is_deterministic_per_stream(self):
        rng_a = Cluster(seed=11).rng.stream("chaos")
        rng_b = Cluster(seed=11).rng.stream("chaos")
        sched_a = ChaosSchedule.poisson(rng_a, ("node_crash", "mds_crash"),
                                        mttf=0.3, mttr=0.05, horizon=2.0,
                                        targets=4)
        sched_b = ChaosSchedule.poisson(rng_b, ("node_crash", "mds_crash"),
                                        mttf=0.3, mttr=0.05, horizon=2.0,
                                        targets=4)
        assert len(sched_a) > 0
        assert sched_a.signature() == sched_b.signature()

    def test_different_seed_different_schedule(self):
        kw = dict(mttf=0.3, mttr=0.05, horizon=2.0, targets=4)
        sched_a = ChaosSchedule.poisson(
            Cluster(seed=11).rng.stream("chaos"), ("node_crash",), **kw)
        sched_b = ChaosSchedule.poisson(
            Cluster(seed=12).rng.stream("chaos"), ("node_crash",), **kw)
        assert sched_a.signature() != sched_b.signature()

    def test_bad_fault_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="gamma_ray", at=0.1, duration=0.1)
        with pytest.raises(ValueError):
            Fault(kind="node_crash", at=0.1, duration=0.0)


# ------------------------------------------------- engine + fault metrics
class TestChaosEngine:
    def test_engine_emits_fault_lifecycle_metrics(self, world):
        hub = MetricsHub()
        hub.attach_region(world.region)
        schedule = ChaosSchedule().add("mds_crash", at=1e-3, duration=2e-3)
        engine = ChaosEngine(world.deployment, world.region, schedule)
        engine.start()
        world.run(engine.wait_done(), label="chaos-wait")
        counters = hub.export()["counters"]
        assert counters["chaos.injected"] == 1
        assert counters["chaos.recovered"] == 1
        assert counters["chaos.fault.mds_crash"] == 1
        assert len(engine.records) == 1
        rec = engine.records[0]
        assert rec.recovered_at - rec.injected_at == pytest.approx(2e-3)


# -------------------------------------------------------------- satellites
class TestAbort:
    def test_abort_on_idle_process_loses_nothing(self, world):
        cp = world.region.commit_processes[0]
        counts = cp.abort(reason="test")
        assert counts == {"in_flight": 0, "pending": 0, "future": 0,
                          "total": 0}
        assert cp.killed
        assert cp.aborts == 1

    def test_abort_does_not_leak_queue_waiters(self, world):
        # Steady state: the idle commit loop is the queue's one blocked
        # getter.  Abort cancels that wait; the registration must go
        # with it, or every crash-recover cycle leaks one waiter.
        queue = world.region.queues.route(world.nodes[0].node_id)
        world.cluster.env.run(until=1e-3)
        assert queue.waiting_getters == 1
        world.region.commit_processes[0].abort(reason="test")
        world.cluster.env.run(until=2e-3)
        assert queue.waiting_getters == 0

    def test_fail_node_counts_queued_ops_exactly(self, world):
        client = world.client
        world.run(client.mkdir("/app/d"))
        world.quiesce()
        for i in range(5):
            world.run(client.create(f"/app/d/f{i}"))
        # Ops are published but the commit pipeline hasn't drained yet.
        report = fail_node(world.region, world.nodes[0])
        assert report.lost_queued_ops == 5
        submitted = world.region.ops_submitted
        committed = world.region.ops_committed
        assert submitted == committed + report.lost_queued_ops


class TestCheckpointClamp:
    def test_empty_workspace_checkpoint_round_trip(self, world):
        # A fresh workspace holds only its root dir; the entry count
        # (which excludes the root) must clamp to 0, not go negative,
        # and the checkpoint must restore cleanly.
        ckpt = world.deployment.checkpointer(world.region)
        cp = world.run(ckpt.checkpoint())
        assert cp.entries == 0
        world.run(world.client.create("/app/f"))
        world.quiesce()
        restored = world.run(ckpt.restore())
        assert restored == 0
        assert not world.dfs.namespace.exists("/app/f")


class TestDeliveryTimeDrops:
    def test_transfer_to_node_that_dies_mid_flight_is_dropped(self):
        cluster = Cluster(seed=3)
        hub = MetricsHub()
        cluster.network.hub = hub
        src = cluster.add_node("src")
        dst = cluster.add_node("dst")

        def scenario():
            def killer():
                yield cluster.env.timeout(1e-9)
                dst.fail()
            cluster.env.process(killer(), label="killer")
            with pytest.raises(MessageDropped):
                yield from cluster.network.transfer(src, dst, 1 << 20)

        run_sync(cluster.env, scenario(), label="drop-test")
        assert cluster.network.dropped == 1
        assert hub.export()["counters"]["net.dropped"] == 1

    def test_dead_source_fails_fast_without_drop(self):
        cluster = Cluster(seed=3)
        src = cluster.add_node("src")
        dst = cluster.add_node("dst")
        src.fail()

        def scenario():
            with pytest.raises(NodeDownError):
                yield from cluster.network.transfer(src, dst, 1024)

        run_sync(cluster.env, scenario(), label="src-down")
        assert cluster.network.dropped == 0

    def test_restarted_incarnation_drops_stale_delivery(self):
        # A message sent to incarnation N must not be delivered to
        # incarnation N+1 (the restarted node never saw the request).
        cluster = Cluster(seed=3)
        src = cluster.add_node("src")
        dst = cluster.add_node("dst")

        def scenario():
            def bouncer():
                yield cluster.env.timeout(1e-9)
                dst.fail()
                dst.recover()
            cluster.env.process(bouncer(), label="bouncer")
            with pytest.raises(MessageDropped):
                yield from cluster.network.transfer(src, dst, 1 << 20)

        run_sync(cluster.env, scenario(), label="stale-incarnation")
        assert cluster.network.dropped == 1


# ------------------------------------------------------------- invariants
class TestInvariantChecker:
    def test_clean_world_passes(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        report = check_convergence(world.region, world.dfs)
        assert report.ok, report.problems
        assert report.checks["leaked_waiters"] == 0

    def test_unaccounted_loss_detected(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        world.region.ops_submitted += 3  # forge uncounted submissions
        report = check_convergence(world.region, world.dfs)
        assert not report.ok
        assert any("loss accounting" in p for p in report.problems)

    def test_divergence_detected_against_reference(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        reference = namespace_entries(world.dfs.namespace, "/app")
        extra = reference + [("/app/ghost", False, 0o644, 0, 0, 0)]
        report = check_convergence(world.region, world.dfs,
                                   reference_entries=extra,
                                   lost_ops=0)
        assert not report.ok
        assert any("diverged" in p for p in report.problems)
        assert namespace_digest(reference) == report.digest
