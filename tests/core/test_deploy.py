"""Tests for PaconDeployment wiring, config validation, and the PaconFS facade."""

import pytest

from repro.core.config import PaconConfig
from repro.core.deploy import PaconFS
from repro.dfs.errors import FileExists, FileNotFound


class TestPaconConfig:
    def test_defaults_match_paper(self):
        config = PaconConfig()
        assert config.small_file_threshold == 4096
        assert config.parent_check is True

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PaconConfig(small_file_threshold=-1)

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            PaconConfig(eviction_target=0.95, eviction_high_watermark=0.9)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PaconConfig(cache_capacity_bytes=0)


class TestDeploymentInit:
    def test_workspace_materialized_on_dfs(self):
        fs = PaconFS(workspace="/deep/app/dir", nodes=2)
        ns = fs.dfs.namespace
        assert ns.exists("/deep/app/dir")
        inode = ns.getattr("/deep/app/dir")
        assert inode.uid == fs.region.config.uid
        fs.close()

    def test_shadow_dir_materialized(self):
        fs = PaconFS(workspace="/app", nodes=1)
        assert fs.dfs.namespace.exists(fs.region.dfs_shadow_dir)
        fs.close()

    def test_commit_processes_one_per_node(self):
        fs = PaconFS(workspace="/app", nodes=5)
        assert len(fs.region.commit_processes) == 5
        fs.close()

    def test_shards_one_per_node(self):
        fs = PaconFS(workspace="/app", nodes=3)
        assert len(fs.region.shards) == 3
        fs.close()

    def test_config_workspace_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PaconFS(workspace="/a", config=PaconConfig(workspace="/b"))


class TestPaconFSFacade:
    def test_full_lifecycle(self):
        with PaconFS(workspace="/app", nodes=2) as fs:
            fs.mkdir("/app/d")
            fs.create("/app/d/f")
            fs.write("/app/d/f", 0, data=b"payload")
            assert fs.read("/app/d/f", 0, 7) == b"payload"
            assert fs.stat("/app/d/f").size == 7
            assert fs.readdir("/app/d") == ["f"]
            fs.rm("/app/d/f")
            assert not fs.exists("/app/d/f")
            assert fs.rmdir("/app/d") == 1

    def test_duplicate_create_raises(self):
        with PaconFS(workspace="/app") as fs:
            fs.create("/app/f")
            with pytest.raises(FileExists):
                fs.create("/app/f")

    def test_quiesce_lands_commits(self):
        fs = PaconFS(workspace="/app")
        for i in range(10):
            fs.create(f"/app/f{i}")
        fs.quiesce()
        assert fs.dfs_namespace_entries() >= 11  # ws + 10 files
        fs.close()

    def test_close_idempotent_and_final(self):
        fs = PaconFS(workspace="/app")
        fs.create("/app/f")
        fs.close()
        fs.close()
        with pytest.raises(RuntimeError):
            fs.create("/app/g")

    def test_close_drains_all_ops(self):
        fs = PaconFS(workspace="/app", nodes=3)
        for i in range(30):
            fs.create(f"/app/f{i}")
        fs.close()
        for i in range(30):
            assert fs.dfs.namespace.exists(f"/app/f{i}")

    def test_sim_time_advances(self):
        fs = PaconFS(workspace="/app")
        t0 = fs.now
        fs.create("/app/f")
        assert fs.now > t0
        fs.close()

    def test_cache_items_introspection(self):
        fs = PaconFS(workspace="/app")
        fs.create("/app/f")
        assert fs.cache_items() == 1
        fs.close()

    def test_out_of_workspace_via_facade(self):
        fs = PaconFS(workspace="/app")
        fs.dfs.namespace.mkdir("/public", mode=0o777)
        fs.create("/public/x")
        assert fs.exists("/public/x")
        fs.close()
