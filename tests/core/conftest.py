"""Shared fixtures for Pacon core tests."""

from dataclasses import dataclass
from typing import List

import pytest

from repro.core.client import PaconClient
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.core.region import ConsistentRegion
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster, Node


@dataclass
class World:
    """One assembled Pacon world for a test."""

    cluster: Cluster
    dfs: BeeGFS
    deployment: PaconDeployment
    region: ConsistentRegion
    nodes: List[Node]
    client: PaconClient

    def run(self, gen, label: str = "test"):
        return run_sync(self.cluster.env, gen, label=label)

    def quiesce(self):
        self.deployment.quiesce_sync(self.region)

    def new_client(self, node_index: int = 0, trace: bool = False):
        return self.deployment.client(self.region, self.nodes[node_index],
                                      trace=trace)


def make_world(workspace: str = "/app", n_nodes: int = 4,
               config: PaconConfig = None, seed: int = 7) -> World:
    cluster = Cluster(seed=seed)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"client{i}") for i in range(n_nodes)]
    deployment = PaconDeployment(cluster, dfs)
    if config is None:
        config = PaconConfig(workspace=workspace)
    region = deployment.create_region(config, nodes)
    client = deployment.client(region, nodes[0], trace=True)
    return World(cluster=cluster, dfs=dfs, deployment=deployment,
                 region=region, nodes=nodes, client=client)


@pytest.fixture
def world() -> World:
    return make_world()
