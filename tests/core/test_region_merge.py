"""Tests for consistent regions, isolation, merging, and the manager."""

import pytest

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.core.region import ReadOnlyRegion
from repro.dfs.beegfs import BeeGFS
from repro.dfs.errors import FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make_two_region_world(n_nodes_each=2):
    """Two applications with share-friendly (0o755) workspace permissions."""
    from repro.core.permissions import PermissionSpec

    cluster = Cluster(seed=11)
    dfs = BeeGFS(cluster)
    nodes_a = [cluster.add_node(f"a{i}") for i in range(n_nodes_each)]
    nodes_b = [cluster.add_node(f"b{i}") for i in range(n_nodes_each)]
    deployment = PaconDeployment(cluster, dfs)
    region_a = deployment.create_region(
        PaconConfig(workspace="/appA", uid=1001, gid=1001,
                    permissions=PermissionSpec(mode=0o755, uid=1001,
                                               gid=1001)), nodes_a)
    region_b = deployment.create_region(
        PaconConfig(workspace="/appB", uid=1002, gid=1002,
                    permissions=PermissionSpec(mode=0o755, uid=1002,
                                               gid=1002)), nodes_b)
    client_a = deployment.client(region_a, nodes_a[0])
    client_b = deployment.client(region_b, nodes_b[0])
    return cluster, dfs, deployment, region_a, region_b, client_a, client_b


class TestRegionBasics:
    def test_needs_nodes(self):
        cluster = Cluster()
        dfs = BeeGFS(cluster)
        with pytest.raises(ValueError):
            from repro.core.region import ConsistentRegion
            ConsistentRegion(cluster, dfs, PaconConfig(), nodes=[])

    def test_covers(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        assert ra.covers("/appA/x/y")
        assert ra.covers("/appA")
        assert not ra.covers("/appB/x")
        assert not ra.covers("/appAA")

    def test_register_client_foreign_node_rejected(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        with pytest.raises(ValueError):
            ra.register_client(rb.nodes[0])

    def test_client_counts(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        assert ra.total_clients() == 1
        dep.client(ra, ra.nodes[1])
        assert ra.total_clients() == 2


class TestRegionIsolation:
    def test_caches_disjoint(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        run_sync(cluster.env, ca.create("/appA/f"))
        run_sync(cluster.env, cb.create("/appB/g"))
        assert ra.cache.peek("/appA/f") is not None
        assert ra.cache.peek("/appB/g") is None
        assert rb.cache.peek("/appA/f") is None

    def test_queues_disjoint(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        run_sync(cluster.env, ca.create("/appA/f"))
        assert rb.queues.total_backlog() == 0

    def test_barriers_do_not_cross_regions(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        run_sync(cluster.env, ca.create("/appA/f"))
        run_sync(cluster.env, cb.readdir("/appB"))
        # B's barrier must not have flushed A's queue.
        assert rb.barrier_epochs_completed == 1
        assert ra.barrier_epochs_completed == 0

    def test_cross_region_access_without_merge_redirects_to_dfs(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        run_sync(cluster.env, cb.create("/appB/g"))
        # A's client reads B's file before B's commit lands: weak
        # consistency — the DFS does not have it yet.
        with pytest.raises(FileNotFound):
            run_sync(cluster.env, ca.getattr("/appB/g"))
        dep.quiesce_sync(rb)
        inode = run_sync(cluster.env, ca.getattr("/appB/g"))
        assert inode.is_file
        assert ca.redirects >= 1


class TestMerge:
    def test_merged_read_is_strongly_consistent(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        ra.merge(rb)
        run_sync(cluster.env, cb.create("/appB/shared"))
        # No quiesce: A reads B's cache directly.
        inode = run_sync(cluster.env, ca.getattr("/appB/shared"))
        assert inode.is_file

    def test_merge_is_mutual_by_default(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        ra.merge(rb)
        run_sync(cluster.env, ca.create("/appA/mine"))
        inode = run_sync(cluster.env, cb.getattr("/appA/mine"))
        assert inode.is_file

    def test_one_way_merge(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        ra.merge(rb, mutual=False)
        assert rb.covering_region("/appA/x") is None
        assert ra.covering_region("/appB/x") is rb

    def test_merged_region_is_read_only(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        ra.merge(rb)
        with pytest.raises(ReadOnlyRegion):
            run_sync(cluster.env, ca.create("/appB/intruder"))
        with pytest.raises(ReadOnlyRegion):
            run_sync(cluster.env, ca.rm("/appB/x"))
        with pytest.raises(ReadOnlyRegion):
            run_sync(cluster.env, ca.rmdir("/appB/d"))

    def test_merge_self_rejected(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        with pytest.raises(ValueError):
            ra.merge(ra)

    def test_merged_readdir_barriers_other_region(self):
        cluster, dfs, dep, ra, rb, ca, cb = make_two_region_world()
        ra.merge(rb)
        run_sync(cluster.env, cb.create("/appB/g"))
        names = run_sync(cluster.env, ca.readdir("/appB"))
        assert "g" in names
        assert rb.barrier_epochs_completed == 1


class TestRegionManagerOverlap:
    def test_nested_workspace_joins_outer_region(self):
        cluster = Cluster()
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node(f"n{i}") for i in range(2)]
        dep = PaconDeployment(cluster, dfs)
        outer = dep.create_region(PaconConfig(workspace="/A"), nodes)
        inner = dep.create_region(PaconConfig(workspace="/A/B"), nodes)
        assert inner is outer  # §III.B case 3

    def test_outer_after_inner_rejected(self):
        cluster = Cluster()
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node("n0")]
        dep = PaconDeployment(cluster, dfs)
        dep.create_region(PaconConfig(workspace="/A/B"), nodes)
        with pytest.raises(ValueError):
            dep.create_region(PaconConfig(workspace="/A"), nodes)

    def test_region_for_longest_prefix(self):
        cluster = Cluster()
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node("n0")]
        dep = PaconDeployment(cluster, dfs)
        ra = dep.create_region(PaconConfig(workspace="/x"), nodes)
        rb = dep.create_region(PaconConfig(workspace="/y"), nodes)
        assert dep.manager.region_for("/x/deep/path") is ra
        assert dep.manager.region_for("/y/f") is rb
        assert dep.manager.region_for("/z") is None

    def test_merge_overlapping_rejected(self):
        cluster = Cluster()
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node("n0")]
        dep = PaconDeployment(cluster, dfs)
        from repro.core.region import ConsistentRegion
        ra = ConsistentRegion(cluster, dfs, PaconConfig(workspace="/A"),
                              nodes)
        rb = ConsistentRegion(cluster, dfs, PaconConfig(workspace="/A/B"),
                              nodes)
        with pytest.raises(ValueError):
            ra.merge(rb)
