"""Tests for small-file inlining and the large-file path (§III.D.2)."""

import pytest

from repro.core.config import PaconConfig
from repro.dfs.errors import FileNotFound, IsADirectory
from tests.core.conftest import make_world


class TestSmallFiles:
    def test_write_read_inline(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"hello"))
        assert world.run(world.client.read("/app/f", 0, 5)) == b"hello"

    def test_partial_overwrite(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"aaaaaa"))
        world.run(world.client.write("/app/f", 2, data=b"XX"))
        assert world.run(world.client.read("/app/f", 0, 6)) == b"aaXXaa"

    def test_sparse_write_zero_fills(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 4, data=b"zz"))
        assert world.run(world.client.read("/app/f", 0, 6)) == b"\x00" * 4 + b"zz"

    def test_size_tracked(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 321))
        assert world.run(world.client.getattr("/app/f")).size == 321

    def test_write_to_directory_rejected(self, world):
        world.run(world.client.mkdir("/app/d"))
        with pytest.raises(IsADirectory):
            world.run(world.client.write("/app/d", 0, data=b"x"))

    def test_write_to_deleted_rejected(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        with pytest.raises(FileNotFound):
            world.run(world.client.write("/app/f", 0, data=b"x"))

    def test_concurrent_inline_writes_cas(self, world):
        """§III.D.3: CAS retries make concurrent inline updates lossless."""
        world.run(world.client.create("/app/f"))
        clients = [world.new_client(i) for i in range(4)]

        def writer(cl, i):
            yield from cl.write("/app/f", i * 10, data=bytes([65 + i]) * 10)

        for i, cl in enumerate(clients):
            world.cluster.env.process(writer(cl, i))
        world.cluster.run()
        data = world.run(world.client.read("/app/f", 0, 40))
        assert data == b"A" * 10 + b"B" * 10 + b"C" * 10 + b"D" * 10

    def test_data_arg_validation(self, world):
        world.run(world.client.create("/app/f"))
        with pytest.raises(ValueError):
            world.run(world.client.write("/app/f", 0))
        with pytest.raises(ValueError):
            world.run(world.client.write("/app/f", 0, data=b"x", size=5))


class TestThresholdCrossing:
    def test_grows_past_threshold_moves_to_dfs(self):
        config = PaconConfig(workspace="/app", small_file_threshold=256)
        world = make_world(config=config)
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 100))
        world.run(world.client.write("/app/f", 100, size=500))  # crosses
        record = world.region.cache.peek("/app/f")
        assert record["large"] is True
        assert record["inline_data"] is None
        assert record["committed"] is True
        assert world.dfs.namespace.exists("/app/f")
        assert world.dfs.namespace.getattr("/app/f").size == 600

    def test_large_file_ops_redirect(self):
        config = PaconConfig(workspace="/app", small_file_threshold=256)
        world = make_world(config=config)
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, size=1000))
        ds_before = sum(ds.bytes_written for ds in world.dfs.data_servers)
        world.run(world.client.write("/app/f", 1000, size=1000))
        ds_after = sum(ds.bytes_written for ds in world.dfs.data_servers)
        assert ds_after == ds_before + 1000
        assert world.run(world.client.getattr("/app/f")).size == 2000

    def test_threshold_exact_stays_inline(self):
        config = PaconConfig(workspace="/app", small_file_threshold=256)
        world = make_world(config=config)
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, size=256))
        assert world.region.cache.peek("/app/f")["large"] is False


class TestFsync:
    def test_fsync_committed_writes_through(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 100))
        world.quiesce()
        world.run(world.client.fsync("/app/f"))
        assert world.dfs.namespace.getattr("/app/f").size == 100

    def test_fsync_before_create_commits_uses_cache_file(self, world):
        """The direct-I/O cache-file trick: data is durable on the DFS even
        though the target file is not created there yet."""
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 64))
        # No quiesce: create likely uncommitted; fsync must still work.
        world.run(world.client.fsync("/app/f"))
        record = world.region.cache.peek("/app/f")
        # Either the data was parked in a shadow cache file (create still
        # uncommitted) or the commit won the race and fsync wrote through.
        wrote_through = world.dfs.namespace.getattr("/app/f").size == 64
        assert record["shadow"] is True or wrote_through
        # After the create commits, the data is written back to the file.
        world.quiesce()
        assert world.dfs.namespace.getattr("/app/f").size == 64

    def test_fsync_empty_file_noop(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.fsync("/app/f"))  # must not raise

    def test_fsync_deleted_rejected(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        with pytest.raises(FileNotFound):
            world.run(world.client.fsync("/app/f"))
