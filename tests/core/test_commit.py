"""Tests for the commit module: independent + barrier disciplines (§III.E)."""

import pytest

from repro.core.commit import CommitProcess, OpMessage
from repro.core.config import PaconConfig
from tests.core.conftest import make_world


class TestOpMessage:
    def test_only_independent_ops(self):
        with pytest.raises(ValueError):
            OpMessage(op="rmdir", path="/x")

    def test_fields(self):
        msg = OpMessage(op="create", path="/a", mode=0o600, epoch=3,
                        client_id=7, timestamp=1.5)
        assert (msg.op, msg.epoch, msg.client_id) == ("create", 3, 7)
        assert msg.retries == 0


class TestIndependentCommit:
    def test_out_of_order_cross_node_creates_converge(self):
        """Child queued on one node, parent on another: resubmission sorts
        the commit order out (§III.E independent commit)."""
        world = make_world(config=PaconConfig(workspace="/app",
                                              parent_check=False))
        child_client = world.new_client(0)
        parent_client = world.new_client(3)
        # Publish child first (its commit will ENOENT until parent lands).
        world.run(child_client.create("/app/dir/leaf"))
        world.run(parent_client.mkdir("/app/dir"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/dir/leaf")
        resubs = sum(cp.resubmissions for cp in world.region.commit_processes)
        assert resubs >= 1

    def test_deep_chain_out_of_order(self):
        world = make_world(config=PaconConfig(workspace="/app",
                                              parent_check=False))
        clients = [world.new_client(i % 4) for i in range(4)]
        # Queue deepest-first across different nodes.
        paths = ["/app/a/b/c/d", "/app/a/b/c", "/app/a/b", "/app/a"]
        for cl, path in zip(clients, paths):
            world.run(cl.mkdir(path))
        world.quiesce()
        for path in paths:
            assert world.dfs.namespace.exists(path)

    def test_rm_waits_for_create(self):
        """rm committed on a different node than the pending create."""
        world = make_world(config=PaconConfig(workspace="/app",
                                              parent_check=False))
        creator = world.new_client(0)
        world.run(creator.create("/app/dir/f"))   # blocked: no parent yet
        remover = world.new_client(2)
        world.run(remover.rm("/app/dir/f"))
        world.run(creator.mkdir("/app/dir"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/dir")
        assert not world.dfs.namespace.exists("/app/dir/f")

    def test_commit_stats_exposed(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        committed = sum(cp.committed for cp in world.region.commit_processes)
        assert committed == 1
        assert world.region.ops_committed == 1


class TestBarrierCommit:
    def test_barrier_drains_all_nodes(self, world):
        clients = [world.new_client(i) for i in range(4)]
        for i, cl in enumerate(clients):
            for j in range(10):
                world.run(cl.create(f"/app/c{i}_{j}"))
        # readdir barriers; afterwards every create must be on the DFS.
        names = world.run(clients[0].readdir("/app"))
        assert len(names) == 40
        assert world.dfs.namespace.readdir("/app") == names

    def test_sequential_barriers_advance_epochs(self, world):
        world.run(world.client.create("/app/f1"))
        world.run(world.client.readdir("/app"))
        world.run(world.client.create("/app/f2"))
        world.run(world.client.readdir("/app"))
        assert world.region.barrier_epochs_completed == 2
        for cp in world.region.commit_processes:
            assert cp.current_epoch == 2
            assert cp.barriers_passed == 2

    def test_ops_after_barrier_carry_new_epoch(self, world):
        world.run(world.client.readdir("/app"))
        world.run(world.client.create("/app/f"))
        # The create landed in epoch 1 and still commits fine.
        world.quiesce()
        assert world.dfs.namespace.exists("/app/f")

    def test_barrier_with_pending_resubmissions(self):
        """A blocked op must commit before its node passes the barrier."""
        world = make_world(config=PaconConfig(workspace="/app",
                                              parent_check=False))
        world.run(world.client.create("/app/d/leaf"))  # blocked
        other = world.new_client(1)
        world.run(other.mkdir("/app/d"))
        # readdir barrier: must observe both ops committed.
        names = world.run(world.client.readdir("/app/d"))
        assert names == ["leaf"]

    def test_discard_of_doomed_creates(self, world):
        """Creates racing with an rmdir are discarded, not retried forever
        (§III.D.1)."""
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        racer = world.new_client(1)

        done = []

        def race():
            # Publish a create in the removal window, then rmdir.
            yield from world.client.rmdir("/app/d")
            done.append("rmdir")

        def straggler():
            yield from racer.create("/app/d/straggler")
            done.append("create")

        world.cluster.env.process(straggler())
        world.cluster.env.process(race())
        world.cluster.run()
        world.quiesce()
        discarded = sum(cp.discarded for cp in world.region.commit_processes)
        # Either the straggler committed before the rmdir wiped it, or it
        # was discarded; in both cases nothing stalls and the dir is gone.
        assert not world.dfs.namespace.exists("/app/d") or \
            world.dfs.namespace.readdir("/app/d") == []
        assert "rmdir" in done


class TestCommitProcessLifecycle:
    def test_close_drains_and_exits(self, world):
        world.run(world.client.create("/app/f"))
        world.region.close()
        world.cluster.run()
        assert world.dfs.namespace.exists("/app/f")
        for cp in world.region.commit_processes:
            assert cp.idle

    def test_idle_reflects_backlog(self, world):
        world.run(world.client.create("/app/f"))
        # Immediately after the op returns, some process has backlog.
        assert any(not cp.idle for cp in world.region.commit_processes)
        world.quiesce()
        assert all(cp.idle for cp in world.region.commit_processes)
