"""chmod regressions: deleted records must not resurrect, races fall to DFS."""

import pytest

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.dfs.errors import FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make_quiet_world():
    """A world whose commit processes are NOT running, so cache records
    keep their uncommitted/deleted flags for as long as the test needs."""
    cluster = Cluster(seed=7)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"client{i}") for i in range(2)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(PaconConfig(workspace="/app"), nodes,
                                      start_commit=False)
    client = deployment.client(region, nodes[0])
    return cluster, region, client


def test_chmod_on_deleted_record_raises():
    cluster, region, client = make_quiet_world()
    path = "/app/doomed"
    run_sync(cluster.env, client.create(path), label="create")
    run_sync(cluster.env, client.rm(path), label="rm")
    record = region.cache.peek(path)
    assert record is not None and record["deleted"]

    # Pre-fix this fell through to the miss path and either resurrected
    # the inode from the DFS or registered a special permission for a
    # file that is going away.
    with pytest.raises(FileNotFound):
        run_sync(cluster.env, client.chmod(path, 0o600), label="chmod")

    assert path not in region.permissions.special
    record = region.cache.peek(path)
    assert record is not None and record["deleted"]
    assert record["mode"] != 0o600


def test_chmod_miss_falls_back_to_dfs_copy(world):
    path = "/app/file"
    world.run(world.client.create(path))
    world.quiesce()
    # Simulate the vanished-record race: a concurrent rm commit (or rmdir
    # cleanup) removed the cache entry between gets and cas, so
    # cache.update returned None even though the region had seen the path.
    assert world.region.cache.shard_for(path).kv.delete(path)

    world.run(world.client.chmod(path, 0o640))
    world.quiesce()

    inode = world.dfs.namespace.getattr(path, check_perms=False)
    assert inode.mode & 0o777 == 0o640
    refilled = world.region.cache.peek(path)
    assert refilled is not None
    assert refilled["mode"] == 0o640
    assert refilled["committed"]
    assert path in world.region.permissions.special


def test_chmod_missing_everywhere_raises(world):
    with pytest.raises(FileNotFound):
        world.run(world.client.chmod("/app/ghost", 0o600))
    assert "/app/ghost" not in world.region.permissions.special


def test_chmod_cached_record_updates_mode(world):
    path = "/app/plain"
    world.run(world.client.create(path))
    world.run(world.client.chmod(path, 0o604))
    record = world.region.cache.peek(path)
    assert record["mode"] == 0o604
    assert path in world.region.permissions.special
    world.quiesce()
