"""Region bookkeeping fixes: removed-subtree pruning and elastic growth
during an in-flight barrier rendezvous."""

import time

from repro.core.commit import CommitProcess
from repro.core.config import PaconConfig
from tests.core.conftest import make_world


def advance(world, dt):
    def gen():
        yield world.cluster.env.timeout(dt)
    world.run(gen())


class TestRemovedSubtreePruning:
    def test_index_stays_bounded_after_many_rmdirs(self):
        """10k recorded removals must not accumulate 10k timestamped
        entries: with an empty commit pipeline, everything older than the
        current instant is prunable."""
        world = make_world()
        for i in range(10_000):
            world.region.note_removed_subtree(f"/app/d{i}")
            if i % 500 == 499:
                advance(world, 1e-3)
        advance(world, 1e-3)
        world.region.prune_removed_subtrees()
        # Only the last same-instant chunk can survive (strict < cutoff).
        assert len(world.region.removed_subtrees) <= 600
        # The orphan-query dedup set keeps every prefix (O(depth) lookups).
        assert len(world.region._ever_removed) == 10_000

    def test_discard_checks_stay_flat_after_many_rmdirs(self):
        """The discard precheck is O(path depth), not O(#removals ever).
        A linear scan of 10k entries per check (the old representation)
        takes tens of seconds here; the prefix index takes well under a
        second even on slow CI."""
        world = make_world()
        for i in range(10_000):
            world.region.note_removed_subtree(f"/app/d{i}")
        started = time.perf_counter()
        for i in range(20_000):
            world.region.inside_removed_subtree(f"/app/d{i % 10_000}/x/y",
                                                0.0)
            world.region.inside_removed_subtree(f"/app/d{i % 10_000}/x/y")
        assert time.perf_counter() - started < 2.0

    def test_pruning_preserves_discard_semantics(self):
        """An op with ts == removed_at is still doomed after other entries
        prune, and the timestamp-free orphan query survives pruning."""
        world = make_world()
        region = world.region
        region.note_removed_subtree("/app/old")
        advance(world, 1.0)
        region.note_removed_subtree("/app/fresh")
        removed_at = dict(region.removed_subtrees)["/app/fresh"]
        region.prune_removed_subtrees()
        # /app/old pruned (no outstanding op can predate it) ...
        assert dict(region.removed_subtrees).keys() == {"/app/fresh"}
        # ... but the bounded query still dooms same-instant stragglers,
        assert region.inside_removed_subtree("/app/fresh/f", removed_at)
        assert not region.inside_removed_subtree("/app/fresh/f",
                                                 removed_at + 1e-9)
        # ... and the unbounded (orphan) query never forgets.
        assert region.inside_removed_subtree("/app/old/f")

    def test_queue_backlog_holds_the_prune_cutoff(self):
        """A queued op older than a removal keeps its entry alive."""
        world = make_world(config=PaconConfig(workspace="/app",
                                              parent_check=False))
        region = world.region
        # Publish an op that cannot commit yet (missing parent) so the
        # pipeline retains something old.  Short advances: the blocked op
        # burns one resubmission per commit_retry_delay while we wait.
        world.run(world.client.create("/app/missing/leaf"))
        advance(world, 1e-3)
        region.note_removed_subtree("/app/doomed")
        advance(world, 1e-3)
        assert region.prune_removed_subtrees() == 0
        assert "/app/doomed" in dict(region.removed_subtrees)
        # Unblock, drain, and the entry becomes prunable.
        world.run(world.new_client(1).mkdir("/app/missing"))
        world.quiesce()
        advance(world, 1e-6)
        region.prune_removed_subtrees()
        assert dict(region.removed_subtrees) == {}

    def test_commits_still_work_after_heavy_pruning(self):
        world = make_world()
        for i in range(1000):
            world.region.note_removed_subtree(f"/app/gone{i}")
        advance(world, 1e-3)
        world.run(world.client.create("/app/alive"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/alive")


class TestGrowDuringBarrier:
    def test_add_node_mid_rendezvous_does_not_deadlock(self):
        """Growing the region while a barrier epoch is in flight must not
        change that epoch's party count: the new node has no barrier
        message for it and could never arrive."""
        world = make_world(n_nodes=2)
        env = world.cluster.env
        world.run(world.client.create("/app/f1"))
        _epoch, done = world.region.trigger_barrier()
        # Grow while the rendezvous is pending (no quiesce on purpose).
        new_node = world.cluster.add_node("grown")
        world.region.add_node(new_node)
        dfs_client = world.dfs.client(new_node,
                                      uid=world.region.config.uid,
                                      gid=world.region.config.gid)
        CommitProcess(world.region, new_node, dfs_client).start()
        env.run()
        assert done.triggered  # deadlock shows up as an untriggered event
        assert world.region.barrier_epochs_completed == 1
        # The deferred bump landed once the in-flight epoch completed.
        assert world.region.commit_barrier.parties == 3

    def test_grown_node_participates_in_later_epochs(self):
        world = make_world(n_nodes=2)
        env = world.cluster.env
        world.run(world.client.create("/app/f1"))
        _epoch, done = world.region.trigger_barrier()
        new_node = world.cluster.add_node("grown")
        world.region.add_node(new_node)
        dfs_client = world.dfs.client(new_node,
                                      uid=world.region.config.uid,
                                      gid=world.region.config.gid)
        grown_cp = CommitProcess(world.region, new_node, dfs_client)
        grown_cp.start()
        env.run()
        assert done.triggered
        _epoch2, done2 = world.region.trigger_barrier()
        env.run()
        assert done2.triggered
        assert world.region.barrier_epochs_completed == 2
        assert grown_cp.barriers_passed == 1

    def test_quiesced_growth_bumps_immediately(self):
        """The deploy-level path (quiesce first) needs no deferral."""
        world = make_world(n_nodes=2)
        world.run(world.client.create("/app/f"))
        world.quiesce()
        new_node = world.cluster.add_node("grown")
        world.region.add_node(new_node)
        assert world.region.commit_barrier.parties == 3
        assert world.region._deferred_barrier_parties == []
