"""Tests for the client-side parent-directory memo (hot-path optimization)."""

import pytest

from repro.dfs.errors import FileNotFound
from tests.core.conftest import make_world


class TestParentMemo:
    def test_memo_saves_cache_rpcs(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f1"))
        hits_before = world.client.cache_hits + world.client.cache_misses
        world.run(world.client.create("/app/d/f2"))
        # Second create under the same parent does no parent-check KV get.
        assert world.client.cache_hits + world.client.cache_misses == \
            hits_before

    def test_memo_populated_by_own_mkdir(self, world):
        world.run(world.client.mkdir("/app/d"))
        assert "/app/d" in world.client._parent_memo

    def test_memo_invalidated_by_rmdir(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.mkdir("/app/d/sub"))
        world.run(world.client.rmdir("/app/d"))
        assert "/app/d" not in world.client._parent_memo
        assert "/app/d/sub" not in world.client._parent_memo
        with pytest.raises(FileNotFound):
            world.run(world.client.create("/app/d/f"))

    def test_memo_is_per_client(self, world):
        other = world.new_client(1)
        world.run(world.client.mkdir("/app/d"))
        assert "/app/d" not in other._parent_memo
        # The other client verifies via the shared cache and then memoizes.
        world.run(other.create("/app/d/f"))
        assert "/app/d" in other._parent_memo

    def test_stale_memo_defers_to_commit_machinery(self, world):
        """A memo made stale by another client's rmdir must not corrupt
        anything: the create lands in the cache, and the commit layer
        discards or resolves it — the DFS never ends up inconsistent."""
        creator = world.new_client(1)
        world.run(world.client.mkdir("/app/d"))
        world.run(creator.create("/app/d/seed"))  # memoizes /app/d
        world.run(world.client.rmdir("/app/d"))
        # creator's memo is stale; its create may succeed locally.
        try:
            world.run(creator.create("/app/d/orphan"))
        except FileNotFound:
            pass  # also acceptable: the cache miss detected removal
        world.quiesce()
        assert not world.dfs.namespace.exists("/app/d/orphan")
