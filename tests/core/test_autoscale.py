"""Tests for the elastic membership controller (repro.core.autoscale).

Covers the control-loop contract: hysteresis (consecutive-tick streaks),
cooldown spacing, min/max pool bounds, the burn-rate SLO trigger, and
composition with chaos faults (scale-up racing a node crash).
"""

import pytest

from repro.core.autoscale import Autoscaler
from repro.core.config import PaconConfig
from repro.core.failure import fail_node, recover_node
from tests.core.conftest import make_world


def _elastic_config(**overrides) -> PaconConfig:
    knobs = dict(
        workspace="/app",
        autoscale_min_nodes=2,
        autoscale_max_nodes=4,
        autoscale_interval=0.5e-3,
        autoscale_cooldown=1e-3,
        autoscale_backlog_high=4.0,
        autoscale_backlog_low=1.0,
        autoscale_up_consecutive=2,
        autoscale_down_consecutive=3,
    )
    knobs.update(overrides)
    return PaconConfig(**knobs)


def _storm(world, items: int = 300):
    """A commit-queue storm: creates issued faster than commits drain."""
    def gen():
        for i in range(items):
            yield from world.client.create(f"/app/s{i:03d}")
    return world.cluster.env.process(gen(), label="storm")


class TestScalingLoop:
    def test_backlog_storm_grows_then_idle_shrinks(self):
        w = make_world(n_nodes=2, config=_elastic_config())
        env = w.cluster.env
        scaler = Autoscaler(w.deployment, w.region)
        scaler.start()
        _storm(w)
        env.run(until=0.2)
        assert scaler.scale_ups >= 1
        assert max(n for _, n in w.region.membership_log) > 2
        # Once the storm drains, the idle pool shrinks back to the floor.
        env.run(until=0.6)
        assert scaler.scale_downs >= 1
        assert len(w.region.nodes) == 2
        # Retirements only ever touch controller-added nodes.
        assert w.region.nodes == w.nodes
        # Cooldown: successful actions are spaced at least a cooldown
        # apart.
        times = [a.time for a in scaler.actions if a.ok]
        cooldown = w.region.config.autoscale_cooldown
        assert all(b - a >= cooldown for a, b in zip(times, times[1:]))
        scaler.stop()

    def test_hysteresis_streak_gates_growth(self):
        """The same storm must NOT trigger growth when the up-streak
        requirement is unreachable — one hot tick is not a trend."""
        w = make_world(n_nodes=2,
                       config=_elastic_config(autoscale_up_consecutive=10**6))
        env = w.cluster.env
        scaler = Autoscaler(w.deployment, w.region)
        scaler.start()
        _storm(w)
        env.run(until=0.2)
        assert scaler.scale_ups == 0
        assert len(w.region.nodes) == 2
        scaler.stop()

    def test_max_bound_rejects_growth(self):
        """A region already at its ceiling records overload as a
        rejected grow instead of provisioning past the bound."""
        w = make_world(n_nodes=2,
                       config=_elastic_config(autoscale_max_nodes=2))
        env = w.cluster.env
        scaler = Autoscaler(w.deployment, w.region)
        scaler.start()
        _storm(w)
        env.run(until=0.2)
        assert scaler.scale_ups == 0
        assert len(w.region.nodes) == 2
        assert scaler.rejected >= 1, "sustained overload at max must be" \
                                     " recorded as a rejected grow"
        scaler.stop()

    def test_min_bound_is_quietly_held(self):
        """An idle region at the floor is steady state: no retire
        attempts, no rejected-action noise."""
        w = make_world(n_nodes=2, config=_elastic_config())
        env = w.cluster.env
        scaler = Autoscaler(w.deployment, w.region)
        scaler.start()
        env.run(until=0.05)  # ~100 idle ticks
        assert scaler.scale_downs == 0
        assert scaler.rejected == 0
        assert len(w.region.nodes) == 2
        scaler.stop()


class TestBurnRateTrigger:
    def test_burning_slo_forces_scale_up_without_load(self):
        from repro.obs.hub import MetricsHub

        cfg = _elastic_config(
            autoscale_burn_threshold=10e-6,
            autoscale_burn_budget=0.25,
            # Make the load-based triggers unreachable: only the SLO
            # hook can grow this region.
            autoscale_backlog_high=10**9,
            autoscale_util_high=1.0,
            autoscale_up_consecutive=10**6,
        )
        w = make_world(n_nodes=2, config=cfg)
        env = w.cluster.env
        hub = MetricsHub(sample_interval=None)
        hub.attach_region(w.region, start_sampler=False)
        scaler = Autoscaler(w.deployment, w.region)
        scaler.start()
        # No load at all: every tick is underloaded.  Paint the
        # staleness gauge far above the objective's threshold so every
        # burn window is over budget.
        series_name = f"consistency.pending_age[{w.region.name}]"
        for i in range(8):
            hub.record_sample(series_name, i * 1e-3, 500e-6)
        env.run(until=0.02)
        assert scaler.scale_ups >= 1
        grow = next(a for a in scaler.actions if a.kind == "grow")
        assert grow.reason == "burn_rate"
        assert grow.ok
        scaler.stop()


class TestChaosComposition:
    def test_scale_up_races_peer_crash(self):
        """Growth triggered while a base node is down must complete
        (the dead shard is skipped) and the region converges after
        recovery."""
        w = make_world(n_nodes=3, config=_elastic_config())
        for i in range(20):
            w.run(w.client.create(f"/app/f{i:02d}"))
        w.quiesce()
        fail_node(w.region, w.nodes[1])
        scaler = Autoscaler(w.deployment, w.region)
        w.run(scaler._scale_up("util"))
        assert scaler.scale_ups == 1
        assert scaler.failed == 0
        action = scaler.actions[-1]
        assert action.ok and action.kind == "grow"
        assert len(w.region.nodes) == 4
        recover_node(w.region, w.nodes[1])
        w.quiesce()
        for i in range(20):
            inode = w.run(w.client.getattr(f"/app/f{i:02d}"))
            assert inode.is_file

    def test_scale_up_onto_dead_node_is_recorded_not_raised(self):
        """The warm-pool node itself crashing mid-provision must be
        swallowed into the action record, never raised out of the
        control loop.  The node joined the ring before the failure, so
        it is kept (a crashed member, recovery's problem) with the
        migration abandoned."""
        w = make_world(n_nodes=2, config=_elastic_config())
        doomed = w.cluster.add_node("doomed")
        doomed.fail()
        scaler = Autoscaler(w.deployment, w.region,
                            node_factory=lambda: doomed)
        w.run(scaler._scale_up("util"))
        assert scaler.failed == 1
        action = scaler.actions[-1]
        assert action.error
        assert action.ok  # it joined before the crash, so it is kept
        assert action.moved == 0
        assert doomed in w.region.nodes
        # Standard crash recovery brings the member online and the
        # region converges end to end.
        recover_node(w.region, doomed)
        w.run(w.client.create("/app/after"))
        w.quiesce()
        assert w.dfs.namespace.exists("/app/after")

    def test_failed_grow_records_symmetric_metrics_and_timeline(self):
        """Failure paths must cost what success paths cost: a latency
        observation, a structured failure counter, and a ``scale.failed``
        timeline event the blame attributor can rank."""
        from repro.obs.hub import MetricsHub

        w = make_world(n_nodes=2, config=_elastic_config())
        hub = MetricsHub(sample_interval=None)
        hub.attach_region(w.region)
        doomed = w.cluster.add_node("doomed")
        doomed.fail()
        scaler = Autoscaler(w.deployment, w.region,
                            node_factory=lambda: doomed)
        w.run(scaler._scale_up("util"))
        assert scaler.failed == 1
        doc = hub.export()
        assert doc["counters"]["autoscale.action_failed"] == 1
        assert doc["counters"][
            "autoscale.action_failed[grow:NodeDownError]"] == 1
        assert doc["histograms"]["autoscale.action_latency"]["count"] == 1
        (ev,) = [e for e in hub.timeline.events()
                 if e.kind == "scale.failed"]
        assert ev.source == "autoscale"
        assert "error=" in ev.detail

    def test_grow_retire_reject_land_on_the_timeline(self):
        from repro.obs.hub import MetricsHub

        w = make_world(n_nodes=2, config=_elastic_config())
        hub = MetricsHub(sample_interval=None)
        hub.attach_region(w.region)
        scaler = Autoscaler(w.deployment, w.region)
        w.run(scaler._scale_up("util"))
        added = scaler._added[-1]
        w.run(scaler._scale_down(added, "idle"))
        scaler._reject("grow", "max_nodes=4 reached")
        scale_events = [ev for ev in hub.timeline.events()
                        if ev.source == "autoscale"]
        kinds = [ev.kind for ev in scale_events]
        assert kinds == ["scale.grow", "scale.retire", "scale.rejected"]
        # Membership churn from the same actions lands on its own track.
        member_kinds = [ev.kind for ev in hub.timeline.events()
                        if ev.source == "membership"]
        assert member_kinds == ["node.joined", "node.departed"]
        grow, retire, rejected = scale_events
        assert grow.duration > 0.0 and retire.duration > 0.0
        assert "max_nodes" in rejected.detail
        doc = hub.export()
        assert doc["histograms"]["autoscale.action_latency"]["count"] == 2

    def test_retire_candidate_skips_dead_and_base_nodes(self):
        w = make_world(n_nodes=2, config=_elastic_config())
        scaler = Autoscaler(w.deployment, w.region)
        # Nothing added yet: base nodes are never candidates.
        assert scaler._retire_candidate() is None
        w.run(scaler._scale_up("util"))
        added = scaler._added[-1]
        assert scaler._retire_candidate() is added
        added.fail()
        assert scaler._retire_candidate() is None
