"""Table I conformance: each operation's cache op / comm type / commit type.

The paper's Table I is the design contract for the client; these tests
execute each operation on a live deployment and assert the observed
classification (via the client's trace hook) and the observable side
effects (DFS traffic or not, commit discipline used).
"""

import pytest

from tests.core.conftest import make_world


@pytest.fixture
def world():
    return make_world()


class TestTableI:
    def test_create_put_async_indep(self, world):
        mds_before = world.dfs.mds_servers[0].requests_served
        world.run(world.client.create("/app/f"))
        t = world.client.last_trace
        assert t == {"op": "create", "cache_op": "put", "comm": "async",
                     "commit": "indep"}
        # async: returned without the DFS seeing it yet
        assert world.dfs.mds_servers[0].requests_served == mds_before
        assert not world.dfs.namespace.exists("/app/f")

    def test_mkdir_put_async_indep(self, world):
        world.run(world.client.mkdir("/app/d"))
        t = world.client.last_trace
        assert t == {"op": "mkdir", "cache_op": "put", "comm": "async",
                     "commit": "indep"}

    def test_rm_update_delete_async_indep(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        t = world.client.last_trace
        assert t == {"op": "rm", "cache_op": "update+delete",
                     "comm": "async", "commit": "indep"}
        # update: marked deleted now; delete: removed after commit
        world.quiesce()
        assert world.region.cache.peek("/app/f") is None

    def test_getattr_hit_get_no_comm(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.getattr("/app/f"))
        t = world.client.last_trace
        assert t == {"op": "getattr", "cache_op": "get", "comm": "none",
                     "commit": "none"}

    def test_getattr_miss_sync_indep(self, world):
        world.dfs.namespace.create("/app/cold", uid=1000, gid=1000)
        world.run(world.client.getattr("/app/cold"))
        t = world.client.last_trace
        assert t == {"op": "getattr", "cache_op": "get",
                     "comm": "sync(miss)", "commit": "indep(miss)"}

    def test_rmdir_delete_sync_barrier(self, world):
        world.run(world.client.mkdir("/app/d"))
        epochs = world.region.barrier_epochs_completed
        world.run(world.client.rmdir("/app/d"))
        t = world.client.last_trace
        assert t == {"op": "rmdir", "cache_op": "delete", "comm": "sync",
                     "commit": "barrier"}
        assert world.region.barrier_epochs_completed == epochs + 1
        # sync: already gone from the DFS when the call returns
        assert not world.dfs.namespace.exists("/app/d")

    def test_readdir_nocache_sync_barrier(self, world):
        epochs = world.region.barrier_epochs_completed
        world.run(world.client.readdir("/app"))
        t = world.client.last_trace
        assert t == {"op": "readdir", "cache_op": "none", "comm": "sync",
                     "commit": "barrier"}
        assert world.region.barrier_epochs_completed == epochs + 1

    def test_small_write_cas_async(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 100))
        t = world.client.last_trace
        assert t["cache_op"] == "cas-update"
        assert t["comm"] == "async"

    def test_large_write_sync_redirect(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, size=100_000))
        t = world.client.last_trace
        assert t["comm"] == "sync"

    def test_small_read_single_kv_get(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"payload"))
        world.quiesce()
        mds_before = world.dfs.mds_servers[0].requests_served
        data = world.run(world.client.read("/app/f", 0, 7))
        assert data == b"payload"
        # metadata + data in one KV request: zero DFS traffic
        assert world.dfs.mds_servers[0].requests_served == mds_before
        assert world.client.last_trace["comm"] == "none"
