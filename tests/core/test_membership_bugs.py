"""Regression tests for the membership-change lifecycle bugs.

Three bugs surfaced by auditing :mod:`repro.core.deploy` for the
autoscaler:

1. retiring the only remaining node raised a bare ``StopIteration``
   inside the generator (→ ``RuntimeError`` under PEP 479) instead of a
   clear refusal;
2. grow migration wrote moved records with a clobbering ``set``, so a
   record mutated concurrently on the new shard mid-migration was
   silently reverted to the stale departing copy;
3. ``quiesce`` polled ``cp.idle`` over *all* commit processes including
   crashed ones, so quiesce (and therefore grow/retire/close) hung
   forever after a chaos ``fail_node``.
"""

import pytest

from repro.core.failure import fail_node, recover_node
from tests.core.conftest import make_world


class TestRetireLastNode:
    def test_retiring_last_node_is_refused(self):
        w = make_world(n_nodes=1)
        with pytest.raises(ValueError, match="shrink below"):
            w.deployment.retire_node(w.region, w.nodes[0])

    def test_refusal_leaves_region_untouched(self):
        w = make_world(n_nodes=1)
        w.run(w.client.create("/app/survivor"))
        with pytest.raises(ValueError):
            w.deployment.retire_node(w.region, w.nodes[0])
        assert w.region.nodes == [w.nodes[0]]
        assert len(w.region.shards) == 1
        assert all(cp.alive for cp in w.region.commit_processes)
        # The region still works end to end after the refused retirement.
        w.quiesce()
        assert w.dfs.namespace.exists("/app/survivor")

    def test_retiring_foreign_node_is_refused(self):
        w = make_world(n_nodes=2)
        outsider = w.cluster.add_node("outsider")
        with pytest.raises(ValueError, match="not part of region"):
            w.deployment.retire_node(w.region, outsider)


class TestGrowMigrationRace:
    def test_concurrent_mutation_survives_migration(self):
        """A record written to the new shard *while* migration is copying
        older keys must not be reverted by the stale departing copy."""
        w = make_world(n_nodes=2)
        env = w.cluster.env
        for i in range(40):
            w.run(w.client.create(f"/app/f{i:02d}"))
        w.quiesce()
        new_node = w.cluster.add_node("grown")
        hit = {}

        def racer():
            while new_node not in w.region.nodes:
                yield env.timeout(5e-6)
            new_shard = next(s for s in w.region.shards
                             if s.node is new_node)
            # Keys below are still on their old shards but now route to
            # the new shard: migration will move them in this order.
            pending = []
            for old in w.region.shards:
                if old is new_shard:
                    continue
                for key, rec in old.kv.scan_prefix(""):
                    if w.region.cache.shard_for(key) is new_shard:
                        pending.append((key, rec))
            assert len(pending) >= 2, "need a key migrated late enough"
            key, rec = pending[-1]
            mutated = dict(rec, mode=0o640)
            yield from new_shard.request(w.nodes[0], "set", key, mutated)
            hit["key"], hit["shard"] = key, new_shard

        def driver():
            env.process(racer(), label="racer")
            moved = yield from w.deployment.grow_region_async(
                w.region, new_node)
            return moved

        moved = w.run(driver())
        assert moved > 0
        key, new_shard = hit["key"], hit["shard"]
        record = new_shard.kv.get(key)
        assert record is not None
        assert record["mode"] == 0o640, \
            "stale departing copy clobbered the concurrent mutation"
        # The old copy is gone regardless of who won.
        for old in w.region.shards:
            if old is not new_shard:
                assert old.kv.get(key) is None


class TestQuiesceWithDeadProcess:
    def test_quiesce_completes_after_node_crash(self):
        """Barrier markers broadcast into a dead node's queue must not
        wedge quiesce: the dead process is recovery's problem."""
        w = make_world(n_nodes=3)
        env = w.cluster.env
        w.run(w.client.mkdir("/app/d"))
        w.quiesce()
        fail_node(w.region, w.nodes[2])
        # Broadcasts a barrier marker into every queue — including the
        # dead node's, which nothing drains until recovery.
        w.region.trigger_barrier()
        proc = env.process(w.deployment.quiesce(w.region), label="q")
        env.run(until=env.now + 0.05)
        assert not proc.is_alive, "quiesce hung on a crashed process"

    def test_recovery_after_skipped_quiesce_converges(self):
        w = make_world(n_nodes=3)
        env = w.cluster.env
        w.run(w.client.mkdir("/app/d"))
        w.quiesce()
        fail_node(w.region, w.nodes[2])
        w.region.trigger_barrier()
        proc = env.process(w.deployment.quiesce(w.region), label="q")
        env.run(until=env.now + 0.05)
        assert not proc.is_alive
        recover_node(w.region, w.nodes[2])
        env.run(until=env.now + 0.05)  # let the epoch rendezvous finish
        w.quiesce()
        assert all(cp.idle for cp in w.region.commit_processes)
        assert w.region.barrier_epochs_completed == w.region.client_epoch

    def test_grow_while_peer_is_down(self):
        """Chaos-interleaved growth: scale-up racing a node crash must
        complete (skipping the wiped, unreachable shard) and converge
        once the peer recovers."""
        w = make_world(n_nodes=3)
        for i in range(20):
            w.run(w.client.create(f"/app/f{i:02d}"))
        w.quiesce()
        fail_node(w.region, w.nodes[1])
        new_node = w.cluster.add_node("grown")
        moved = w.deployment.grow_region(w.region, new_node)
        assert new_node in w.region.nodes
        assert moved >= 0
        recover_node(w.region, w.nodes[1])
        w.quiesce()
        # Every record is still reachable (wiped/moved ones refill).
        for i in range(20):
            inode = w.run(w.client.getattr(f"/app/f{i:02d}"))
            assert inode.is_file
