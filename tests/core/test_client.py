"""Integration tests for PaconClient operations (§III.D)."""

import pytest

from repro.core.config import PaconConfig
from repro.core.region import ReadOnlyRegion
from repro.dfs.errors import (
    FileExists,
    FileNotFound,
    IsADirectory,
    PermissionDenied,
)
from tests.core.conftest import make_world


class TestCreateMkdir:
    def test_create_visible_in_cache_before_dfs(self, world):
        world.run(world.client.create("/app/f"))
        assert world.region.cache.peek("/app/f") is not None
        # The commit is asynchronous: the DFS may not have it yet.
        inode = world.run(world.client.getattr("/app/f"))
        assert inode.is_file

    def test_commit_reaches_dfs_after_quiesce(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/f")

    def test_committed_flag_flips(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        assert world.region.cache.peek("/app/f")["committed"] is True

    def test_duplicate_create_rejected(self, world):
        world.run(world.client.create("/app/f"))
        with pytest.raises(FileExists):
            world.run(world.client.create("/app/f"))

    def test_mkdir_then_create_inside(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/d/f")

    def test_parent_check_missing_parent(self, world):
        with pytest.raises(FileNotFound):
            world.run(world.client.create("/app/nodir/f"))

    def test_parent_check_disabled_allows_out_of_order(self):
        config = PaconConfig(workspace="/app", parent_check=False)
        world = make_world(config=config)
        # Child queued before parent exists anywhere; resubmission sorts it.
        world.run(world.client.create("/app/late/f"))
        world.run(world.client.mkdir("/app/late"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/late/f")

    def test_parent_cached_from_dfs_when_preexisting(self, world):
        # Admin created a dir on the DFS that Pacon has never seen.
        world.dfs.namespace.mkdir("/app/preexisting", mode=0o700,
                                  uid=1000, gid=1000)
        world.run(world.client.create("/app/preexisting/f"))
        assert world.region.cache.peek("/app/preexisting") is not None
        world.quiesce()
        assert world.dfs.namespace.exists("/app/preexisting/f")

    def test_mode_defaults_to_region_permission(self, world):
        inode = world.run(world.client.create("/app/f"))
        assert inode.mode == world.region.permissions.normal.mode

    def test_permission_denied_for_wrong_user(self):
        config = PaconConfig(workspace="/app", uid=1000, gid=1000)
        world = make_world(config=config)
        world.client.uid = 4242  # different system user
        with pytest.raises(PermissionDenied):
            world.run(world.client.create("/app/f"))


class TestGetattr:
    def test_hit_from_cache_no_dfs_traffic(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()  # let the async commit's own MDS traffic settle
        before = world.dfs.mds_servers[0].requests_served
        world.run(world.client.getattr("/app/f"))
        assert world.dfs.mds_servers[0].requests_served == before

    def test_miss_loads_from_dfs_into_cache(self, world):
        world.dfs.namespace.create("/app/cold", uid=1000, gid=1000)
        inode = world.run(world.client.getattr("/app/cold"))
        assert inode.is_file
        assert world.region.cache.peek("/app/cold")["committed"] is True
        # Second access is a pure cache hit.
        before = world.dfs.mds_servers[0].requests_served
        world.run(world.client.getattr("/app/cold"))
        assert world.dfs.mds_servers[0].requests_served == before

    def test_missing_everywhere_enoent(self, world):
        with pytest.raises(FileNotFound):
            world.run(world.client.getattr("/app/ghost"))

    def test_deleted_marker_hides_entry(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        with pytest.raises(FileNotFound):
            world.run(world.client.getattr("/app/f"))

    def test_exists_helper(self, world):
        world.run(world.client.create("/app/f"))
        assert world.run(world.client.exists("/app/f"))
        assert not world.run(world.client.exists("/app/g"))


class TestRm:
    def test_rm_marks_then_deletes_after_commit(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        marked = world.region.cache.peek("/app/f")
        assert marked is None or marked["deleted"] is True
        world.quiesce()
        assert world.region.cache.peek("/app/f") is None
        assert not world.dfs.namespace.exists("/app/f")

    def test_rm_missing_enoent(self, world):
        with pytest.raises(FileNotFound):
            world.run(world.client.rm("/app/ghost"))

    def test_rm_directory_eisdir(self, world):
        world.run(world.client.mkdir("/app/d"))
        with pytest.raises(IsADirectory):
            world.run(world.client.rm("/app/d"))

    def test_rm_double_enoent(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        with pytest.raises(FileNotFound):
            world.run(world.client.rm("/app/f"))

    def test_rm_dfs_resident_uncached(self, world):
        world.dfs.namespace.create("/app/cold", uid=1000, gid=1000)
        world.run(world.client.rm("/app/cold"))
        world.quiesce()
        assert not world.dfs.namespace.exists("/app/cold")

    def test_recreate_after_rm(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.rm("/app/f"))
        world.run(world.client.create("/app/f"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/f")


class TestRmdirReaddir:
    def test_rmdir_removes_subtree_everywhere(self, world):
        world.run(world.client.mkdir("/app/d"))
        for i in range(5):
            world.run(world.client.create(f"/app/d/f{i}"))
        removed = world.run(world.client.rmdir("/app/d"))
        assert removed == 6
        assert not world.dfs.namespace.exists("/app/d")
        assert world.region.cache.peek("/app/d") is None
        assert world.region.cache.peek("/app/d/f0") is None

    def test_rmdir_waits_for_earlier_ops(self, world):
        """Barrier semantics: ops before the rmdir are on the DFS first."""
        world.run(world.client.mkdir("/app/d"))
        for i in range(20):
            world.run(world.client.create(f"/app/d/f{i}"))
        # No quiesce: the rmdir itself must flush the queue via barrier.
        removed = world.run(world.client.rmdir("/app/d"))
        assert removed == 21

    def test_rmdir_region_root_rejected(self, world):
        with pytest.raises(PermissionDenied):
            world.run(world.client.rmdir("/app"))

    def test_readdir_sees_all_queued_creates(self, world):
        world.run(world.client.mkdir("/app/d"))
        for name in ["x", "y", "z"]:
            world.run(world.client.create(f"/app/d/{name}"))
        names = world.run(world.client.readdir("/app/d"))
        assert names == ["x", "y", "z"]

    def test_readdir_is_barrier_not_cache_scan(self, world):
        world.run(world.client.create("/app/f"))
        epochs_before = world.region.barrier_epochs_completed
        world.run(world.client.readdir("/app"))
        assert world.region.barrier_epochs_completed == epochs_before + 1

    def test_create_after_rmdir_same_name(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        world.run(world.client.rmdir("/app/d"))
        world.run(world.client.mkdir("/app/d"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/d")
        assert not world.dfs.namespace.exists("/app/d/f")


class TestRedirect:
    def test_out_of_region_ops_hit_dfs(self, world):
        world.dfs.namespace.mkdir("/public", mode=0o777)

        def scenario():
            yield from world.client.create("/public/f")
            inode = yield from world.client.getattr("/public/f")
            return inode

        inode = world.run(scenario())
        assert inode.is_file
        assert world.client.redirects == 2
        # Redirected writes are synchronous: already on the DFS.
        assert world.dfs.namespace.exists("/public/f")

    def test_out_of_region_not_cached(self, world):
        world.dfs.namespace.mkdir("/public", mode=0o777)
        world.run(world.client.create("/public/f"))
        assert world.region.cache.peek("/public/f") is None

    def test_out_of_region_subject_to_dfs_permissions(self, world):
        world.dfs.namespace.mkdir("/locked", mode=0o700, uid=1, gid=1)
        with pytest.raises(PermissionDenied):
            world.run(world.client.create("/locked/f"))


class TestMultiClientConsistency:
    def test_create_visible_to_other_node_immediately(self, world):
        other = world.new_client(node_index=3)
        world.run(world.client.create("/app/f"))
        # Strong consistency inside the region: no quiesce needed.
        inode = world.run(other.getattr("/app/f"))
        assert inode.is_file

    def test_rm_visible_to_other_node_immediately(self, world):
        other = world.new_client(node_index=2)
        world.run(world.client.create("/app/f"))
        world.run(other.rm("/app/f"))
        with pytest.raises(FileNotFound):
            world.run(world.client.getattr("/app/f"))

    def test_concurrent_create_one_winner(self, world):
        clients = [world.new_client(i) for i in range(4)]
        outcomes = []

        def racer(cl):
            try:
                yield from cl.create("/app/contested")
                outcomes.append("won")
            except FileExists:
                outcomes.append("lost")

        for cl in clients:
            world.cluster.env.process(racer(cl))
        world.cluster.run()
        assert outcomes.count("won") == 1
        assert outcomes.count("lost") == 3
        world.quiesce()
        assert world.dfs.namespace.exists("/app/contested")
