"""Tests for cache space management (§III.F)."""

import pytest

from repro.core.config import PaconConfig
from tests.core.conftest import make_world


def small_cache_world(capacity=40_000, n_nodes=2):
    config = PaconConfig(workspace="/app", cache_capacity_bytes=capacity)
    return make_world(config=config, n_nodes=n_nodes)


class TestPressureDetection:
    def test_no_pressure_when_empty(self, world):
        ev = world.deployment.evictor(world.region)
        assert not ev.under_pressure()

    def test_pressure_after_fill(self):
        world = small_cache_world(capacity=6_000)
        ev = world.deployment.evictor(world.region)
        world.run(world.client.mkdir("/app/d0"))
        i = 0
        while not ev.under_pressure() and i < 200:
            world.run(world.client.create(f"/app/d0/f{i}"))
            i += 1
        assert ev.under_pressure()


class TestEvictOnce:
    def test_evicts_committed_entries(self):
        world = small_cache_world()
        for d in range(4):
            world.run(world.client.mkdir(f"/app/d{d}"))
            for i in range(5):
                world.run(world.client.create(f"/app/d{d}/f{i}"))
        world.quiesce()  # everything committed -> all evictable
        ev = world.deployment.evictor(world.region)
        before = world.region.cache.total_items()
        removed = world.run(ev.evict_once())
        assert removed == 6  # one top-level dir + its 5 files
        assert world.region.cache.total_items() == before - 6

    def test_round_robin_rotates_victims(self):
        world = small_cache_world()
        for d in range(3):
            world.run(world.client.mkdir(f"/app/d{d}"))
        world.quiesce()
        ev = world.deployment.evictor(world.region)
        world.run(ev.evict_once())
        world.run(ev.evict_once())
        survivors = [d for d in range(3)
                     if world.region.cache.peek(f"/app/d{d}") is not None]
        assert len(survivors) == 1  # two distinct victims were chosen

    def test_uncommitted_entries_are_safe(self):
        world = small_cache_world()
        # Publish creates but freeze commits by not advancing: we instead
        # check right after submitting, before quiescing.
        for i in range(5):
            world.run(world.client.create(f"/app/f{i}"))
        ev = world.deployment.evictor(world.region)
        # Evict while at least some entries are uncommitted.
        world.run(ev.evict_once())
        # Nothing uncommitted may have been dropped: every file is still
        # reachable (either cached or already on the DFS).
        world.quiesce()
        for i in range(5):
            assert world.dfs.namespace.exists(f"/app/f{i}")

    def test_evicted_metadata_still_readable_from_dfs(self):
        world = small_cache_world()
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        world.quiesce()
        ev = world.deployment.evictor(world.region)
        while world.run(ev.evict_once()):
            pass
        assert world.region.cache.peek("/app/d/f") is None
        # getattr falls back to the DFS (backup copy) and re-caches.
        inode = world.run(world.client.getattr("/app/d/f"))
        assert inode.is_file
        assert world.region.cache.peek("/app/d/f") is not None

    def test_inline_data_flushed_before_eviction(self):
        world = small_cache_world()
        world.run(world.client.create("/app/f"))
        world.run(world.client.write("/app/f", 0, data=b"x" * 600))
        world.quiesce()
        ev = world.deployment.evictor(world.region)
        while world.run(ev.evict_once()):
            pass
        assert ev.flushes >= 1
        # The DFS now holds the data (size recorded there).
        assert world.dfs.namespace.getattr("/app/f").size == 600

    def test_empty_region_evicts_nothing(self, world):
        ev = world.deployment.evictor(world.region)
        assert world.run(ev.evict_once()) == 0


class TestBackgroundLoop:
    def test_loop_relieves_pressure(self):
        world = small_cache_world(capacity=9_000)
        ev = world.deployment.evictor(world.region)
        world.cluster.env.process(ev.run(poll_interval=2e-3))
        for d in range(6):
            world.run(world.client.mkdir(f"/app/d{d}"))
            for i in range(6):
                world.run(world.client.create(f"/app/d{d}/f{i}"))
            world.quiesce()
        # Let the evictor run a few polls.
        world.cluster.env.run(until=world.cluster.env.now + 50e-3)
        hw = world.region.config.eviction_high_watermark
        assert all(s.kv.usage_fraction() < hw for s in world.region.shards)
        assert ev.evictions >= 1
