"""Unit tests for the distributed metadata cache."""

import pytest

from repro.core.cache import CacheShard, DistributedCache, new_record
from repro.kvstore.memkv import CasMismatch, KeyExists
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make_cache(n_shards=4):
    cluster = Cluster()
    nodes = [cluster.add_node(f"n{i}") for i in range(n_shards)]
    shards = [CacheShard(cluster, node, capacity_bytes=1 << 20,
                         name=f"shard{i}")
              for i, node in enumerate(nodes)]
    return cluster, nodes, DistributedCache(shards)


def rec(ino=1, committed=False, **kw):
    base = {"ino": ino, "ftype": "file", "mode": 0o644, "uid": 1, "gid": 1,
            "size": 0, "ctime": 0.0, "mtime": 0.0, "nlink": 1,
            "inline_data": None}
    return new_record(base, committed=committed, **kw)


class TestNewRecord:
    def test_flags_defaults(self):
        r = rec()
        assert r["committed"] is False
        assert r["deleted"] is False
        assert r["large"] is False
        assert r["shadow"] is False

    def test_unknown_flag_rejected(self):
        with pytest.raises(TypeError):
            rec(bogus=True)


class TestDistributedCache:
    def test_needs_shards(self):
        with pytest.raises(ValueError):
            DistributedCache([])

    def test_set_get_roundtrip(self):
        cluster, nodes, cache = make_cache()

        def proc():
            yield from cache.set(nodes[0], "/a", rec(ino=5))
            got = yield from cache.get(nodes[0], "/a")
            return got

        got = run_sync(cluster.env, proc())
        assert got["ino"] == 5

    def test_get_missing_none(self):
        cluster, nodes, cache = make_cache()

        def proc():
            return (yield from cache.get(nodes[0], "/nope"))

        assert run_sync(cluster.env, proc()) is None

    def test_add_rejects_duplicate(self):
        cluster, nodes, cache = make_cache()

        def proc():
            yield from cache.add(nodes[0], "/a", rec())
            yield from cache.add(nodes[0], "/a", rec())

        with pytest.raises(KeyExists):
            run_sync(cluster.env, proc())

    def test_keys_spread_over_shards(self):
        cluster, nodes, cache = make_cache()

        def proc():
            for i in range(200):
                yield from cache.set(nodes[0], f"/dir/f{i}", rec(ino=i))

        run_sync(cluster.env, proc())
        sizes = [len(s.kv) for s in cache.shards]
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == 200

    def test_placement_deterministic(self):
        _, _, cache1 = make_cache()
        _, _, cache2 = make_cache()
        for i in range(50):
            key = f"/dir/f{i}"
            assert (cache1.shard_for(key).name
                    == cache2.shard_for(key).name)

    def test_cas_mismatch_raises(self):
        cluster, nodes, cache = make_cache()

        def proc():
            yield from cache.set(nodes[0], "/a", rec())
            _, token = yield from cache.gets(nodes[0], "/a")
            yield from cache.set(nodes[0], "/a", rec(ino=2))
            yield from cache.cas(nodes[0], "/a", rec(ino=3), token)

        with pytest.raises(CasMismatch):
            run_sync(cluster.env, proc())

    def test_update_retries_until_success(self):
        cluster, nodes, cache = make_cache()
        results = []

        def writer(tag):
            def bump(record):
                record["size"] += 1
                return record
            final = yield from cache.update(nodes[0], "/ctr", bump)
            results.append((tag, final["size"]))

        def proc():
            yield from cache.set(nodes[0], "/ctr", rec())

        run_sync(cluster.env, proc())
        for i in range(8):
            cluster.env.process(writer(i))
        cluster.run()
        final = cache.peek("/ctr")
        assert final["size"] == 8

    def test_update_missing_returns_none(self):
        cluster, nodes, cache = make_cache()

        def proc():
            return (yield from cache.update(nodes[0], "/ghost",
                                            lambda r: r))

        assert run_sync(cluster.env, proc()) is None

    def test_update_abort_returns_none(self):
        cluster, nodes, cache = make_cache()

        def proc():
            yield from cache.set(nodes[0], "/a", rec(ino=1))
            out = yield from cache.update(nodes[0], "/a", lambda r: None)
            return out

        assert run_sync(cluster.env, proc()) is None
        assert cache.peek("/a")["ino"] == 1  # unchanged

    def test_delete_subtree_all_shards(self):
        cluster, nodes, cache = make_cache()

        def proc():
            yield from cache.set(nodes[0], "/d", rec())
            for i in range(40):
                yield from cache.set(nodes[0], f"/d/f{i}", rec())
            yield from cache.set(nodes[0], "/other", rec())
            n = yield from cache.delete_subtree(nodes[0], "/d")
            return n

        assert run_sync(cluster.env, proc()) == 41
        assert cache.total_items() == 1
        assert cache.peek("/other") is not None

    def test_scan_subtree_sorted(self):
        cluster, nodes, cache = make_cache()

        def proc():
            for name in ["/d/c", "/d/a", "/d/b", "/x"]:
                yield from cache.set(nodes[0], name, rec())
            return (yield from cache.scan_subtree(nodes[0], "/d"))

        found = run_sync(cluster.env, proc())
        assert [k for k, _ in found] == ["/d/a", "/d/b", "/d/c"]

    def test_hit_rate(self):
        cluster, nodes, cache = make_cache(n_shards=1)

        def proc():
            yield from cache.set(nodes[0], "/a", rec())
            yield from cache.get(nodes[0], "/a")
            yield from cache.get(nodes[0], "/miss")

        run_sync(cluster.env, proc())
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_remote_access_costs_more_than_local(self):
        cluster, nodes, cache = make_cache(n_shards=2)
        # Find keys owned by shard 0 and shard 1.
        local_key = next(f"/k{i}" for i in range(100)
                         if cache.shard_for(f"/k{i}") is cache.shards[0])
        remote_key = next(f"/k{i}" for i in range(100)
                          if cache.shard_for(f"/k{i}") is cache.shards[1])

        def timed(key):
            def proc():
                t0 = cluster.env.now
                yield from cache.set(nodes[0], key, rec())
                return cluster.env.now - t0
            return run_sync(cluster.env, proc())

        assert timed(remote_key) > timed(local_key)
