"""Tests for the batched commit pipeline: drain, coalescing, backpressure.

The batching contract: any ``commit_batch_size`` produces the same final
DFS namespace as the op-at-a-time seed pipeline (§III.E convergence is
batch-size-independent), while larger batches amortize queue pops and
share MDS round trips between same-directory operations.
"""

import pytest

from repro.bench.fig07 import batching_comparison
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster
from tests.core.conftest import make_world


def make_paused_world(config, n_nodes=2, seed=7):
    """A world whose commit processes have NOT started: published ops
    accumulate in the queues, so a later start drains them as one batch."""
    cluster = Cluster(seed=seed)
    dfs = BeeGFS(cluster)
    nodes = [cluster.add_node(f"client{i}") for i in range(n_nodes)]
    deployment = PaconDeployment(cluster, dfs)
    region = deployment.create_region(config, nodes, start_commit=False)
    client = deployment.client(region, nodes[0])
    return cluster, dfs, deployment, region, client


class TestBatchedDrain:
    def test_batched_drain_commits_everything(self):
        world = make_world(config=PaconConfig(workspace="/app",
                                              commit_batch_size=8))
        for i in range(30):
            world.run(world.client.create(f"/app/f{i}"))
        world.quiesce()
        for i in range(30):
            assert world.dfs.namespace.exists(f"/app/f{i}")
        assert sum(cp.committed
                   for cp in world.region.commit_processes) == 30

    def test_multi_message_batches_observed(self):
        config = PaconConfig(workspace="/app", commit_batch_size=16)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        hub = MetricsHub()
        hub.attach_region(region)
        for i in range(10):
            run_sync(cluster.env, client.create(f"/app/f{i}"))
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        batches = hub.stats.histogram("commit.batch_size").summary()
        assert batches["count"] >= 1
        assert batches["max"] > 1
        for i in range(10):
            assert dfs.namespace.exists(f"/app/f{i}")

    def test_batch_size_one_reproduces_op_at_a_time(self):
        world = make_world(config=PaconConfig(workspace="/app",
                                              commit_batch_size=1))
        hub = MetricsHub()
        hub.attach_region(world.region)
        for i in range(5):
            world.run(world.client.create(f"/app/f{i}"))
        world.quiesce()
        # The batched drain path never runs at size 1.
        assert "commit.batch_size" not in hub.stats.histograms()
        assert sum(cp.committed for cp in world.region.commit_processes) == 5

    def test_barrier_inside_batch_cuts_segments(self):
        """Ops published before a barrier and after it commit in their own
        epochs even when drained together (the marker cuts the batch)."""
        world = make_world(config=PaconConfig(workspace="/app",
                                              commit_batch_size=32))
        world.run(world.client.create("/app/before"))
        names = world.run(world.client.readdir("/app"))
        assert names == ["before"]
        world.run(world.client.create("/app/after"))
        world.quiesce()
        assert world.region.barrier_epochs_completed == 1
        assert world.dfs.namespace.exists("/app/after")


class TestCoalescing:
    def test_create_rm_pair_cancels_without_mds_work(self):
        config = PaconConfig(workspace="/app", commit_batch_size=16)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        run_sync(cluster.env, client.create("/app/tmp"))
        run_sync(cluster.env, client.rm("/app/tmp"))
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        assert sum(cp.coalesced for cp in region.commit_processes) == 2
        assert sum(cp.committed for cp in region.commit_processes) == 0
        assert not dfs.namespace.exists("/app/tmp")
        # The rm's cache bookkeeping still ran: no tombstone leak.
        assert region.cache.peek("/app/tmp") is None

    def test_coalescing_disabled_commits_both(self):
        config = PaconConfig(workspace="/app", commit_batch_size=16,
                             commit_coalesce=False)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        run_sync(cluster.env, client.create("/app/tmp"))
        run_sync(cluster.env, client.rm("/app/tmp"))
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        assert sum(cp.coalesced for cp in region.commit_processes) == 0
        assert sum(cp.committed for cp in region.commit_processes) == 2
        assert not dfs.namespace.exists("/app/tmp")
        assert region.cache.peek("/app/tmp") is None

    def test_committed_generation_is_never_coalesced(self):
        """If the create already materialized out of band (committed flag
        set), the rm must really run — cancelling it would leave the file
        on the DFS forever."""
        config = PaconConfig(workspace="/app", commit_batch_size=16)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        run_sync(cluster.env, client.create("/app/tmp"))
        run_sync(cluster.env, client.rm("/app/tmp"))
        # Simulate out-of-band materialization (zero-cost test poke).
        record = region.cache.shard_for("/app/tmp").kv._items[
            "/app/tmp"].value
        record["committed"] = True
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        assert sum(cp.coalesced for cp in region.commit_processes) == 0
        assert not dfs.namespace.exists("/app/tmp")

    def test_unrelated_ops_in_batch_survive_coalescing(self):
        config = PaconConfig(workspace="/app", commit_batch_size=16)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        run_sync(cluster.env, client.create("/app/keep"))
        run_sync(cluster.env, client.create("/app/tmp"))
        run_sync(cluster.env, client.rm("/app/tmp"))
        run_sync(cluster.env, client.mkdir("/app/dir"))
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        assert dfs.namespace.exists("/app/keep")
        assert dfs.namespace.exists("/app/dir")
        assert not dfs.namespace.exists("/app/tmp")
        assert sum(cp.coalesced for cp in region.commit_processes) == 2


class TestMetricsBalance:
    @pytest.mark.parametrize("batch_size,coalesce", [(1, True), (4, True),
                                                     (16, False)])
    def test_published_equals_committed_discarded_coalesced(self, batch_size,
                                                            coalesce):
        config = PaconConfig(workspace="/app", commit_batch_size=batch_size,
                             commit_coalesce=coalesce)
        cluster, dfs, deployment, region, client = make_paused_world(config)
        hub = MetricsHub()
        hub.attach_region(region)
        for i in range(6):
            run_sync(cluster.env, client.create(f"/app/f{i}"))
        run_sync(cluster.env, client.rm("/app/f0"))
        run_sync(cluster.env, client.rm("/app/f1"))
        run_sync(cluster.env, client.create("/app/f0"))
        deployment.start_commit_processes(region)
        deployment.quiesce_sync(region)
        counters = hub.stats.counters()
        published = counters.get("commit.published", 0)
        resolved = (counters.get("commit.committed", 0)
                    + counters.get("commit.discarded", 0)
                    + counters.get("commit.coalesced", 0))
        assert published == 9
        assert published == resolved


class TestBackpressure:
    def test_bounded_queue_stalls_publisher_visibly(self):
        config = PaconConfig(workspace="/app", commit_batch_size=4,
                             commit_queue_capacity=4)
        world = make_world(config=config, n_nodes=2)
        hub = MetricsHub()
        hub.attach_region(world.region)

        def burst():
            for i in range(40):
                yield from world.client.create(f"/app/f{i}")

        world.run(burst())
        world.quiesce()
        counters = hub.stats.counters()
        assert counters.get("commit.publish_stalls", 0) >= 1
        stalls = hub.stats.histogram("commit.publish_stall").summary()
        assert stalls["count"] >= 1 and stalls["max"] > 0
        for i in range(40):
            assert world.dfs.namespace.exists(f"/app/f{i}")
        depth_cap = config.commit_queue_capacity + 1  # one racing publish
        for queue in world.region.queues.queues():
            assert queue.peak_depth <= depth_cap

    def test_unbounded_default_never_stalls(self):
        world = make_world(config=PaconConfig(workspace="/app"), n_nodes=2)
        hub = MetricsHub()
        hub.attach_region(world.region)

        def burst():
            for i in range(20):
                yield from world.client.create(f"/app/f{i}")

        world.run(burst())
        world.quiesce()
        assert hub.stats.counters().get("commit.publish_stalls", 0) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PaconConfig(workspace="/app", commit_queue_capacity=0)
        with pytest.raises(ValueError):
            PaconConfig(workspace="/app", commit_batch_size=0)


class TestBatchingThroughput:
    def test_batch16_beats_batch1_with_identical_namespace(self):
        out = batching_comparison("smoke", batch_sizes=(1, 16))
        assert out[16]["namespace_digest"] == out[1]["namespace_digest"]
        assert out[16]["committed_ops"] == out[1]["committed_ops"]
        assert (out[16]["committed_ops_per_sec"]
                > out[1]["committed_ops_per_sec"])
