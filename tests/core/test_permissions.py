"""Unit tests for batch permission management (§III.C)."""

import pytest

from repro.core.permissions import PermissionSpec, RegionPermissions
from repro.dfs.inode import AccessMode


APP_UID, APP_GID = 1000, 1000
OTHER_UID, OTHER_GID = 2000, 2000


@pytest.fixture
def perms():
    return RegionPermissions(
        "/ws", PermissionSpec(mode=0o700, uid=APP_UID, gid=APP_GID))


class TestPermissionSpec:
    def test_permits_owner(self):
        spec = PermissionSpec(mode=0o700, uid=5, gid=5)
        assert spec.permits(5, 5, AccessMode.READ | AccessMode.WRITE)

    def test_denies_other(self):
        spec = PermissionSpec(mode=0o700, uid=5, gid=5)
        assert not spec.permits(6, 6, AccessMode.READ)

    def test_group_bits(self):
        spec = PermissionSpec(mode=0o750, uid=5, gid=9)
        assert spec.permits(6, 9, AccessMode.READ | AccessMode.EXECUTE)
        assert not spec.permits(6, 9, AccessMode.WRITE)


class TestBatchCheck:
    def test_app_user_allowed(self, perms):
        r = perms.check("/ws/a/b/c", APP_UID, APP_GID, AccessMode.WRITE)
        assert r.allowed

    def test_other_user_denied(self, perms):
        r = perms.check("/ws/a/b/c", OTHER_UID, OTHER_GID, AccessMode.READ)
        assert not r.allowed

    def test_outside_region_denied(self, perms):
        r = perms.check("/elsewhere/f", APP_UID, APP_GID, AccessMode.READ)
        assert not r.allowed
        assert r.reason == "outside region"

    def test_cost_independent_of_depth(self, perms):
        shallow = perms.check("/ws/f", APP_UID, APP_GID, AccessMode.READ)
        deep = perms.check("/ws/" + "/".join(f"d{i}" for i in range(30)),
                           APP_UID, APP_GID, AccessMode.READ)
        assert shallow.normal_checks == deep.normal_checks == 1
        assert shallow.special_items_scanned == deep.special_items_scanned

    def test_workspace_root_target(self, perms):
        r = perms.check("/ws", APP_UID, APP_GID, AccessMode.READ)
        assert r.allowed


class TestSpecialList:
    def test_special_target_overrides_normal(self, perms):
        perms.add_special("/ws/shared",
                          PermissionSpec(mode=0o755, uid=APP_UID,
                                         gid=APP_GID))
        r = perms.check("/ws/shared", OTHER_UID, OTHER_GID, AccessMode.READ)
        assert r.allowed

    def test_special_ancestor_can_deny_search(self, perms):
        perms.add_special("/ws/locked",
                          PermissionSpec(mode=0o600, uid=APP_UID,
                                         gid=APP_GID))
        # Even the owner loses search through a no-execute directory.
        r = perms.check("/ws/locked/f", APP_UID, APP_GID, AccessMode.READ)
        assert not r.allowed
        assert "locked" in r.reason

    def test_special_outside_workspace_rejected(self, perms):
        with pytest.raises(ValueError):
            perms.add_special("/other/dir", PermissionSpec())

    def test_remove_special_restores_normal(self, perms):
        perms.add_special("/ws/x", PermissionSpec(mode=0o777, uid=0, gid=0))
        perms.remove_special("/ws/x")
        assert perms.effective("/ws/x") is perms.normal

    def test_scan_count_matches_list_length(self, perms):
        for i in range(5):
            perms.add_special(f"/ws/s{i}", PermissionSpec())
        r = perms.check("/ws/a", APP_UID, APP_GID, AccessMode.READ)
        assert r.special_items_scanned == 5

    def test_effective_lookup(self, perms):
        special = PermissionSpec(mode=0o444, uid=1, gid=1)
        perms.add_special("/ws/ro", special)
        assert perms.effective("/ws/ro") == special
        assert perms.effective("/ws/other") == perms.normal


class TestCheckOp:
    def test_create_needs_parent_write(self, perms):
        assert perms.check_op("create", "/ws/d/f", APP_UID, APP_GID).allowed
        assert not perms.check_op("create", "/ws/d/f", OTHER_UID,
                                  OTHER_GID).allowed

    def test_create_in_readonly_special_parent_denied(self, perms):
        perms.add_special("/ws/ro",
                          PermissionSpec(mode=0o500, uid=APP_UID,
                                         gid=APP_GID))
        assert not perms.check_op("create", "/ws/ro/f", APP_UID,
                                  APP_GID).allowed

    def test_getattr_checks_traversal_only(self, perms):
        perms.add_special("/ws/noread",
                          PermissionSpec(mode=0o300, uid=APP_UID,
                                         gid=APP_GID))
        # getattr needs search on ancestors, not READ on the target.
        assert perms.check_op("getattr", "/ws/noread", APP_UID,
                              APP_GID).allowed

    def test_readdir_needs_read(self, perms):
        perms.add_special("/ws/wx",
                          PermissionSpec(mode=0o300, uid=APP_UID,
                                         gid=APP_GID))
        assert not perms.check_op("readdir", "/ws/wx", APP_UID,
                                  APP_GID).allowed

    def test_write_needs_write(self, perms):
        perms.add_special("/ws/ro",
                          PermissionSpec(mode=0o400, uid=APP_UID,
                                         gid=APP_GID))
        assert not perms.check_op("write", "/ws/ro", APP_UID,
                                  APP_GID).allowed
        assert perms.check_op("read", "/ws/ro", APP_UID, APP_GID).allowed

    def test_unknown_op_rejected(self, perms):
        with pytest.raises(ValueError):
            perms.check_op("chmodx", "/ws/a", APP_UID, APP_GID)


class TestDefaults:
    def test_linux_like_default(self):
        perms = RegionPermissions.linux_like_default("/ws", 42, 43)
        assert perms.check("/ws/any", 42, 43,
                           AccessMode.READ | AccessMode.WRITE
                           | AccessMode.EXECUTE).allowed
        assert not perms.check("/ws/any", 7, 7, AccessMode.READ).allowed

    def test_cost_items(self):
        perms = RegionPermissions.linux_like_default("/ws", 1, 1)
        perms.add_special("/ws/a", PermissionSpec())
        perms.add_special("/ws/b", PermissionSpec())
        assert perms.cost_items() == (1, 2)
