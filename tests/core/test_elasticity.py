"""Tests for elastic region growth (§III.A Benefit 2)."""

import pytest

from tests.core.conftest import make_world


class TestRegionGrowth:
    def grow(self, world):
        new_node = world.cluster.add_node("newcomer")
        world.deployment.grow_region(world.region, new_node)
        return new_node

    def test_grow_adds_shard_queue_and_commit(self, world):
        n_before = len(world.region.nodes)
        new_node = self.grow(world)
        assert len(world.region.nodes) == n_before + 1
        assert len(world.region.shards) == n_before + 1
        assert len(world.region.queues) == n_before + 1
        assert any(cp.node is new_node
                   for cp in world.region.commit_processes)

    def test_existing_data_still_reachable_after_growth(self, world):
        paths = []
        for i in range(40):
            path = f"/app/f{i}"
            world.run(world.client.create(path))
            paths.append(path)
        self.grow(world)
        # Keys that moved to the new (empty) shard refill from the DFS.
        for path in paths:
            inode = world.run(world.client.getattr(path))
            assert inode.is_file, path

    def test_new_node_serves_clients(self, world):
        new_node = self.grow(world)
        newcomer = world.deployment.client(world.region, new_node)
        world.run(newcomer.create("/app/from-newcomer"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/from-newcomer")

    def test_barriers_work_after_growth(self, world):
        """The grown region's barrier spans all N+1 commit processes."""
        world.run(world.client.create("/app/before"))
        world.run(world.client.readdir("/app"))  # epoch 0 with N nodes
        new_node = self.grow(world)
        newcomer = world.deployment.client(world.region, new_node)
        world.run(newcomer.create("/app/after"))
        names = world.run(world.client.readdir("/app"))  # epoch 1, N+1
        assert names == ["after", "before"]
        for cp in world.region.commit_processes:
            assert cp.current_epoch == 2

    def test_growth_moves_minimal_keys(self, world):
        cache = world.region.cache
        keys = [f"/app/k{i}" for i in range(300)]
        before = {k: cache.shard_for(k) for k in keys}
        self.grow(world)
        moved = sum(1 for k in keys if cache.shard_for(k) is not before[k])
        # Consistent hashing: roughly 1/(N+1) of keys move, not most.
        assert 0 < moved < len(keys) * 0.5

    def test_duplicate_node_rejected(self, world):
        with pytest.raises(ValueError):
            world.region.add_node(world.nodes[0])

    def test_small_files_survive_growth(self, world):
        """Migration carries inline data: the primary copy (including
        small-file bytes that exist nowhere else) must survive the ring
        membership change for every key, moved or not."""
        payloads = {}
        for i in range(30):
            path = f"/app/f{i}"
            world.run(world.client.create(path))
            data = bytes([65 + i % 26]) * 16
            world.run(world.client.write(path, 0, data=data))
            payloads[path] = data
        self.grow(world)
        for path, data in payloads.items():
            got = world.run(world.client.read(path, 0, 16))
            assert got == data, path

    def test_growth_reports_migrated_records(self, world):
        for i in range(100):
            world.run(world.client.create(f"/app/f{i}"))
        new_node = world.cluster.add_node("newcomer")
        moved = world.deployment.grow_region(world.region, new_node)
        assert 0 < moved < 100
        # Moved records actually live on the new shard now.
        new_shard = world.region.shards[-1]
        assert len(new_shard.kv) == moved
