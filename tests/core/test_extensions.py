"""Tests for the extension operations: rename and chmod."""

import pytest

from repro.core.region import ReadOnlyRegion
from repro.dfs.errors import FileExists, FileNotFound, PermissionDenied
from tests.core.conftest import make_world


class TestRename:
    def test_rename_file(self, world):
        world.run(world.client.create("/app/old"))
        world.run(world.client.rename("/app/old", "/app/new"))
        assert world.dfs.namespace.exists("/app/new")
        assert not world.dfs.namespace.exists("/app/old")
        inode = world.run(world.client.getattr("/app/new"))
        assert inode.is_file
        with pytest.raises(FileNotFound):
            world.run(world.client.getattr("/app/old"))

    def test_rename_is_barrier_op(self, world):
        # Earlier creates must be committed before the rename runs.
        world.run(world.client.mkdir("/app/d"))
        for i in range(10):
            world.run(world.client.create(f"/app/d/f{i}"))
        epochs = world.region.barrier_epochs_completed
        world.run(world.client.rename("/app/d", "/app/moved"))
        assert world.region.barrier_epochs_completed == epochs + 1
        assert world.dfs.namespace.exists("/app/moved/f9")

    def test_rename_subtree_readable_after(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        world.run(world.client.rename("/app/d", "/app/e"))
        inode = world.run(world.client.getattr("/app/e/f"))
        assert inode.is_file

    def test_rename_onto_existing_rejected(self, world):
        world.run(world.client.create("/app/a"))
        world.run(world.client.create("/app/b"))
        with pytest.raises(FileExists):
            world.run(world.client.rename("/app/a", "/app/b"))

    def test_rename_missing_source(self, world):
        with pytest.raises(FileNotFound):
            world.run(world.client.rename("/app/ghost", "/app/x"))

    def test_rename_across_regions_rejected(self, world):
        world.dfs.namespace.mkdir("/public", mode=0o777)
        world.run(world.client.create("/app/f"))
        with pytest.raises(ReadOnlyRegion):
            world.run(world.client.rename("/app/f", "/public/f"))

    def test_rename_fully_outside_redirects(self, world):
        world.dfs.namespace.mkdir("/public", mode=0o777)
        world.dfs.namespace.create("/public/a", uid=1000, gid=1000)
        world.run(world.client.rename("/public/a", "/public/b"))
        assert world.dfs.namespace.exists("/public/b")

    def test_create_into_old_name_after_rename(self, world):
        world.run(world.client.create("/app/old"))
        world.run(world.client.rename("/app/old", "/app/new"))
        world.run(world.client.create("/app/old"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/old")
        assert world.dfs.namespace.exists("/app/new")


class TestChmod:
    def test_chmod_committed_file(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        world.run(world.client.chmod("/app/f", 0o640))
        assert world.run(world.client.getattr("/app/f")).mode == 0o640
        assert world.dfs.namespace.getattr("/app/f").mode == 0o640

    def test_chmod_uncommitted_file_mode_reaches_dfs(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.chmod("/app/f", 0o600))
        world.quiesce()
        assert world.dfs.namespace.getattr("/app/f").mode == 0o600

    def test_chmod_registers_special_permission(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.chmod("/app/f", 0o444))
        assert "/app/f" in world.region.permissions.special
        assert world.region.permissions.effective("/app/f").mode == 0o444

    def test_chmod_enforced_by_batch_check(self, world):
        world.run(world.client.create("/app/f"))
        world.run(world.client.chmod("/app/f", 0o400))  # read-only
        with pytest.raises(PermissionDenied):
            world.run(world.client.write("/app/f", 0, data=b"x"))
        # Reading still allowed.
        world.run(world.client.read("/app/f", 0, 1))

    def test_chmod_missing_enoent(self, world):
        with pytest.raises(FileNotFound):
            world.run(world.client.chmod("/app/ghost", 0o600))

    def test_chmod_dfs_resident_uncached(self, world):
        world.dfs.namespace.create("/app/cold", uid=1000, gid=1000)
        world.run(world.client.chmod("/app/cold", 0o604))
        assert world.dfs.namespace.getattr("/app/cold").mode == 0o604

    def test_chmod_outside_region_redirects(self, world):
        world.dfs.namespace.mkdir("/public", mode=0o777)
        world.dfs.namespace.create("/public/f", uid=1000, gid=1000)
        world.run(world.client.chmod("/public/f", 0o640))
        assert world.dfs.namespace.getattr("/public/f").mode == 0o640
