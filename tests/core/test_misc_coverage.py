"""Coverage for smaller behaviours: periodic checkpoints wired through
config, recovery options, kernel error handling, cost presets."""

import pytest

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.core.failure import fail_node, recover_node
from repro.dfs.beegfs import BeeGFS
from repro.sim.core import Environment, run_sync
from repro.sim.costs import CostModel
from repro.sim.network import Cluster


class TestConfiguredCheckpointInterval:
    def test_periodic_checkpoints_run_automatically(self):
        cluster = Cluster(seed=3)
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node("n0")]
        pacon = PaconDeployment(cluster, dfs)
        region = pacon.create_region(
            PaconConfig(workspace="/app", checkpoint_interval=5e-3), nodes)
        client = pacon.client(region, nodes[0])
        run_sync(cluster.env, client.create("/app/f"))
        pacon.quiesce_sync(region)
        cluster.env.run(until=cluster.env.now + 20e-3)
        assert region.checkpoint_manager.taken >= 3
        latest = region.checkpoint_manager.latest
        assert latest.entries >= 1

    def test_no_interval_no_manager(self):
        cluster = Cluster(seed=3)
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node("n0")]
        pacon = PaconDeployment(cluster, dfs)
        region = pacon.create_region(PaconConfig(workspace="/app"), nodes)
        assert not hasattr(region, "checkpoint_manager")


class TestRecoveryOptions:
    def test_recover_without_commit_restart(self):
        cluster = Cluster(seed=3)
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node(f"n{i}") for i in range(2)]
        pacon = PaconDeployment(cluster, dfs)
        region = pacon.create_region(PaconConfig(workspace="/app"), nodes)
        fail_node(region, nodes[1])
        recover_node(region, nodes[1], restart_commit=False)
        cluster.env.run()
        dead = [cp for cp in region.commit_processes
                if cp.node is nodes[1]][0]
        assert not dead._process.is_alive


class TestKernelErrorHandling:
    def test_catch_process_errors_keeps_sim_alive(self):
        env = Environment(catch_process_errors=True)

        def bad():
            yield env.timeout(1.0)
            raise RuntimeError("inside process")

        def good():
            yield env.timeout(2.0)
            return "survived"

        p_bad = env.process(bad())
        p_good = env.process(good())
        env.run()
        assert p_good.value == "survived"
        assert isinstance(p_bad.exception, RuntimeError)

    def test_uncaught_process_error_propagates(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(bad())
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_env_condition_factories(self):
        env = Environment()

        def proc():
            values = yield env.all_of([env.timeout(1.0, "a"),
                                       env.timeout(2.0, "b")])
            idx, value = yield env.any_of([env.timeout(5.0, "slow"),
                                           env.timeout(0.5, "fast")])
            return values, idx, value

        values, idx, value = run_sync(env, proc())
        assert values == ["a", "b"]
        assert (idx, value) == (1, "fast")


class TestSystemsOptions:
    def test_parent_check_flag_reaches_region(self):
        from repro.bench.systems import make_testbed

        bed = make_testbed("pacon", n_apps=1, nodes_per_app=1,
                           clients_per_node=1, parent_check=False)
        assert bed.app.region.config.parent_check is False

    def test_split_threshold_flag(self):
        from repro.bench.systems import make_testbed

        bed = make_testbed("indexfs", n_apps=1, nodes_per_app=2,
                           clients_per_node=1, split_threshold=5)
        assert bed.indexfs.split_threshold == 5
