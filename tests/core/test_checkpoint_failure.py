"""Tests for checkpointing, rollback, and node-failure recovery (§III.G)."""

import pytest

from repro.core.config import PaconConfig
from repro.core.failure import fail_node, recover_node
from repro.dfs.errors import FileNotFound
from tests.core.conftest import make_world


class TestCheckpoint:
    def test_checkpoint_captures_committed_subtree(self, world):
        world.run(world.client.mkdir("/app/d"))
        world.run(world.client.create("/app/d/f"))
        world.quiesce()
        ckpt = world.deployment.checkpointer(world.region)
        cp = world.run(ckpt.checkpoint())
        assert cp.entries == 2
        assert cp.workspace == "/app"

    def test_checkpoint_scope_is_workspace_only(self, world):
        world.dfs.namespace.mkdir("/other")
        world.run(world.client.create("/app/f"))
        world.quiesce()
        ckpt = world.deployment.checkpointer(world.region)
        cp = world.run(ckpt.checkpoint())
        assert "other" not in cp.snapshot["tree"].get("children", {})

    def test_keep_limit(self, world):
        ckpt = world.deployment.checkpointer(world.region, keep=2)
        for _ in range(5):
            world.run(ckpt.checkpoint())
        assert len(ckpt.checkpoints) == 2
        assert ckpt.taken == 5

    def test_restore_without_checkpoint_rejected(self, world):
        ckpt = world.deployment.checkpointer(world.region)
        with pytest.raises(RuntimeError):
            world.run(ckpt.restore())

    def test_periodic_loop(self, world):
        ckpt = world.deployment.checkpointer(world.region)
        world.cluster.env.process(ckpt.run(interval=5e-3))
        world.cluster.env.run(until=26e-3)
        assert ckpt.taken == 5


class TestRollback:
    def test_rollback_removes_post_checkpoint_work(self, world):
        world.run(world.client.create("/app/before"))
        world.quiesce()
        ckpt = world.deployment.checkpointer(world.region)
        world.run(ckpt.checkpoint())
        world.run(world.client.create("/app/after"))
        world.quiesce()
        world.run(ckpt.restore())
        assert world.dfs.namespace.exists("/app/before")
        assert not world.dfs.namespace.exists("/app/after")

    def test_rollback_rebuilds_cache(self, world):
        world.run(world.client.create("/app/f"))
        world.quiesce()
        ckpt = world.deployment.checkpointer(world.region)
        world.run(ckpt.checkpoint())
        world.run(ckpt.restore())
        record = world.region.cache.peek("/app/f")
        assert record is not None
        assert record["committed"] is True

    def test_rollback_does_not_touch_other_subtrees(self, world):
        world.dfs.namespace.mkdir("/other")
        world.dfs.namespace.create("/other/x")
        ckpt = world.deployment.checkpointer(world.region)
        world.run(ckpt.checkpoint())
        world.run(ckpt.restore())
        assert world.dfs.namespace.exists("/other/x")


class TestNodeFailure:
    def test_failure_loses_shard_and_queue(self, world):
        for i in range(20):
            world.run(world.client.create(f"/app/f{i}"))
        victim = world.nodes[1]
        report = fail_node(world.region, victim)
        assert report.node_name == victim.name
        assert report.lost_cache_entries > 0
        assert not victim.alive

    def test_failure_isolated_to_one_region(self):
        from repro.core.deploy import PaconDeployment
        from repro.dfs.beegfs import BeeGFS
        from repro.sim.network import Cluster
        from repro.sim.core import run_sync

        cluster = Cluster(seed=3)
        dfs = BeeGFS(cluster)
        nodes_a = [cluster.add_node(f"a{i}") for i in range(2)]
        nodes_b = [cluster.add_node(f"b{i}") for i in range(2)]
        dep = PaconDeployment(cluster, dfs)
        ra = dep.create_region(PaconConfig(workspace="/A"), nodes_a)
        rb = dep.create_region(PaconConfig(workspace="/B"), nodes_b)
        ca = dep.client(ra, nodes_a[0])
        cb = dep.client(rb, nodes_b[0])
        run_sync(cluster.env, ca.create("/A/f"))
        run_sync(cluster.env, cb.create("/B/g"))
        fail_node(ra, nodes_a[1])
        # Region B is untouched: cache intact, ops proceed.
        assert rb.cache.total_items() > 0
        run_sync(cluster.env, cb.create("/B/h"))
        dep.quiesce_sync(rb)
        assert dfs.namespace.exists("/B/h")

    def test_fail_foreign_node_rejected(self, world):
        foreign = world.cluster.add_node("outsider")
        with pytest.raises(ValueError):
            fail_node(world.region, foreign)

    def test_recovery_via_checkpoint(self, world):
        # Establish committed state and checkpoint it.
        world.run(world.client.create("/app/stable"))
        world.quiesce()
        ckpt = world.deployment.checkpointer(world.region)
        world.run(ckpt.checkpoint())
        # New work queued on the node that is about to die.
        victim = world.nodes[1]
        victim_client = world.new_client(node_index=1)
        world.run(victim_client.create("/app/doomed"))
        report = fail_node(world.region, victim)
        assert report.lost_queued_ops >= 1 or \
            world.dfs.namespace.exists("/app/doomed")
        # Recover: node back, roll back to checkpoint, rebuild cache.
        recover_node(world.region, victim)
        world.run(ckpt.restore())
        assert world.dfs.namespace.exists("/app/stable")
        assert not world.dfs.namespace.exists("/app/doomed")
        inode = world.run(world.client.getattr("/app/stable"))
        assert inode.is_file
        # The region keeps working after recovery.
        world.run(world.client.create("/app/newlife"))
        world.quiesce()
        assert world.dfs.namespace.exists("/app/newlife")

    def test_without_checkpoint_committed_state_survives(self, world):
        """§III.G: checkpointing is optional — the DFS already guarantees
        crash consistency of committed operations."""
        world.run(world.client.create("/app/committed"))
        world.quiesce()
        world.run(world.client.create("/app/inflight"))
        victim = world.nodes[0]
        fail_node(world.region, victim)
        assert world.dfs.namespace.exists("/app/committed")
