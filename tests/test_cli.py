"""Tests for the pacon-bench CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mdtest_defaults(self):
        args = build_parser().parse_args(["mdtest"])
        assert args.system == "pacon"
        assert args.items == 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.nodes == 2
        assert args.sample_interval == pytest.approx(200e-6)
        assert not args.compact

    def test_trace_filters(self):
        args = build_parser().parse_args(
            ["trace", "--kind", "op.end", "--limit", "10"])
        assert args.kind == "op.end"
        assert args.limit == 10


class TestCommands:
    def test_mdtest_runs(self, capsys):
        rc = main(["mdtest", "--system", "pacon", "--nodes", "2",
                   "--clients-per-node", "2", "--items", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mkdir" in out and "create" in out and "ops/s" in out

    def test_mdtest_beegfs_custom_phases(self, capsys):
        rc = main(["mdtest", "--system", "beegfs", "--nodes", "1",
                   "--clients-per-node", "2", "--items", "4",
                   "--phases", "create,rm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rm" in out
        assert "mkdir" not in out

    def test_madbench_runs(self, capsys):
        rc = main(["madbench", "--system", "pacon", "--nodes", "2",
                   "--procs-per-node", "2", "--file-size", "262144",
                   "--iterations", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out and "write" in out

    def test_figure_table1(self, capsys):
        rc = main(["figure", "table1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out and "match" in out

    def test_all_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        rc = main(["all", "--scale", "smoke", "--out", str(out_file)])
        assert rc == 0
        content = out_file.read_text()
        assert "## fig07" in content
        assert "## sensitivity" in content


class TestObservabilityCommands:
    def test_stats_writes_metrics_json(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.json"
        rc = main(["stats", "--nodes", "2", "--clients-per-node", "2",
                   "--items", "5", "--out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "pacon.metrics/v2"
        assert doc["histograms"]["client.op.mkdir.latency"]["count"] > 0
        assert doc["counters"]["commit.committed"] > 0
        assert any(name.startswith("queue.depth[")
                   for name in doc["series"])

    def test_stats_compact_to_stdout(self, capsys):
        rc = main(["stats", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--compact"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema"] == "pacon.metrics/v2"
        assert out.count("\n") == 1  # single line + trailing newline

    def test_trace_renders_spans(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--limit", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "op.start" in out
        assert "op.end" in out
        assert "[ok]" in out

    def test_trace_kind_filter(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--kind", "op.end", "--limit", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "op.end" in out
        assert "op.start" not in out

    def test_figure_without_hub_support_rejects_metrics_out(
            self, tmp_path, capsys):
        rc = main(["figure", "fig01", "--scale", "smoke",
                   "--metrics-out", str(tmp_path / "m.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "does not support --metrics-out" in err

    def test_trace_chrome_export(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--limit", "5",
                   "--chrome", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
        assert "chrome trace written" in capsys.readouterr().out

    def test_trace_window_flags(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--limit", "500",
                   "--since", "1.0", "--until", "2.0"])
        assert rc == 0
        out = capsys.readouterr().out
        # The workload finishes in simulated microseconds, so nothing
        # falls inside the [1s, 2s] window.
        assert "op.start" not in out

    def test_profile_renders_tables(self, capsys):
        rc = main(["profile", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Latency attribution by op class" in out
        assert "Top 3 slowest operations" in out
        assert "Resource utilization and queueing" in out
        assert "residual" in out

    def test_figure_trace_out(self, tmp_path, capsys):
        out_file = tmp_path / "fig07.trace.json"
        rc = main(["figure", "fig07", "--scale", "smoke",
                   "--trace-out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
