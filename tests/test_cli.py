"""Tests for the pacon-bench CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mdtest_defaults(self):
        args = build_parser().parse_args(["mdtest"])
        assert args.system == "pacon"
        assert args.items == 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.nodes == 2
        assert args.sample_interval == pytest.approx(200e-6)
        assert not args.compact

    def test_trace_filters(self):
        args = build_parser().parse_args(
            ["trace", "--kind", "op.end", "--limit", "10"])
        assert args.kind == "op.end"
        assert args.limit == 10


class TestCommands:
    def test_mdtest_runs(self, capsys):
        rc = main(["mdtest", "--system", "pacon", "--nodes", "2",
                   "--clients-per-node", "2", "--items", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mkdir" in out and "create" in out and "ops/s" in out

    def test_mdtest_beegfs_custom_phases(self, capsys):
        rc = main(["mdtest", "--system", "beegfs", "--nodes", "1",
                   "--clients-per-node", "2", "--items", "4",
                   "--phases", "create,rm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rm" in out
        assert "mkdir" not in out

    def test_madbench_runs(self, capsys):
        rc = main(["madbench", "--system", "pacon", "--nodes", "2",
                   "--procs-per-node", "2", "--file-size", "262144",
                   "--iterations", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out and "write" in out

    def test_figure_table1(self, capsys):
        rc = main(["figure", "table1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out and "match" in out

    def test_all_writes_report_and_snapshot(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        bench_file = tmp_path / "BENCH_t.json"
        rc = main(["all", "--scale", "smoke", "--out", str(out_file),
                   "--bench-out", str(bench_file)])
        assert rc == 0
        content = out_file.read_text()
        assert "## fig07" in content
        assert "## sensitivity" in content
        doc = json.loads(bench_file.read_text())
        assert doc["schema"] == "pacon.bench/v1"
        assert doc["seed"] == 0xBEE
        assert "fig07" in doc["experiments"]
        assert doc["host"]["wall_clock_s"] > 0


def _bench_doc(label="a", **derived):
    """A minimal valid pacon.bench/v1 document for CLI tests."""
    derived = derived or {"speedup": 2.0}
    return {
        "schema": "pacon.bench/v1",
        "label": label,
        "scale": "smoke",
        "seed": 0xBEE,
        "experiments": {
            "figX": {
                "title": "t", "scale": "smoke", "seed": 0xBEE,
                "params": {}, "rows": [{"system": "pacon", "ops": 100.0}],
                "derived": dict(derived), "notes": [],
                "host": {"wall_clock_s": 0.1},
            },
        },
        "host": {"wall_clock_s": 0.1, "generated_at": label},
    }


class TestCompareCommand:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_snapshots_exit_zero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_doc("a"))
        b = self._write(tmp_path, "b.json", _bench_doc("b"))
        rc = main(["compare", a, b, "--ignore-host"])
        assert rc == 0
        assert "OK — no regressions" in capsys.readouterr().out

    def test_regression_exits_one_and_names_metric(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_doc("a", speedup=2.0))
        b = self._write(tmp_path, "b.json", _bench_doc("b", speedup=1.5))
        rc = main(["compare", a, b, "--ignore-host"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "figX.derived.speedup" in out
        assert "-25.00%" in out
        assert "must match exactly" in out

    def test_tolerance_flag(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_doc("a", speedup=2.0))
        b = self._write(tmp_path, "b.json", _bench_doc("b", speedup=1.9))
        rc = main(["compare", a, b, "--ignore-host",
                   "--tolerance", "figX.derived.speedup=0.1"])
        assert rc == 0

    def test_bad_tolerance_exits_two(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_doc("a"))
        rc = main(["compare", a, a, "--tolerance", "nonsense"])
        assert rc == 2
        assert "METRIC=REL" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_doc("a", speedup=2.0))
        b = self._write(tmp_path, "b.json", _bench_doc("b", speedup=4.0))
        rc = main(["compare", a, b, "--ignore-host", "--json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert any(d["metric"] == "figX.derived.speedup"
                   for d in doc["deltas"])

    def test_schema_mismatch_exits_two(self, tmp_path, capsys):
        old = _bench_doc("old")
        old["schema"] = "pacon.bench/v0"
        a = self._write(tmp_path, "a.json", old)
        b = self._write(tmp_path, "b.json", _bench_doc("b"))
        rc = main(["compare", a, b])
        assert rc == 2
        assert "pacon.bench/v1" in capsys.readouterr().err


class TestHistoryCommand:
    def test_history_table(self, tmp_path, capsys, monkeypatch):
        for label, speedup in (("a", 2.0), ("b", 2.5), ("c", 3.0)):
            (tmp_path / f"BENCH_{label}.json").write_text(
                json.dumps(_bench_doc(label, speedup=speedup)))
        monkeypatch.chdir(tmp_path)
        rc = main(["history"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "a -> b -> c" in out
        assert "figX.derived.speedup" in out
        assert "+50.0%" in out

    def test_history_no_snapshots_exits_two(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["history"])
        assert rc == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_history_json_with_metric_glob(self, tmp_path, capsys):
        paths = []
        for label, speedup in (("a", 2.0), ("b", 4.0)):
            path = tmp_path / f"BENCH_{label}.json"
            path.write_text(json.dumps(_bench_doc(label, speedup=speedup)))
            paths.append(str(path))
        rc = main(["history", *paths, "--metric", "figX.rows[0].ops",
                   "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["metric"] for row in rows] == ["figX.rows[0].ops"]


class TestObservabilityCommands:
    def test_stats_writes_metrics_json(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.json"
        rc = main(["stats", "--nodes", "2", "--clients-per-node", "2",
                   "--items", "5", "--out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "pacon.metrics/v4"
        assert doc["histograms"]["client.op.mkdir.latency"]["count"] > 0
        assert doc["counters"]["commit.committed"] > 0
        assert any(name.startswith("queue.depth[")
                   for name in doc["series"])

    def test_stats_compact_to_stdout(self, capsys):
        rc = main(["stats", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--compact"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema"] == "pacon.metrics/v4"
        assert out.count("\n") == 1  # single line + trailing newline

    def test_trace_renders_spans(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--limit", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "op.start" in out
        assert "op.end" in out
        assert "[ok]" in out

    def test_trace_kind_filter(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--kind", "op.end", "--limit", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "op.end" in out
        assert "op.start" not in out

    def test_figure_without_hub_support_rejects_metrics_out(
            self, tmp_path, capsys):
        rc = main(["figure", "fig01", "--scale", "smoke",
                   "--metrics-out", str(tmp_path / "m.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "does not support --metrics-out" in err

    def test_trace_chrome_export(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--limit", "5",
                   "--chrome", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
        assert "chrome trace written" in capsys.readouterr().out

    def test_trace_window_flags(self, capsys):
        rc = main(["trace", "--nodes", "1", "--clients-per-node", "1",
                   "--items", "2", "--limit", "500",
                   "--since", "1.0", "--until", "2.0"])
        assert rc == 0
        out = capsys.readouterr().out
        # The workload finishes in simulated microseconds, so nothing
        # falls inside the [1s, 2s] window.
        assert "op.start" not in out

    def test_profile_renders_tables(self, capsys):
        rc = main(["profile", "--nodes", "1", "--clients-per-node", "2",
                   "--items", "3", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Latency attribution by op class" in out
        assert "Top 3 slowest operations" in out
        assert "Resource utilization and queueing" in out
        assert "residual" in out

    def test_figure_trace_out(self, tmp_path, capsys):
        out_file = tmp_path / "fig07.trace.json"
        rc = main(["figure", "fig07", "--scale", "smoke",
                   "--trace-out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])


class TestSloCommand:
    def metrics_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        rc = main(["stats", "--nodes", "2", "--clients-per-node", "2",
                   "--items", "5", "--out", str(path)])
        assert rc == 0
        return path

    def test_json_exit_code_matches_verdict(self, tmp_path, capsys):
        """``slo --json`` exit code mirrors the document's own verdict."""
        path = self.metrics_file(tmp_path)
        capsys.readouterr()
        rc = main(["slo", str(path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == (0 if doc["verdict"] == "pass" else 1)
        assert doc["policy"] == "default"
        assert doc["objectives"]

    def test_text_and_json_agree_on_exit_code(self, tmp_path, capsys):
        path = self.metrics_file(tmp_path)
        rc_text = main(["slo", str(path)])
        capsys.readouterr()
        rc_json = main(["slo", str(path), "--json"])
        assert rc_text == rc_json

    def test_unknown_policy_exits_two(self, tmp_path, capsys):
        path = self.metrics_file(tmp_path)
        rc = main(["slo", str(path), "--policy", "nonsense"])
        assert rc == 2
        assert "unknown SLO policy" in capsys.readouterr().err


class TestIncidentsCommand:
    def test_single_scenario_attributes_and_writes_json(
            self, tmp_path, capsys):
        out_file = tmp_path / "incidents.json"
        rc = main(["incidents", "mds_crash", "--json",
                   "--out", str(out_file)])
        assert rc == 0
        rows = json.loads(out_file.read_text())
        (row,) = rows
        assert row["scenario"] == "mds_crash"
        assert row["attributed"] is True
        assert row["incidents"]["count"] >= 1
        top = row["incidents"]["incidents"][0]["suspects"][0]
        assert top["kind"] == "fault.injected"
        out = capsys.readouterr().out
        body, tail = out.rsplit("\n", 2)[0], out.splitlines()[-1]
        assert json.loads(body) == rows
        assert tail == f"written to {out_file}"

    def test_text_report_names_scenario_and_verdict(self, capsys):
        rc = main(["incidents", "mds_crash"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== mds_crash [ok]" in out
        assert "INC-001" in out
