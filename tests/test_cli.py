"""Tests for the pacon-bench CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mdtest_defaults(self):
        args = build_parser().parse_args(["mdtest"])
        assert args.system == "pacon"
        assert args.items == 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_mdtest_runs(self, capsys):
        rc = main(["mdtest", "--system", "pacon", "--nodes", "2",
                   "--clients-per-node", "2", "--items", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mkdir" in out and "create" in out and "ops/s" in out

    def test_mdtest_beegfs_custom_phases(self, capsys):
        rc = main(["mdtest", "--system", "beegfs", "--nodes", "1",
                   "--clients-per-node", "2", "--items", "4",
                   "--phases", "create,rm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rm" in out
        assert "mkdir" not in out

    def test_madbench_runs(self, capsys):
        rc = main(["madbench", "--system", "pacon", "--nodes", "2",
                   "--procs-per-node", "2", "--file-size", "262144",
                   "--iterations", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out and "write" in out

    def test_figure_table1(self, capsys):
        rc = main(["figure", "table1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out and "match" in out

    def test_all_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        rc = main(["all", "--scale", "smoke", "--out", str(out_file)])
        assert rc == 0
        content = out_file.read_text()
        assert "## fig07" in content
        assert "## sensitivity" in content
