"""End-to-end scenarios combining multiple subsystems.

These are the "would a downstream user's workflow survive" tests: multiple
applications, sharing, failures, eviction pressure, and mixed data +
metadata traffic in one run.
"""

import pytest

from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment, PaconFS
from repro.core.failure import fail_node, recover_node
from repro.core.permissions import PermissionSpec
from repro.dfs.beegfs import BeeGFS
from repro.dfs.errors import FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


class TestProducerConsumerPipeline:
    def test_share_then_fail_then_recover(self):
        """Producer shares data with a consumer via merge; the producer
        then loses a node and recovers from checkpoint; the consumer's
        region is never disturbed."""
        cluster = Cluster(seed=101)
        dfs = BeeGFS(cluster)
        prod_nodes = [cluster.add_node(f"p{i}") for i in range(3)]
        cons_nodes = [cluster.add_node(f"c{i}") for i in range(2)]
        pacon = PaconDeployment(cluster, dfs)
        prod_region = pacon.create_region(
            PaconConfig(workspace="/prod", uid=1001, gid=1001,
                        permissions=PermissionSpec(0o755, 1001, 1001)),
            prod_nodes)
        cons_region = pacon.create_region(
            PaconConfig(workspace="/cons", uid=1002, gid=1002,
                        permissions=PermissionSpec(0o755, 1002, 1002)),
            cons_nodes)
        producer = pacon.client(prod_region, prod_nodes[0])
        consumer = pacon.client(cons_region, cons_nodes[0])
        cons_region.merge(prod_region, mutual=False)

        # Producer emits a batch; checkpoint it.
        run_sync(cluster.env, producer.mkdir("/prod/batch0"))
        for i in range(10):
            run_sync(cluster.env,
                     producer.create(f"/prod/batch0/item{i}"))
            run_sync(cluster.env,
                     producer.write(f"/prod/batch0/item{i}", 0,
                                    data=bytes([i]) * 32))
        pacon.quiesce_sync(prod_region)
        ckpt = pacon.checkpointer(prod_region)
        run_sync(cluster.env, ckpt.checkpoint())

        # Consumer reads through the merge, strongly consistent.
        data = run_sync(cluster.env,
                        consumer.read("/prod/batch0/item3", 0, 32))
        assert data == bytes([3]) * 32

        # Producer loses a node mid-batch-1.
        doomed = pacon.client(prod_region, prod_nodes[1])
        run_sync(cluster.env, doomed.mkdir("/prod/batch1"))
        fail_node(prod_region, prod_nodes[1])
        recover_node(prod_region, prod_nodes[1])
        run_sync(cluster.env, ckpt.restore())

        # Batch 0 survives for both parties; consumer region untouched.
        assert run_sync(cluster.env,
                        consumer.exists("/prod/batch0/item9"))
        run_sync(cluster.env, consumer.create("/cons/log"))
        pacon.quiesce_sync(cons_region)
        assert dfs.namespace.exists("/cons/log")

        # Producer keeps producing after recovery.
        run_sync(cluster.env, producer.mkdir("/prod/batch1"))
        run_sync(cluster.env, producer.create("/prod/batch1/item0"))
        pacon.quiesce_sync(prod_region)
        assert dfs.namespace.exists("/prod/batch1/item0")


class TestChurnUnderEvictionPressure:
    def test_create_write_read_rm_cycle_with_tiny_cache(self):
        """A tight cache forces eviction while the workload churns; no
        data or metadata may be lost."""
        cluster = Cluster(seed=77)
        dfs = BeeGFS(cluster)
        nodes = [cluster.add_node(f"n{i}") for i in range(2)]
        pacon = PaconDeployment(cluster, dfs)
        region = pacon.create_region(
            PaconConfig(workspace="/churn", cache_capacity_bytes=30_000),
            nodes)
        client = pacon.client(region, nodes[0])
        evictor = pacon.evictor(region)
        cluster.env.process(evictor.run(poll_interval=1e-3))

        alive = {}
        for round_no in range(4):
            run_sync(cluster.env, client.mkdir(f"/churn/r{round_no}"))
            for i in range(12):
                path = f"/churn/r{round_no}/f{i}"
                run_sync(cluster.env, client.create(path))
                run_sync(cluster.env,
                         client.write(path, 0, data=bytes([i]) * 64))
                alive[path] = bytes([i]) * 64
            # Remove a third of the previous round.
            if round_no:
                for i in range(0, 12, 3):
                    path = f"/churn/r{round_no - 1}/f{i}"
                    run_sync(cluster.env, client.rm(path))
                    del alive[path]
            pacon.quiesce_sync(region)
        # Let the evictor settle, then verify everything.
        cluster.env.run(until=cluster.env.now + 20e-3)
        for path, payload in alive.items():
            data = run_sync(cluster.env, client.read(path, 0, 64))
            assert data == payload, path
        removed = [p for p in
                   (f"/churn/r{r}/f{i}" for r in range(3)
                    for i in range(0, 12, 3))
                   if p not in alive]
        for path in removed:
            with pytest.raises(FileNotFound):
                run_sync(cluster.env, client.getattr(path))


class TestFacadeExtensions:
    def test_rename_and_chmod_via_facade(self):
        with PaconFS(workspace="/app", nodes=2) as fs:
            fs.mkdir("/app/d")
            fs.create("/app/d/f")
            fs.rename("/app/d", "/app/e")
            assert fs.exists("/app/e/f")
            fs.chmod("/app/e/f", 0o640)
            assert fs.stat("/app/e/f").mode == 0o640

    def test_mixed_small_and_large_files(self):
        with PaconFS(workspace="/app", nodes=2) as fs:
            fs.create("/app/small")
            fs.write("/app/small", 0, data=b"tiny")
            fs.create("/app/large")
            fs.write("/app/large", 0, size=1_000_000)  # exceeds threshold
            assert fs.read("/app/small", 0, 4) == b"tiny"
            assert fs.stat("/app/large").size == 1_000_000
            fs.quiesce()
            assert fs.dfs.namespace.getattr("/app/large").size == 1_000_000


class TestManyRegionsIsolationAtScale:
    def test_eight_regions_commit_independently(self):
        cluster = Cluster(seed=5)
        dfs = BeeGFS(cluster)
        pacon = PaconDeployment(cluster, dfs)
        regions = []
        clients = []
        for k in range(8):
            node = cluster.add_node(f"app{k}")
            region = pacon.create_region(
                PaconConfig(workspace=f"/a{k}", uid=2000 + k, gid=2000 + k),
                [node])
            regions.append(region)
            clients.append(pacon.client(region, node))
        # Interleave work across all regions.
        for i in range(5):
            for k, client in enumerate(clients):
                run_sync(cluster.env, client.create(f"/a{k}/f{i}"))
        for region in regions:
            pacon.quiesce_sync(region)
        for k in range(8):
            assert len(dfs.namespace.readdir(f"/a{k}")) == 5
        # Isolation: each region's queues saw only its own ops.
        for region in regions:
            assert region.ops_submitted == 5
            assert region.ops_committed == 5
