"""Unit tests for the DES kernel (events, processes, time, interrupts)."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
    run_sync,
)


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_event_starts_untriggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        env.run()
        assert ev.value == 42

    def test_fail_carries_exception(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        env.run()
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_double_succeed_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_after_succeed_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("late"))

    def test_fail_requires_exception_instance(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callback_after_processed_still_runs(self, env):
        ev = env.event()
        ev.succeed("x")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        t = env.timeout(5.0)
        env.run(until=t)
        assert env.now == 5.0

    def test_timeout_value_passthrough(self, env):
        t = env.timeout(1.0, value="done")
        assert env.run(until=t) == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, env):
        t = env.timeout(0.0)
        env.run(until=t)
        assert env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []
        for d in (3.0, 1.0, 2.0):
            env.timeout(d).add_callback(lambda e, d=d: order.append(d))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo_tiebreak(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_process_returns_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "result"

        assert run_sync(env, proc()) == "result"
        assert env.now == 1.0

    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_is_error(self, env):
        def proc():
            yield 42

        with pytest.raises(SimulationError, match="must yield Event"):
            run_sync(env, proc())

    def test_processes_wait_on_each_other(self, env):
        def child():
            yield env.timeout(2.0)
            return 7

        def parent():
            value = yield env.process(child())
            return value + 1

        assert run_sync(env, parent()) == 8

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1.0)
            raise KeyError("inner")

        def parent():
            yield env.process(child())

        with pytest.raises(KeyError, match="inner"):
            run_sync(env, parent())

    def test_subgenerator_via_yield_from(self, env):
        def sub(x):
            yield env.timeout(1.0)
            return x * 2

        def main():
            a = yield from sub(3)
            b = yield from sub(a)
            return b

        assert run_sync(env, main()) == 12
        assert env.now == 2.0

    def test_failed_event_throws_into_process(self, env):
        ev = env.event()

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(proc())
        ev.fail(RuntimeError("wire error"))
        assert env.run(until=p) == "caught wire error"

    def test_is_alive_transitions(self, env):
        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause, env.now)

        p = env.process(victim())

        def killer():
            yield env.timeout(5.0)
            p.interrupt("node-crash")

        env.process(killer())
        assert env.run(until=p) == ("interrupted", "node-crash", 5.0)

    def test_interrupt_finished_process_is_noop(self, env):
        def quick():
            yield env.timeout(1.0)
            return "ok"

        p = env.process(quick())
        env.run()
        p.interrupt("too late")  # must not raise
        assert p.value == "ok"

    def test_interrupted_process_can_continue(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return env.now

        p = env.process(victim())

        def killer():
            yield env.timeout(2.0)
            p.interrupt()

        env.process(killer())
        assert env.run(until=p) == 3.0

    def test_interrupt_before_start_cancels_cleanly(self, env):
        """Interrupting a process whose generator never ran must not blow
        up at the generator's first line; the process dies with the
        Interrupt as its outcome."""
        def never_started():
            yield env.timeout(1.0)
            return "unreachable"

        p = env.process(never_started())
        p.interrupt("early-kill")  # before env.run: bootstrap pending
        env.run()
        assert not p.is_alive
        assert isinstance(p.exception, Interrupt)
        assert p.exception.cause == "early-kill"

    def test_original_event_does_not_resume_after_interrupt(self, env):
        resumed = []

        def victim():
            try:
                yield env.timeout(5.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(10.0)
            resumed.append("end")

        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt()

        env.process(killer())
        env.run()
        assert resumed == ["interrupt", "end"]


class TestConditions:
    def test_all_of_collects_values(self, env):
        events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]

        def proc():
            values = yield AllOf(env, events)
            return values

        assert run_sync(env, proc()) == [3.0, 1.0, 2.0]
        assert env.now == 3.0

    def test_all_of_empty_is_immediate(self, env):
        def proc():
            values = yield AllOf(env, [])
            return values

        assert run_sync(env, proc()) == []

    def test_all_of_fails_fast(self, env):
        bad = env.event()

        def failer():
            yield env.timeout(1.0)
            bad.fail(IOError("disk"))

        env.process(failer())

        def proc():
            yield AllOf(env, [env.timeout(50.0), bad])

        with pytest.raises(IOError):
            run_sync(env, proc())
        assert env.now == 1.0

    def test_any_of_returns_first(self, env):
        events = [env.timeout(3.0, "slow"), env.timeout(1.0, "fast")]

        def proc():
            idx, value = yield AnyOf(env, events)
            return idx, value

        assert run_sync(env, proc()) == (1, "fast")
        assert env.now == 1.0

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(ValueError):
            AnyOf(env, [])


class TestEnvironmentRun:
    def test_run_until_time_stops_clock(self, env):
        fired = []
        env.timeout(1.0).add_callback(lambda e: fired.append(1))
        env.timeout(10.0).add_callback(lambda e: fired.append(10))
        env.run(until=5.0)
        assert fired == [1]
        assert env.now == 5.0

    def test_run_until_past_time_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_run_to_exhaustion(self, env):
        env.timeout(2.5)
        env.run()
        assert env.now == 2.5
        assert env.peek() == float("inf")

    def test_deadlock_detection(self, env):
        stuck = env.event()

        def proc():
            yield stuck

        with pytest.raises(SimulationError, match="deadlock"):
            run_sync(env, proc())

    def test_step_on_empty_heap_rejected(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_event_count_increments(self, env):
        before = env.processed_events
        env.timeout(1.0)
        env.run()
        assert env.processed_events > before

    def test_determinism_same_program_same_trace(self):
        def trace():
            env = Environment()
            out = []

            def proc(i):
                yield env.timeout(0.5 * (i % 3))
                out.append((i, env.now))
                yield env.timeout(1.0)
                out.append((i, env.now))

            for i in range(10):
                env.process(proc(i))
            env.run()
            return out

        assert trace() == trace()
