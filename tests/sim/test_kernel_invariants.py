"""Kernel invariants: event-state honesty, detach behavior, determinism.

Regression suite for the hot-path rewrite: ``triggered``/``processed``
must tell the truth at every point of an event's life (a pending Timeout
used to claim ``triggered`` from birth), interrupts and condition events
must actually detach from the events they leave behind, and the same
program must replay byte-identically.
"""

import json

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
    run_sync,
)
from repro.sim.resources import Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestTimeoutTriggeredHonesty:
    """A pending Timeout is not triggered until the clock reaches it."""

    def test_fresh_timeout_not_triggered(self, env):
        t = Timeout(env, 5.0, value=3)
        assert not t.triggered
        assert not t.processed

    def test_fresh_timeout_value_and_ok_raise(self, env):
        t = Timeout(env, 5.0, value=3)
        with pytest.raises(SimulationError):
            _ = t.value
        with pytest.raises(SimulationError):
            _ = t.ok

    def test_not_triggered_until_clock_reaches_fire_time(self, env):
        t = Timeout(env, 5.0, value=3)
        env.timeout(2.0)
        env.run(until=2.0)
        assert not t.triggered
        env.run(until=t)
        assert env.now == 5.0
        assert t.triggered
        assert t.processed
        assert t.ok
        assert t.value == 3

    def test_zero_delay_timeout_pending_before_run(self, env):
        t = env.timeout(0.0, value="v")
        assert not t.triggered
        env.run()
        assert t.triggered and t.value == "v"

    def test_succeed_on_pending_timeout_rejected(self, env):
        t = env.timeout(5.0)
        with pytest.raises(SimulationError):
            t.succeed(1)

    def test_fail_on_pending_timeout_rejected(self, env):
        t = env.timeout(5.0)
        with pytest.raises(SimulationError):
            t.fail(RuntimeError("no"))

    def test_none_value_timeout_still_reports_triggered(self, env):
        # triggered must flip even for the default value=None payload.
        t = env.timeout(1.0)
        env.run()
        assert t.triggered
        assert t.ok
        assert t.value is None


class TestStateTransitions:
    def test_event_triggered_before_processed(self, env):
        ev = env.event()
        ev.succeed(1)
        assert ev.triggered
        assert not ev.processed
        env.run()
        assert ev.processed

    def test_failed_event_transitions(self, env):
        ev = env.event()
        ev.fail(ValueError("x"))
        assert ev.triggered
        assert not ev.ok
        assert not ev.processed
        env.run()
        assert ev.processed

    def test_process_transitions(self, env):
        def proc():
            yield env.timeout(1.0)
            return "r"

        p = env.process(proc())
        assert not p.triggered
        assert p.is_alive
        env.run()
        assert p.triggered
        assert p.processed
        assert not p.is_alive
        assert p.value == "r"

    def test_late_callback_on_processed_event_runs_next_cycle(self, env):
        ev = env.event()
        ev.succeed("x")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.add_callback(lambda e: seen.append(e.value + "2"))
        assert seen == []  # deferred, not synchronous
        env.run()
        assert seen == ["x", "x2"]


class TestInterruptDetach:
    def test_rewait_on_detached_event_resumes_once(self, env):
        """After an interrupt, waiting on the *same* event again must
        reuse the stale (marked) callback — not register a duplicate that
        would double-resume the process."""
        resumes = []

        def victim():
            t = env.timeout(10.0, value="fired")
            try:
                yield t
                resumes.append("first-wait")
            except Interrupt:
                resumes.append("interrupted")
            got = yield t  # re-wait on the exact event we detached from
            resumes.append(got)
            return env.now

        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt()

        env.process(killer())
        assert env.run(until=p) == 10.0
        assert resumes == ["interrupted", "fired"]

    def test_detached_event_fires_into_nothing(self, env):
        """The abandoned event still fires for other waiters, but not for
        the interrupted process."""
        log = []
        shared = env.timeout(5.0, value="shared")

        def bystander():
            got = yield shared
            log.append(("bystander", got, env.now))

        def victim():
            try:
                yield shared
                log.append(("victim-wrong", env.now))
            except Interrupt:
                log.append(("victim-interrupted", env.now))
            yield env.timeout(100.0)

        env.process(bystander())
        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt()

        env.process(killer())
        env.run(until=50.0)
        assert ("bystander", "shared", 5.0) in log
        assert ("victim-interrupted", 1.0) in log
        assert not any(entry[0] == "victim-wrong" for entry in log)

    def test_repeated_interrupts_detach_each_wait(self, env):
        hits = []

        def victim():
            for _ in range(4):
                try:
                    yield env.timeout(1000.0)
                except Interrupt as intr:
                    hits.append((intr.cause, env.now))
            return len(hits)

        p = env.process(victim())

        def killer():
            for k in range(4):
                yield env.timeout(1.0)
                p.interrupt(k)

        env.process(killer())
        assert env.run(until=p) == 4
        assert hits == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]

    def test_interrupt_while_waiting_on_shared_event_list(self, env):
        """Detach when the victim shares the event's callback list with
        other waiters (list-shaped callbacks, not the single-callback
        fast path)."""
        shared = env.timeout(5.0, value="s")
        order = []

        def waiter(tag):
            got = yield shared
            order.append((tag, got))

        def victim():
            try:
                yield shared
                order.append(("victim", "wrong"))
            except Interrupt:
                order.append(("victim", "interrupted"))

        env.process(waiter("a"))
        p = env.process(victim())
        env.process(waiter("b"))

        def killer():
            yield env.timeout(1.0)
            p.interrupt()

        env.process(killer())
        env.run()
        assert ("victim", "interrupted") in order
        assert ("a", "s") in order and ("b", "s") in order
        assert ("victim", "wrong") not in order


def _live_callbacks(event):
    """The callbacks still registered on a pending event, as a list."""
    callbacks = event.callbacks
    if callbacks is None:
        return []
    if type(callbacks) is list:
        return list(callbacks)
    return [callbacks]


class TestConditionDetach:
    def test_anyof_detaches_losers(self, env):
        winner = env.timeout(1.0, value="w")
        losers = [env.timeout(100.0) for _ in range(3)]
        cond = AnyOf(env, [winner] + losers)
        for ev in losers:
            assert _live_callbacks(ev), "child registration missing"
        env.run(until=cond)
        for ev in losers:
            assert _live_callbacks(ev) == [], (
                "AnyOf left its callback on a losing child")
        assert cond.value == (0, "w")

    def test_anyof_losers_remain_usable(self, env):
        winner = env.timeout(1.0, value="w")
        loser = env.timeout(2.0, value="l")
        AnyOf(env, [winner, loser])

        def late():
            got = yield loser
            return (got, env.now)

        assert run_sync(env, late()) == ("l", 2.0)

    def test_allof_fail_fast_detaches_remaining(self, env):
        bad = env.event()
        slow = env.timeout(100.0)
        cond = AllOf(env, [slow, bad])

        def failer():
            yield env.timeout(1.0)
            bad.fail(IOError("disk"))

        env.process(failer())
        env.run(until=2.0)
        assert cond.triggered and not cond.ok
        assert _live_callbacks(slow) == [], (
            "failed AllOf left its callback on a pending child")

    def test_anyof_detach_with_shared_waiters(self, env):
        """Detach must remove only the condition's own callback."""
        winner = env.timeout(1.0, value="w")
        loser = env.timeout(3.0, value="l")
        seen = []
        loser.add_callback(lambda e: seen.append(("direct", e.value)))
        cond = AnyOf(env, [winner, loser])
        env.run(until=cond)
        assert len(_live_callbacks(loser)) == 1
        env.run()
        assert seen == [("direct", "l")]


class TestSameSeedDeterminism:
    """The same program replays byte-identically, including through
    interrupts, shared resources, and condition events."""

    @staticmethod
    def _mixed_workload():
        env = Environment()
        res = Resource(env, capacity=2, name="cpu")
        box = Store(env, name="box")
        trace = []

        def worker(i):
            for h in range(4):
                yield from res.use(0.01 * ((i + h) % 3 + 1))
                trace.append(("work", i, h, round(env.now, 9)))
            box.put(i)

        def racer(i):
            fast = env.timeout(0.005 * (i + 1), value="fast")
            slow = env.timeout(10.0, value="slow")
            idx, value = yield AnyOf(env, [fast, slow])
            trace.append(("race", i, idx, value, round(env.now, 9)))
            yield AllOf(env, [env.timeout(0.001), env.timeout(0.002)])
            trace.append(("joined", i, round(env.now, 9)))

        def victim():
            try:
                yield env.timeout(1000.0)
            except Interrupt as intr:
                trace.append(("interrupted", intr.cause, round(env.now, 9)))

        def collector():
            for _ in range(3):
                item = yield box.get()
                trace.append(("collected", item, round(env.now, 9)))

        victims = [env.process(victim()) for _ in range(2)]

        def killer():
            yield env.timeout(0.02)
            for k, v in enumerate(victims):
                v.interrupt(k)

        for i in range(3):
            env.process(worker(i))
            env.process(racer(i))
        env.process(collector())
        env.process(killer())
        env.run()
        return trace, env.processed_events

    def test_trace_and_event_count_identical(self):
        (trace_a, events_a) = self._mixed_workload()
        (trace_b, events_b) = self._mixed_workload()
        assert events_a == events_b
        assert json.dumps(trace_a) == json.dumps(trace_b)

    def test_event_count_is_stable_constant(self):
        """Pin the processed-event count: any kernel change that shifts
        scheduling semantics (extra/fewer heap entries, reordering) moves
        this number and must be a conscious decision."""
        _, events = self._mixed_workload()
        _, events_again = self._mixed_workload()
        assert events == events_again
        assert events > 0
