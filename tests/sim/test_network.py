"""Unit tests for the cluster/network model and Service RPC plumbing."""

import pytest

from repro.sim.core import run_sync
from repro.sim.costs import CostModel
from repro.sim.network import Cluster, NodeDownError, Service


@pytest.fixture
def cluster():
    return Cluster()


class EchoService(Service):
    def handle_echo(self, value):
        yield self.env.timeout(10e-6)
        return value

    def handle_boom(self):
        yield self.env.timeout(1e-6)
        raise ValueError("handler error")


class TestCluster:
    def test_add_node_assigns_ids(self, cluster):
        a = cluster.add_node("a")
        b = cluster.add_node("b")
        assert (a.node_id, b.node_id) == (0, 1)
        assert cluster.nodes == [a, b]

    def test_add_nodes_bulk(self, cluster):
        nodes = cluster.add_nodes(4, prefix="client")
        assert len(nodes) == 4
        assert nodes[0].name == "client0"

    def test_default_costs(self, cluster):
        assert cluster.costs.net_latency == CostModel().net_latency


class TestNetworkTransfer:
    def test_remote_transfer_charges_latency(self, cluster):
        a, b = cluster.add_nodes(2)

        def proc():
            yield from cluster.network.transfer(a, b, 0)
            return cluster.env.now

        elapsed = run_sync(cluster.env, proc())
        p = cluster.network.params
        assert elapsed == pytest.approx(2 * p.msg_overhead + p.latency)

    def test_local_transfer_is_loopback(self, cluster):
        a = cluster.add_node("a")

        def proc():
            yield from cluster.network.transfer(a, a, 4096)
            return cluster.env.now

        elapsed = run_sync(cluster.env, proc())
        assert elapsed == pytest.approx(cluster.costs.local_loopback)

    def test_bandwidth_term_scales_with_size(self, cluster):
        a, b = cluster.add_nodes(2)

        def timed(nbytes):
            def proc():
                t0 = cluster.env.now
                yield from cluster.network.transfer(a, b, nbytes)
                return cluster.env.now - t0
            return run_sync(cluster.env, proc())

        small = timed(0)
        big = timed(50 * 1024 * 1024)
        expected_extra = 50 * 1024 * 1024 / cluster.network.params.bandwidth
        assert big - small == pytest.approx(expected_extra, rel=1e-6)

    def test_transfer_counters(self, cluster):
        a, b = cluster.add_nodes(2)

        def proc():
            yield from cluster.network.transfer(a, b, 100)
            yield from cluster.network.transfer(b, a, 200)

        run_sync(cluster.env, proc())
        assert cluster.network.messages_sent == 2
        assert cluster.network.bytes_sent == 300

    def test_transfer_to_dead_node_fails(self, cluster):
        a, b = cluster.add_nodes(2)
        b.fail()

        def proc():
            yield from cluster.network.transfer(a, b, 100)

        with pytest.raises(NodeDownError):
            run_sync(cluster.env, proc())

    def test_recovered_node_accepts_transfers(self, cluster):
        a, b = cluster.add_nodes(2)
        b.fail()
        b.recover()

        def proc():
            yield from cluster.network.transfer(a, b, 100)
            return "ok"

        assert run_sync(cluster.env, proc()) == "ok"

    def test_nic_serializes_fan_in(self, cluster):
        """Concurrent senders to one node queue on the receiver NIC."""
        senders = cluster.add_nodes(8)
        target = cluster.add_node("target")
        done = []

        def sender(src):
            yield from cluster.network.transfer(src, target, 0)
            done.append(cluster.env.now)

        for src in senders:
            cluster.env.process(sender(src))
        cluster.run()
        # All arrive at the same time but are processed at most
        # nic_channels at a time at the receiver.
        from collections import Counter
        channels = cluster.costs.nic_channels
        per_instant = Counter(round(t, 12) for t in done)
        assert max(per_instant.values()) <= channels
        assert len(per_instant) >= len(done) // channels


class TestService:
    def test_rpc_round_trip_value(self, cluster):
        client, server = cluster.add_nodes(2)
        svc = EchoService(cluster, server, "echo", workers=1)

        def proc():
            result = yield from svc.request(client, "echo", "hello")
            return result

        assert run_sync(cluster.env, proc()) == "hello"
        assert svc.requests_served == 1
        assert svc.requests_by_method == {"echo": 1}

    def test_rpc_unknown_method(self, cluster):
        client, server = cluster.add_nodes(2)
        svc = EchoService(cluster, server, "echo")

        def proc():
            yield from svc.request(client, "nosuch")

        with pytest.raises(AttributeError):
            run_sync(cluster.env, proc())

    def test_handler_error_reaches_caller_after_response_hop(self, cluster):
        client, server = cluster.add_nodes(2)
        svc = EchoService(cluster, server, "echo")

        def proc():
            try:
                yield from svc.request(client, "boom")
            except ValueError as exc:
                return (str(exc), cluster.env.now)

        msg, t = run_sync(cluster.env, proc())
        assert msg == "handler error"
        # Error arrives after a full round trip, not instantly.
        assert t > 2 * cluster.network.params.latency

    def test_worker_pool_limits_concurrency(self, cluster):
        client, server = cluster.add_nodes(2)
        svc = EchoService(cluster, server, "echo", workers=1)
        done = []

        def proc(i):
            yield from svc.request(client, "echo", i)
            done.append(cluster.env.now)

        for i in range(4):
            cluster.env.process(proc(i))
        cluster.run()
        # 10us handler serialized across 4 requests: completions spread out.
        spans = [b - a for a, b in zip(done, done[1:])]
        assert all(s >= 9e-6 for s in spans)

    def test_local_call_skips_network(self, cluster):
        server = cluster.add_node("server")
        svc = EchoService(cluster, server, "echo")

        def proc():
            result = yield from svc.local("echo", 5)
            return (result, cluster.env.now)

        result, t = run_sync(cluster.env, proc())
        assert result == 5
        assert t == pytest.approx(10e-6)
