"""Tests for the structured tracer and its commit-machinery integration."""

import pytest

from repro.sim.trace import NULL_TRACER, TraceEvent, Tracer
from tests.core.conftest import make_world


class TestTracer:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit(1.0, "a", "op.start", "create /x", op_id=1)
        t.emit(2.0, "b", "commit", "create /x")
        t.emit(3.0, "a", "op.end", "", op_id=1)
        assert len(t) == 3
        assert len(list(t.events(actor="a"))) == 2
        assert len(list(t.events(kind="commit"))) == 1
        assert len(list(t.events(since=1.5, until=2.5))) == 1
        assert len(list(t.events(op_id=1))) == 2

    def test_spans_pairing(self):
        t = Tracer()
        a = t.new_op_id()
        b = t.new_op_id()
        t.emit(1.0, "c", "op.start", "create", op_id=a)
        t.emit(1.5, "c", "op.start", "mkdir", op_id=b)
        t.emit(2.0, "c", "op.end", op_id=a)
        spans = t.spans()
        # b never ended: reported as an open-ended entry, not dropped.
        assert spans == {a: (1.0, 2.0, "create"), b: (1.5, None, "mkdir")}

    def test_render_reports_open_spans(self):
        t = Tracer()
        a = t.new_op_id()
        t.emit(1.0, "c", "op.start", "create", op_id=a)
        assert "1 spans still open" in t.render()
        t.emit(2.0, "c", "op.end", op_id=a)
        assert "still open" not in t.render()

    def test_capacity_drops(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.emit(float(i), "x", "k")
        assert len(t) == 2
        assert t.dropped == 3

    def test_disabled_tracer_ignores(self):
        t = Tracer()
        t.enabled = False
        t.emit(1.0, "x", "k")
        assert len(t) == 0

    def test_render_clips(self):
        t = Tracer()
        for i in range(10):
            t.emit(float(i), "x", "k", f"e{i}")
        text = t.render(limit=3)
        assert "e0" in text and "e9" not in text
        assert "7 more events" in text

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit(1.0, "x", "k")
        assert len(NULL_TRACER) == 0

    def test_clear(self):
        t = Tracer()
        t.emit(1.0, "x", "k")
        t.clear()
        assert len(t) == 0

    def test_event_render(self):
        ev = TraceEvent(1e-3, "commit:n0", "commit", "create /a", op_id=7)
        text = ev.render()
        assert "commit:n0" in text and "#7" in text and "create /a" in text


class TestCommitIntegration:
    def test_commit_events_recorded(self):
        world = make_world()
        tracer = Tracer()
        world.region.tracer = tracer
        world.run(world.client.create("/app/f"))
        world.quiesce()
        commits = list(tracer.events(kind="commit"))
        assert len(commits) == 1
        assert "create /app/f" in commits[0].detail

    def test_barrier_events_recorded(self):
        world = make_world()
        tracer = Tracer()
        world.region.tracer = tracer
        world.run(world.client.readdir("/app"))
        barriers = list(tracer.events(kind="barrier"))
        assert len(barriers) == len(world.region.nodes)
        assert all("epoch 0 done" in ev.detail for ev in barriers)

    def test_traces_are_deterministic(self):
        def run_once():
            w = make_world(seed=55)
            tracer = Tracer()
            w.region.tracer = tracer
            w.run(w.client.mkdir("/app/d"))
            for i in range(5):
                w.run(w.client.create(f"/app/d/f{i}"))
            w.run(w.client.readdir("/app/d"))
            w.quiesce()
            return [ev.render() for ev in tracer.events()]

        assert run_once() == run_once()
