"""Unit tests for Resource, Store, Gate, Barrier."""

import pytest

from repro.sim.core import Environment, SimulationError, run_sync
from repro.sim.resources import Barrier, Gate, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        ev = res.acquire()
        assert ev.triggered
        assert res.in_use == 1

    def test_fifo_queueing_over_capacity(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(i):
            yield res.acquire()
            order.append((i, env.now))
            yield env.timeout(1.0)
            res.release()

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert order == [(0, 0.0), (1, 1.0), (2, 2.0)]

    def test_release_idle_rejected(self, env):
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_use_helper_serializes(self, env):
        res = Resource(env, capacity=1)
        done = []

        def worker(i):
            yield from res.use(2.0)
            done.append(env.now)

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert done == [2.0, 4.0, 6.0]

    def test_queue_length_tracks_waiters(self, env):
        res = Resource(env, capacity=1)
        res.acquire()
        res.acquire()
        res.acquire()
        assert res.queue_length == 2

    def test_utilization_full_load(self, env):
        res = Resource(env, capacity=1)

        def worker():
            yield from res.use(10.0)

        env.process(worker())
        env.run()
        assert res.utilization() == pytest.approx(1.0)

    def test_utilization_half_load(self, env):
        res = Resource(env, capacity=2)

        def worker():
            yield from res.use(10.0)

        env.process(worker())
        env.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_utilization_not_diluted_for_mid_run_resource(self, env):
        """Regression: utilization used to divide by env.now from time
        zero, so a resource constructed mid-run looked mostly idle even
        while 100% busy.  It must divide by the resource's own lifetime
        (now - created_at)."""
        def setup():
            yield env.timeout(90.0)

        env.process(setup())
        env.run()
        res = Resource(env, capacity=1)
        assert res.created_at == pytest.approx(90.0)

        def worker():
            yield from res.use(10.0)

        env.process(worker())
        env.run()
        # Busy for its entire 10s lifetime: 1.0, not 10/100 = 0.1.
        assert res.utilization() == pytest.approx(1.0)

    def test_peak_queue_tracks_max_waiters(self, env):
        res = Resource(env, capacity=1)

        def worker():
            yield from res.use(1.0)

        for _ in range(4):
            env.process(worker())
        env.run()
        assert res.peak_queue == 3

    def test_wait_time_accounting(self, env):
        res = Resource(env, capacity=1)

        def worker():
            yield from res.use(3.0)

        env.process(worker())
        env.process(worker())
        env.run()
        assert res.total_wait_time == pytest.approx(3.0)
        assert res.total_acquires == 2

    def test_handoff_keeps_capacity_invariant(self, env):
        res = Resource(env, capacity=2)
        max_seen = []

        def worker(i):
            yield res.acquire()
            max_seen.append(res.in_use)
            yield env.timeout(1.0)
            res.release()

        for i in range(6):
            env.process(worker(i))
        env.run()
        assert max(max_seen) <= 2


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("a")

        def getter():
            item = yield store.get()
            return item

        assert run_sync(env, getter()) == "a"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, env.now))

        def putter():
            yield env.timeout(5.0)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [("late", 5.0)]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        out = []

        def getter():
            for _ in range(5):
                out.append((yield store.get()))

        env.process(getter())
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        out = []

        def getter(i):
            item = yield store.get()
            out.append((i, item))

        for i in range(3):
            env.process(getter(i))

        def putter():
            yield env.timeout(1.0)
            for x in "abc":
                store.put(x)

        env.process(putter())
        env.run()
        assert out == [(0, "a"), (1, "b"), (2, "c")]

    def test_len_and_drain(self, env):
        store = Store(env)
        for i in range(4):
            store.put(i)
        assert len(store) == 4
        assert store.peek_all() == [0, 1, 2, 3]
        assert store.drain() == [0, 1, 2, 3]
        assert len(store) == 0


class TestGate:
    def test_closed_gate_blocks(self, env):
        gate = Gate(env)
        passed = []

        def waiter():
            yield gate.wait()
            passed.append(env.now)

        env.process(waiter())

        def opener():
            yield env.timeout(3.0)
            gate.open()

        env.process(opener())
        env.run()
        assert passed == [3.0]

    def test_open_gate_passes_immediately(self, env):
        gate = Gate(env, opened=True)
        ev = gate.wait()
        assert ev.triggered

    def test_reclose_blocks_again(self, env):
        gate = Gate(env, opened=True)
        gate.close()
        ev = gate.wait()
        assert not ev.triggered
        gate.open()
        assert ev.triggered

    def test_open_releases_all_waiters(self, env):
        gate = Gate(env)
        events = [gate.wait() for _ in range(5)]
        gate.open()
        assert all(ev.triggered for ev in events)


class TestBarrier:
    def test_parties_validation(self, env):
        with pytest.raises(ValueError):
            Barrier(env, parties=0)

    def test_releases_when_full(self, env):
        barrier = Barrier(env, parties=3)
        released = []

        def party(i, delay):
            yield env.timeout(delay)
            gen = yield barrier.arrive()
            released.append((i, env.now, gen))

        env.process(party(0, 1.0))
        env.process(party(1, 2.0))
        env.process(party(2, 3.0))
        env.run()
        assert released == [(0, 3.0, 0), (1, 3.0, 0), (2, 3.0, 0)]

    def test_reusable_generations(self, env):
        barrier = Barrier(env, parties=2)
        gens = []

        def party(i):
            for _ in range(3):
                gen = yield barrier.arrive()
                gens.append(gen)
                yield env.timeout(1.0)

        env.process(party(0))
        env.process(party(1))
        env.run()
        assert sorted(gens) == [0, 0, 1, 1, 2, 2]

    def test_single_party_never_blocks(self, env):
        barrier = Barrier(env, parties=1)
        ev = barrier.arrive()
        assert ev.triggered

    def test_n_waiting(self, env):
        barrier = Barrier(env, parties=3)
        barrier.arrive()
        assert barrier.n_waiting == 1
        barrier.arrive()
        assert barrier.n_waiting == 2
        barrier.arrive()
        assert barrier.n_waiting == 0
