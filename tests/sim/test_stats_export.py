"""Export-safety regressions: non-throwing meters, Series, trace drops."""

import pytest

from repro.sim import rng
from repro.sim.rng import stable_hash
from repro.sim.stats import Series, StatsRegistry, ThroughputMeter
from repro.sim.trace import Tracer


class TestMeterExport:
    def test_running_meter_does_not_poison_meters_export(self):
        reg = StatsRegistry()
        done = reg.meter("done")
        done.start(0.0)
        done.record(10)
        done.stop(2.0)
        running = reg.meter("running")
        running.start(1.0)
        running.record(3)
        # Pre-fix this raised RuntimeError("meter 'running' not stopped")
        # through ThroughputMeter.elapsed and lost the whole export.
        out = reg.meters()
        assert out == {"done": 5.0, "running": 0.0}

    def test_meters_export_against_now(self):
        reg = StatsRegistry()
        running = reg.meter("running")
        running.start(1.0)
        running.record(4)
        assert reg.meters(now=3.0) == {"running": 2.0}

    def test_elapsed_property_stays_strict(self):
        m = ThroughputMeter("x")
        m.start(0.0)
        with pytest.raises(RuntimeError):
            _ = m.elapsed
        assert m.elapsed_at() == 0.0
        assert m.elapsed_at(now=1.5) == 1.5


class TestSeries:
    def test_append_and_export(self):
        s = Series("q")
        s.append(0.0, 1)
        s.append(1.0, 2.5)
        assert len(s) == 2
        assert s.points() == [(0.0, 1.0), (1.0, 2.5)]
        assert s.last() == (1.0, 2.5)
        assert s.export() == {"t": [0.0, 1.0], "v": [1.0, 2.5],
                              "dropped": 0}

    def test_cap_counts_drops(self):
        s = Series("q", max_points=2)
        for i in range(5):
            s.append(float(i), i)
        assert len(s) == 2
        assert s.dropped == 3
        assert s.export()["dropped"] == 3

    def test_registry_interns_series(self):
        reg = StatsRegistry()
        assert reg.series("a") is reg.series("a")
        reg.series("b").append(0.0, 1.0)
        out = reg.series_export()
        assert list(out) == ["a", "b"]
        assert out["b"]["v"] == [1.0]


class TestTracerDrops:
    def test_render_surfaces_dropped_count(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(float(i), "actor", "op.start", f"e{i}", op_id=i)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        rendered = tracer.render()
        assert "3 events dropped (capacity 2)" in rendered

    def test_render_without_drops_has_no_notice(self):
        tracer = Tracer()
        tracer.emit(0.0, "actor", "op.start", "e0", op_id=1)
        assert "dropped" not in tracer.render()


class TestStableHash:
    def test_deterministic_reference_values(self):
        # FNV-1a; must never change — fsync shadow-file names depend on it.
        assert stable_hash("abc") == 230203133
        assert stable_hash("/app/f0") == 384400878

    def test_public_export(self):
        assert "stable_hash" in rng.__all__
        # Backwards-compat alias for pre-rename internal callers.
        assert rng._stable_hash is stable_hash
