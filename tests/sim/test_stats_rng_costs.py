"""Unit tests for stats, RNG streams, and the cost model."""

import pytest

from repro.sim.costs import CostModel
from repro.sim.rng import RngStreams
from repro.sim.stats import Counter, Histogram, StatsRegistry, ThroughputMeter


class TestCounter:
    def test_inc_default(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert int(c) == 5

    def test_registry_reuses(self):
        reg = StatsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_registry_snapshot(self):
        reg = StatsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        assert reg.counters() == {"a": 1, "b": 2}

    def test_merge_counters(self):
        reg = StatsRegistry()
        reg.counter("x").inc(3)
        reg.counter("y").inc(4)
        assert reg.merge_counters(["x", "y", "missing"]) == 7


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("lat")
        assert h.summary()["count"] == 0
        assert h.mean() == 0.0
        assert h.percentile(99) == 0.0

    def test_basic_stats(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["max"] == 100.0

    def test_sample_cap_drops_but_counts(self):
        h = Histogram("lat", max_samples=10)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert len(h._samples) == 10


class TestThroughputMeter:
    def test_ops_per_second(self):
        m = ThroughputMeter("create")
        m.start(now=0.0)
        m.record(500)
        m.stop(now=2.0)
        assert m.ops_per_second() == 250.0

    def test_unstarted_meter_is_zero(self):
        assert ThroughputMeter("x").ops_per_second() == 0.0

    def test_not_stopped_raises(self):
        m = ThroughputMeter("x")
        m.start(0.0)
        with pytest.raises(RuntimeError):
            _ = m.elapsed

    def test_restart_resets(self):
        m = ThroughputMeter("x")
        m.start(0.0)
        m.record(10)
        m.stop(1.0)
        m.start(5.0)
        m.record(1)
        m.stop(6.0)
        assert m.ops_per_second() == 1.0


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        rng = RngStreams(seed=1)
        assert rng.stream("a") is rng.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(seed=7).stream("workload").integers(0, 1000, size=10)
        b = RngStreams(seed=7).stream("workload").integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_streams_independent_of_creation_order(self):
        r1 = RngStreams(seed=7)
        r1.stream("first")
        x1 = r1.stream("target").integers(0, 1 << 30)
        r2 = RngStreams(seed=7)
        x2 = r2.stream("target").integers(0, 1 << 30)
        assert x1 == x2

    def test_different_names_differ(self):
        rng = RngStreams(seed=7)
        a = rng.stream("a").integers(0, 1 << 30, size=8)
        b = rng.stream("b").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").integers(0, 1 << 30, size=8)
        b = RngStreams(seed=2).stream("x").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    def test_child_namespace_reproducible(self):
        a = RngStreams(seed=3).child("app1").stream("ops").integers(0, 99, 5)
        b = RngStreams(seed=3).child("app1").stream("ops").integers(0, 99, 5)
        assert list(a) == list(b)


class TestCostModel:
    def test_zero_preset_nulls_floats_only(self):
        z = CostModel.zero()
        assert z.net_latency == 0.0
        assert z.mds_op_service == 0.0
        assert z.mds_workers == CostModel().mds_workers

    def test_with_overrides_is_copy(self):
        base = CostModel()
        tweaked = base.with_overrides(mds_op_service=1.0)
        assert tweaked.mds_op_service == 1.0
        assert base.mds_op_service != 1.0

    def test_slow_network_scales(self):
        slow = CostModel.slow_network(factor=10)
        assert slow.net_latency == pytest.approx(CostModel().net_latency * 10)

    def test_transfer_time(self):
        c = CostModel()
        assert c.transfer_time(int(c.net_bandwidth)) == pytest.approx(1.0)

    def test_disk_transfer_time(self):
        c = CostModel()
        assert c.disk_transfer_time(int(c.disk_bandwidth)) == pytest.approx(1.0)
