"""Unit tests for the pub/sub message queue substrate."""

import pytest

from repro.mq import MessageQueue, QueueClosed, QueueGroup
from repro.sim.core import Environment, run_sync


@pytest.fixture
def env():
    return Environment()


class TestMessageQueue:
    def test_publish_then_get(self, env):
        q = MessageQueue(env, "q")
        q.publish({"op": "create"})

        def sub():
            msg = yield q.get()
            return msg

        assert run_sync(env, sub()) == {"op": "create"}

    def test_fifo_order(self, env):
        q = MessageQueue(env, "q")
        for i in range(5):
            q.publish(i)
        out = []

        def sub():
            for _ in range(5):
                out.append((yield q.get()))

        env.process(sub())
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_get_blocks_until_publish(self, env):
        q = MessageQueue(env, "q")
        got = []

        def sub():
            msg = yield q.get()
            got.append((msg, env.now))

        def pub():
            yield env.timeout(2.0)
            q.publish("late")

        env.process(sub())
        env.process(pub())
        env.run()
        assert got == [("late", 2.0)]

    def test_close_fails_blocked_getter(self, env):
        q = MessageQueue(env, "q")

        def sub():
            try:
                yield q.get()
            except QueueClosed:
                return "closed"

        def closer():
            yield env.timeout(1.0)
            q.close()

        p = env.process(sub())
        env.process(closer())
        assert env.run(until=p) == "closed"

    def test_buffered_messages_readable_after_close(self, env):
        q = MessageQueue(env, "q")
        q.publish("a")
        q.close()

        def sub():
            first = yield q.get()
            try:
                yield q.get()
            except QueueClosed:
                return (first, "closed")

        assert run_sync(env, sub()) == ("a", "closed")

    def test_publish_after_close_rejected(self, env):
        q = MessageQueue(env, "q")
        q.close()
        with pytest.raises(QueueClosed):
            q.publish("x")

    def test_double_close_is_noop(self, env):
        q = MessageQueue(env, "q")
        q.close()
        q.close()
        assert q.closed

    def test_counters_and_backlog(self, env):
        q = MessageQueue(env, "q")
        q.publish("a")
        q.publish("b")
        assert q.published == 2
        assert q.backlog() == ["a", "b"]

        def sub():
            yield q.get()

        run_sync(env, sub())
        assert q.delivered == 1
        assert len(q) == 1


class TestBatchDrain:
    def test_get_batch_drains_up_to_max(self, env):
        q = MessageQueue(env, "q")
        for i in range(5):
            q.publish(i)
        assert q.get_batch(3) == [0, 1, 2]
        assert q.get_batch(10) == [3, 4]
        assert q.get_batch(10) == []
        assert q.delivered == 5

    def test_get_batch_zero_or_negative(self, env):
        q = MessageQueue(env, "q")
        q.publish("x")
        assert q.get_batch(0) == []
        assert q.get_batch(-1) == []
        assert len(q) == 1

    def test_get_then_get_batch_preserves_fifo(self, env):
        q = MessageQueue(env, "q")
        for i in range(4):
            q.publish(i)

        def sub():
            first = yield q.get()
            return [first] + q.get_batch(10)

        assert run_sync(env, sub()) == [0, 1, 2, 3]

    def test_peek_head_is_nondestructive(self, env):
        q = MessageQueue(env, "q")
        assert q.peek_head() is None
        q.publish("a")
        q.publish("b")
        assert q.peek_head() == "a"
        assert q.peek_head() == "a"
        assert len(q) == 2


class TestQueueGroup:
    def test_route_to_node_queue(self, env):
        group = QueueGroup(env, "region")
        qa = group.add_node("nodeA")
        group.add_node("nodeB")
        assert group.route("nodeA") is qa

    def test_duplicate_node_rejected(self, env):
        group = QueueGroup(env, "region")
        group.add_node("n")
        with pytest.raises(ValueError):
            group.add_node("n")

    def test_unknown_node_rejected(self, env):
        group = QueueGroup(env, "region")
        with pytest.raises(KeyError):
            group.route("ghost")

    def test_broadcast_reaches_all(self, env):
        group = QueueGroup(env, "region")
        queues = [group.add_node(f"n{i}") for i in range(3)]
        count = group.broadcast({"type": "barrier"})
        assert count == 3
        assert all(len(q) == 1 for q in queues)

    def test_broadcast_into_partially_closed_group_is_atomic(self, env):
        """All-or-nothing: one closed queue means *no* queue gets the
        message (a partial barrier broadcast would strand the rendezvous
        forever)."""
        group = QueueGroup(env, "region")
        qa = group.add_node("a")
        qb = group.add_node("b")
        qc = group.add_node("c")
        qb.close()
        with pytest.raises(QueueClosed):
            group.broadcast({"type": "barrier"})
        assert len(qa) == 0 and len(qc) == 0
        assert qa.published == 0 and qc.published == 0

    def test_close_all(self, env):
        group = QueueGroup(env, "region")
        group.add_node("a")
        group.add_node("b")
        group.close_all()
        assert all(q.closed for q in group.queues())

    def test_total_backlog(self, env):
        group = QueueGroup(env, "region")
        group.add_node("a")
        group.add_node("b")
        group.route("a").publish(1)
        group.broadcast(2)
        assert group.total_backlog() == 3

    def test_len(self, env):
        group = QueueGroup(env, "region")
        group.add_node("a")
        assert len(group) == 1
