"""Integration tests: DFS client against a BeeGFS-like deployment."""

import pytest

from repro.dfs import BeeGFS, FileExists, FileNotFound, PermissionDenied
from repro.sim.core import run_sync
from repro.sim.network import Cluster


@pytest.fixture
def world():
    cluster = Cluster()
    fs = BeeGFS(cluster, n_mds=1, n_data=3)
    node = cluster.add_node("client0")
    client = fs.client(node, uid=1000, gid=1000)
    return cluster, fs, client


def run(cluster, gen):
    return run_sync(cluster.env, gen)


class TestMetadataOps:
    def test_mkdir_create_getattr(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            inode = yield from client.getattr("/w/f")
            return inode

        inode = run(cluster, scenario())
        assert inode.is_file
        assert inode.uid == 1000

    def test_create_missing_parent_enoent(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.create("/no/such/f")

        with pytest.raises(FileNotFound):
            run(cluster, scenario())

    def test_duplicate_create_eexist(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.create("/w/f")

        with pytest.raises(FileExists):
            run(cluster, scenario())

    def test_unlink_and_exists(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.unlink("/w/f")
            return (yield from client.exists("/w/f"))

        assert run(cluster, scenario()) is False

    def test_readdir(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            for name in ["b", "a"]:
                yield from client.create(f"/w/{name}")
            return (yield from client.readdir("/w"))

        assert run(cluster, scenario()) == ["a", "b"]

    def test_rmdir_recursive(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.mkdir("/w/d")
            yield from client.create("/w/d/f")
            removed = yield from client.rmdir("/w/d", recursive=True)
            return removed

        assert run(cluster, scenario()) == 2

    def test_rename(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/old")
            yield from client.rename("/w/old", "/w/new")
            return (yield from client.exists("/w/new"))

        assert run(cluster, scenario()) is True

    def test_permission_enforced_through_rpc(self, world):
        cluster, fs, client = world
        fs.namespace.mkdir("/private", mode=0o700, uid=1, gid=1)

        def scenario():
            yield from client.create("/private/f")

        with pytest.raises(PermissionDenied):
            run(cluster, scenario())


class TestTraversalCost:
    def test_lookup_rpcs_scale_with_depth(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/a")
        fs.mkdir_sync("/a/b")
        fs.mkdir_sync("/a/b/c")
        fs.namespace.create("/a/b/c/f", uid=1000, gid=1000)

        def scenario():
            yield from client.getattr("/a/b/c/f")

        run(cluster, scenario())
        assert client.lookup_rpcs == 3  # a, b, c; leaf via getattr RPC

    def test_deeper_paths_cost_more_time(self):
        def stat_time(depth):
            cluster = Cluster()
            fs = BeeGFS(cluster)
            node = cluster.add_node("client")
            client = fs.client(node)
            path = ""
            for i in range(depth):
                path += f"/d{i}"
                fs.mkdir_sync(path)
            fs.namespace.create(path + "/leaf", uid=1000, gid=1000)

            def scenario():
                t0 = cluster.env.now
                yield from client.getattr(path + "/leaf")
                return cluster.env.now - t0

            return run_sync(cluster.env, scenario())

        assert stat_time(6) > stat_time(3) * 1.4

    def test_mds_serves_all_metadata(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")

        run(cluster, scenario())
        assert fs.mds_servers[0].requests_served == client.rpcs_sent


class TestDataPath:
    def test_write_updates_size(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.write("/w/f", 0, 1_000_000)
            inode = yield from client.getattr("/w/f")
            return inode.size

        assert run(cluster, scenario()) == 1_000_000

    def test_write_within_size_no_shrink(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.write("/w/f", 0, 1000)
            yield from client.write("/w/f", 0, 10)
            inode = yield from client.getattr("/w/f")
            return inode.size

        assert run(cluster, scenario()) == 1000

    def test_read_back_written_bytes(self, world):
        cluster, fs, client = world

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.write("/w/f", 0, 2_000_000)
            return (yield from client.read("/w/f", 0, 2_000_000))

        assert run(cluster, scenario()) == 2_000_000

    def test_striping_spreads_over_data_servers(self, world):
        cluster, fs, client = world
        size = 4 * 1024 * 1024  # 8 chunks at 512 KiB

        def scenario():
            yield from client.mkdir("/w")
            yield from client.create("/w/f")
            yield from client.write("/w/f", 0, size)

        run(cluster, scenario())
        written = [ds.bytes_written for ds in fs.data_servers]
        assert all(w > 0 for w in written)
        assert sum(written) == size


class TestMultiMDS:
    def test_directories_shard_across_mds(self):
        cluster = Cluster()
        fs = BeeGFS(cluster, n_mds=4)
        owners = {fs.mds_for(f"/dir{i}").name for i in range(40)}
        assert len(owners) > 1

    def test_single_mds_always_same(self):
        cluster = Cluster()
        fs = BeeGFS(cluster, n_mds=1)
        assert fs.mds_for("/a") is fs.mds_for("/zzz")

    def test_multi_mds_serves_correctly(self):
        cluster = Cluster()
        fs = BeeGFS(cluster, n_mds=3)
        node = cluster.add_node("client")
        client = fs.client(node)

        def scenario():
            for i in range(6):
                yield from client.mkdir(f"/d{i}")
                yield from client.create(f"/d{i}/f")
            found = []
            for i in range(6):
                found.append((yield from client.exists(f"/d{i}/f")))
            return found

        assert all(run_sync(cluster.env, scenario()))

    def test_deployment_validation(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            BeeGFS(cluster, n_mds=0)
