"""Additional DFS client coverage: rename costs, data-path edges,
service accounting."""

import pytest

from repro.dfs import BeeGFS, FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


@pytest.fixture
def world():
    cluster = Cluster(seed=19)
    fs = BeeGFS(cluster, n_mds=1, n_data=3)
    node = cluster.add_node("client")
    return cluster, fs, fs.client(node)


class TestRenamePath:
    def test_rename_pays_both_traversals(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/a")
        fs.mkdir_sync("/a/deep")
        fs.mkdir_sync("/b")
        fs.namespace.create("/a/deep/f", uid=1000, gid=1000)

        def go():
            before = client.lookup_rpcs
            yield from client.rename("/a/deep/f", "/b/f")
            return client.lookup_rpcs - before

        lookups = run_sync(cluster.env, go())
        # ancestors of dst (/b) + ancestors of src (/a, /a/deep)
        assert lookups == 3

    def test_rm_alias(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")
        fs.namespace.create("/d/f", uid=1000, gid=1000)

        def go():
            yield from client.rm("/d/f")

        run_sync(cluster.env, go())
        assert not fs.namespace.exists("/d/f")


class TestDataEdges:
    def test_zero_byte_write(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            yield from client.create("/d/f")
            n = yield from client.write("/d/f", 0, 0)
            return n

        assert run_sync(cluster.env, go()) == 0

    def test_read_past_eof_returns_valid_bytes_only(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            yield from client.create("/d/f")
            yield from client.write("/d/f", 0, 1000)
            got = yield from client.read("/d/f", 500, 10_000)
            return got

        assert run_sync(cluster.env, go()) == 500

    def test_write_at_offset_extends(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            yield from client.create("/d/f")
            yield from client.write("/d/f", 1_000_000, 100)
            inode = yield from client.getattr("/d/f")
            return inode.size

        assert run_sync(cluster.env, go()) == 1_000_100

    def test_data_server_byte_accounting(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            yield from client.create("/d/f")
            yield from client.write("/d/f", 0, 3_000_000)

        run_sync(cluster.env, go())
        assert sum(ds.bytes_written for ds in fs.data_servers) == 3_000_000


class TestServiceAccounting:
    def test_requests_by_method_breakdown(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            yield from client.create("/d/a")
            yield from client.create("/d/b")
            yield from client.getattr("/d/a")
            yield from client.readdir("/d")

        run_sync(cluster.env, go())
        by = fs.mds_servers[0].requests_by_method
        assert by["create"] == 2
        assert by["getattr"] == 1
        assert by["readdir"] == 1
        # one per op that has /d as a non-final component (creates +
        # getattr); readdir("/d") resolves /d via its own RPC
        assert by["lookup"] == 3

    def test_worker_utilization_reported(self, world):
        cluster, fs, client = world
        fs.mkdir_sync("/d")

        def go():
            for i in range(10):
                yield from client.create(f"/d/f{i}")

        run_sync(cluster.env, go())
        assert 0 < fs.mds_servers[0].workers.utilization() <= 1
