"""Unit tests for striping math and the data-server actor."""

import pytest

from repro.dfs.storage import DataServer, stripe_ranges
from repro.sim.core import run_sync
from repro.sim.network import Cluster


class TestStripeRanges:
    def test_single_chunk(self):
        assert stripe_ranges(0, 100, 512) == [(0, 0, 100)]

    def test_exact_chunk(self):
        assert stripe_ranges(0, 512, 512) == [(0, 0, 512)]

    def test_spans_chunks(self):
        assert stripe_ranges(0, 1200, 512) == [
            (0, 0, 512), (1, 0, 512), (2, 0, 176)]

    def test_offset_within_chunk(self):
        assert stripe_ranges(500, 100, 512) == [(0, 500, 12), (1, 0, 88)]

    def test_zero_length(self):
        assert stripe_ranges(64, 0, 512) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            stripe_ranges(0, -1, 512)

    def test_sizes_sum_to_length(self):
        ranges = stripe_ranges(777, 123456, 4096)
        assert sum(size for _, _, size in ranges) == 123456


class TestDataServer:
    @pytest.fixture
    def setup(self):
        cluster = Cluster()
        server_node = cluster.add_node("ds")
        client_node = cluster.add_node("client")
        server = DataServer(cluster, server_node)
        return cluster, server, client_node

    def test_write_then_read(self, setup):
        cluster, server, client = setup

        def proc():
            yield from server.request(client, "write_chunk", 5, 0, 0, 1024)
            got = yield from server.request(client, "read_chunk", 5, 0, 0,
                                            1024)
            return got

        assert run_sync(cluster.env, proc()) == 1024
        assert server.stored_bytes(5) == 1024

    def test_read_unwritten_returns_zero(self, setup):
        cluster, server, client = setup

        def proc():
            got = yield from server.request(client, "read_chunk", 9, 0, 0,
                                            512)
            return got

        assert run_sync(cluster.env, proc()) == 0

    def test_partial_validity(self, setup):
        cluster, server, client = setup

        def proc():
            yield from server.request(client, "write_chunk", 5, 0, 0, 100)
            got = yield from server.request(client, "read_chunk", 5, 0, 0,
                                            500)
            return got

        assert run_sync(cluster.env, proc()) == 100

    def test_truncate_clears_chunks(self, setup):
        cluster, server, client = setup

        def proc():
            yield from server.request(client, "write_chunk", 5, 0, 0, 100)
            yield from server.request(client, "write_chunk", 5, 1, 0, 100)
            dropped = yield from server.request(client, "truncate", 5)
            return dropped

        assert run_sync(cluster.env, proc()) == 2
        assert server.stored_bytes(5) == 0

    def test_io_charges_disk_time(self, setup):
        cluster, server, client = setup
        size = 4 * 1024 * 1024

        def proc():
            yield from server.request(client, "write_chunk", 5, 0, 0, size)
            return cluster.env.now

        elapsed = run_sync(cluster.env, proc())
        assert elapsed >= cluster.costs.disk_seek + \
            cluster.costs.disk_transfer_time(size)

    def test_byte_counters(self, setup):
        cluster, server, client = setup

        def proc():
            yield from server.request(client, "write_chunk", 1, 0, 0, 300)
            yield from server.request(client, "read_chunk", 1, 0, 0, 300)

        run_sync(cluster.env, proc())
        assert server.bytes_written == 300
        assert server.bytes_read == 300
