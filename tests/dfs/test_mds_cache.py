"""Tests for the MDS inode/dentry LRU cache (Figs. 2/9 superlinearity)."""

import pytest

from repro.dfs.beegfs import BeeGFS
from repro.sim.core import run_sync
from repro.sim.costs import CostModel
from repro.sim.network import Cluster


def make(cache_entries=4, miss_cost=100e-6):
    costs = CostModel().with_overrides(
        mds_inode_cache_entries=cache_entries,
        mds_inode_cache_miss=miss_cost)
    cluster = Cluster(costs=costs)
    fs = BeeGFS(cluster)
    node = cluster.add_node("client")
    client = fs.client(node)
    return cluster, fs, client


class TestInodeCache:
    def test_repeat_lookup_hits(self):
        cluster, fs, client = make()
        fs.mkdir_sync("/d")
        fs.namespace.create("/d/f", uid=1000, gid=1000)

        def twice():
            yield from client.getattr("/d/f")
            t0 = cluster.env.now
            yield from client.getattr("/d/f")
            return cluster.env.now - t0

        warm = run_sync(cluster.env, twice())
        mds = fs.mds_servers[0]
        assert mds.inode_cache_hits > 0
        # Warm access pays no miss penalty.
        assert warm < 2 * (cluster.costs.mds_lookup_service +
                           cluster.costs.mds_read_service) + 300e-6

    def test_eviction_under_pressure(self):
        cluster, fs, client = make(cache_entries=4)
        for i in range(10):
            fs.mkdir_sync(f"/d{i}")

        def sweep():
            for i in range(10):
                yield from client.getattr(f"/d{i}")
            # Second sweep: the LRU (capacity 4) evicted the early ones.
            for i in range(10):
                yield from client.getattr(f"/d{i}")

        run_sync(cluster.env, sweep())
        mds = fs.mds_servers[0]
        assert mds.inode_cache_misses > 10  # second sweep missed too

    def test_miss_penalty_visible_in_time(self):
        def sweep_time(cache_entries):
            cluster, fs, client = make(cache_entries=cache_entries,
                                       miss_cost=500e-6)
            for i in range(8):
                fs.mkdir_sync(f"/d{i}")

            def sweep():
                for _ in range(3):
                    for i in range(8):
                        yield from client.getattr(f"/d{i}")
                return cluster.env.now

            return run_sync(cluster.env, sweep())

        assert sweep_time(cache_entries=2) > sweep_time(cache_entries=100)

    def test_cache_disabled(self):
        cluster, fs, client = make(cache_entries=0)
        fs.mkdir_sync("/d")

        def go():
            yield from client.getattr("/d")

        run_sync(cluster.env, go())
        mds = fs.mds_servers[0]
        assert mds.inode_cache_hits == 0
        assert mds.inode_cache_misses == 0
