"""Unit tests for the hierarchical namespace."""

import pytest

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.dfs.namespace import (
    Namespace,
    basename,
    is_within,
    normalize_path,
    parent_of,
    split_path,
)


@pytest.fixture
def ns():
    return Namespace()


class TestPathHelpers:
    def test_normalize_collapses_slashes(self):
        assert normalize_path("//a///b/") == "/a/b"

    def test_normalize_root(self):
        assert normalize_path("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(InvalidPath):
            normalize_path("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidPath):
            normalize_path("")

    def test_dot_segments_rejected(self):
        with pytest.raises(InvalidPath):
            normalize_path("/a/../b")
        with pytest.raises(InvalidPath):
            normalize_path("/a/./b")

    def test_nul_rejected(self):
        with pytest.raises(InvalidPath):
            normalize_path("/a\x00b")

    def test_split_path(self):
        assert split_path("/") == []
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_parent_and_basename(self):
        assert parent_of("/a/b/c") == "/a/b"
        assert parent_of("/a") == "/"
        assert basename("/a/b") == "b"

    def test_parent_of_root_rejected(self):
        with pytest.raises(InvalidPath):
            parent_of("/")

    def test_is_within(self):
        assert is_within("/a/b", "/a")
        assert is_within("/a", "/a")
        assert is_within("/anything", "/")
        assert not is_within("/ab", "/a")
        assert not is_within("/a", "/a/b")


class TestMkdirCreate:
    def test_mkdir_and_getattr(self, ns):
        ns.mkdir("/work", mode=0o750, uid=7, gid=8, now=2.0)
        inode = ns.getattr("/work")
        assert inode.is_dir
        assert (inode.mode, inode.uid, inode.gid) == (0o750, 7, 8)
        assert inode.ctime == 2.0

    def test_nested_mkdir_requires_parent(self, ns):
        with pytest.raises(FileNotFound):
            ns.mkdir("/a/b")

    def test_mkdir_duplicate_rejected(self, ns):
        ns.mkdir("/a")
        with pytest.raises(FileExists):
            ns.mkdir("/a")

    def test_mkdir_on_root_rejected(self, ns):
        with pytest.raises(InvalidPath):
            ns.mkdir("/")

    def test_create_file(self, ns):
        ns.mkdir("/d", mode=0o777)
        inode = ns.create("/d/f", mode=0o644, uid=1, gid=1)
        assert inode.is_file
        assert ns.getattr("/d/f").ino == inode.ino

    def test_create_under_file_rejected(self, ns):
        ns.mkdir("/d")
        ns.create("/d/f")
        with pytest.raises(NotADirectory):
            ns.create("/d/f/x")

    def test_create_duplicate_rejected(self, ns):
        ns.mkdir("/d")
        ns.create("/d/f")
        with pytest.raises(FileExists):
            ns.create("/d/f")

    def test_inos_unique_and_increasing(self, ns):
        a = ns.mkdir("/a")
        b = ns.create("/b")
        assert b.ino > a.ino

    def test_mkdir_updates_parent_mtime(self, ns):
        ns.mkdir("/d", now=1.0)
        ns.mkdir("/d/sub", now=5.0)
        assert ns.getattr("/d").mtime == 5.0


class TestRemove:
    def test_unlink_file(self, ns):
        ns.mkdir("/d")
        ns.create("/d/f")
        ns.unlink("/d/f")
        assert not ns.exists("/d/f")

    def test_unlink_missing(self, ns):
        ns.mkdir("/d")
        with pytest.raises(FileNotFound):
            ns.unlink("/d/f")

    def test_unlink_directory_rejected(self, ns):
        ns.mkdir("/d")
        with pytest.raises(IsADirectory):
            ns.unlink("/d")

    def test_rmdir_empty(self, ns):
        ns.mkdir("/d")
        assert ns.rmdir("/d") == 1
        assert not ns.exists("/d")

    def test_rmdir_nonempty_rejected(self, ns):
        ns.mkdir("/d")
        ns.create("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            ns.rmdir("/d")

    def test_rmdir_recursive_counts_subtree(self, ns):
        ns.mkdir("/d")
        ns.mkdir("/d/s")
        ns.create("/d/s/f1")
        ns.create("/d/f2")
        assert ns.rmdir("/d", recursive=True) == 4
        assert ns.count_entries() == 0

    def test_rmdir_on_file_rejected(self, ns):
        ns.create("/f")
        with pytest.raises(NotADirectory):
            ns.rmdir("/f")


class TestReaddirWalk:
    def test_readdir_sorted(self, ns):
        ns.mkdir("/d")
        for name in ["c", "a", "b"]:
            ns.create(f"/d/{name}")
        assert ns.readdir("/d") == ["a", "b", "c"]

    def test_readdir_file_rejected(self, ns):
        ns.create("/f")
        with pytest.raises(NotADirectory):
            ns.readdir("/f")

    def test_walk_inclusive_dfs(self, ns):
        ns.mkdir("/a")
        ns.mkdir("/a/b")
        ns.create("/a/b/f")
        paths = [p for p, _ in ns.walk("/a")]
        assert paths == ["/a", "/a/b", "/a/b/f"]

    def test_walk_from_root(self, ns):
        ns.mkdir("/a")
        paths = [p for p, _ in ns.walk("/")]
        assert paths == ["/", "/a"]

    def test_count_entries(self, ns):
        ns.mkdir("/a")
        ns.create("/a/f")
        assert ns.count_entries() == 2


class TestPermissions:
    def test_traversal_needs_execute(self, ns):
        ns.mkdir("/locked", mode=0o600, uid=1, gid=1)
        ns.create("/locked/f", uid=1, gid=1, check_perms=False)
        with pytest.raises(PermissionDenied):
            ns.getattr("/locked/f", uid=2, gid=2)

    def test_owner_can_traverse(self, ns):
        ns.mkdir("/mine", mode=0o700, uid=1, gid=1)
        ns.create("/mine/f", uid=1, gid=1)
        assert ns.getattr("/mine/f", uid=1, gid=1).is_file

    def test_create_needs_parent_write(self, ns):
        ns.mkdir("/ro", mode=0o755, uid=1, gid=1)
        with pytest.raises(PermissionDenied):
            ns.create("/ro/f", uid=2, gid=2)

    def test_unlink_needs_parent_write(self, ns):
        ns.mkdir("/ro", mode=0o755, uid=1, gid=1)
        ns.create("/ro/f", uid=1, gid=1)
        with pytest.raises(PermissionDenied):
            ns.unlink("/ro/f", uid=2, gid=2)

    def test_readdir_needs_read(self, ns):
        ns.mkdir("/wx", mode=0o300, uid=1, gid=1)
        with pytest.raises(PermissionDenied):
            ns.readdir("/wx", uid=1, gid=1)

    def test_check_perms_off_bypasses(self, ns):
        ns.mkdir("/locked", mode=0o000, uid=1, gid=1)
        ns.create("/locked/f", uid=2, gid=2, check_perms=False)
        assert ns.exists("/locked/f")

    def test_setattr_owner_only(self, ns):
        ns.create("/f", uid=1, gid=1)
        with pytest.raises(PermissionDenied):
            ns.setattr("/f", uid=2, gid=2, mode=0o777)
        ns.setattr("/f", uid=1, gid=1, mode=0o600)
        assert ns.getattr("/f").mode == 0o600


class TestSetattrRename:
    def test_setattr_size(self, ns):
        ns.create("/f")
        ns.setattr("/f", size=4096)
        assert ns.getattr("/f").size == 4096

    def test_setattr_size_on_dir_rejected(self, ns):
        ns.mkdir("/d")
        with pytest.raises(IsADirectory):
            ns.setattr("/d", size=1)

    def test_setattr_chown(self, ns):
        ns.create("/f")
        ns.setattr("/f", new_uid=42, new_gid=43)
        inode = ns.getattr("/f")
        assert (inode.uid, inode.gid) == (42, 43)

    def test_rename_moves_subtree(self, ns):
        ns.mkdir("/a")
        ns.mkdir("/a/sub")
        ns.create("/a/sub/f")
        ns.mkdir("/b")
        ns.rename("/a/sub", "/b/moved")
        assert ns.exists("/b/moved/f")
        assert not ns.exists("/a/sub")

    def test_rename_into_self_rejected(self, ns):
        ns.mkdir("/a")
        with pytest.raises(InvalidPath):
            ns.rename("/a", "/a/b")

    def test_rename_onto_existing_rejected(self, ns):
        ns.create("/a")
        ns.create("/b")
        with pytest.raises(FileExists):
            ns.rename("/a", "/b")

    def test_rename_missing_source(self, ns):
        with pytest.raises(FileNotFound):
            ns.rename("/ghost", "/x")


class TestSubtreeCheckpoint:
    def build(self, ns):
        ns.mkdir("/ws", mode=0o770, uid=9, gid=9)
        ns.mkdir("/ws/sub", uid=9, gid=9)
        ns.create("/ws/sub/f1", uid=9, gid=9)
        ns.create("/ws/f2", uid=9, gid=9)

    def test_export_contains_whole_subtree(self, ns):
        self.build(ns)
        snap = ns.export_subtree("/ws")
        assert snap["path"] == "/ws"
        assert set(snap["tree"]["children"]) == {"sub", "f2"}
        assert "f1" in snap["tree"]["children"]["sub"]["children"]

    def test_export_file_rejected(self, ns):
        ns.create("/f")
        with pytest.raises(NotADirectory):
            ns.export_subtree("/f")

    def test_restore_rolls_back_new_entries(self, ns):
        self.build(ns)
        snap = ns.export_subtree("/ws")
        ns.create("/ws/after", uid=9, gid=9)
        ns.unlink("/ws/f2", uid=9, gid=9)
        restored = ns.restore_subtree(snap)
        assert restored == 3
        assert ns.exists("/ws/f2")
        assert not ns.exists("/ws/after")
        assert ns.exists("/ws/sub/f1")

    def test_restore_preserves_attrs(self, ns):
        self.build(ns)
        ns.setattr("/ws/f2", uid=9, mode=0o640)
        snap = ns.export_subtree("/ws")
        ns.restore_subtree(snap)
        assert ns.getattr("/ws/f2").mode == 0o640

    def test_restore_does_not_touch_outside(self, ns):
        self.build(ns)
        ns.mkdir("/other")
        snap = ns.export_subtree("/ws")
        ns.create("/other/x")
        ns.restore_subtree(snap)
        assert ns.exists("/other/x")
