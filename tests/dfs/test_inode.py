"""Unit tests for inodes and mode-bit permission evaluation."""

import pytest

from repro.dfs.inode import AccessMode, FileType, Inode, check_mode_bits


class TestCheckModeBits:
    def test_owner_uses_owner_bits(self):
        # 0o700: owner rwx, nobody else anything
        assert check_mode_bits(0o700, 5, 5, 5, 5, AccessMode.READ)
        assert not check_mode_bits(0o700, 6, 5, 5, 5, AccessMode.READ)

    def test_group_uses_group_bits(self):
        assert check_mode_bits(0o070, 6, 5, 5, 5, AccessMode.WRITE)
        assert not check_mode_bits(0o070, 6, 7, 5, 5, AccessMode.WRITE)

    def test_other_uses_other_bits(self):
        assert check_mode_bits(0o007, 6, 7, 5, 5, AccessMode.EXECUTE)
        assert not check_mode_bits(0o006, 6, 7, 5, 5, AccessMode.EXECUTE)

    def test_owner_match_shadows_more_permissive_other(self):
        # POSIX quirk: owner class applies even if its bits are weaker.
        assert not check_mode_bits(0o077, 5, 5, 5, 5, AccessMode.READ)

    def test_root_passes_everything(self):
        assert check_mode_bits(0o000, 0, 0, 5, 5,
                               AccessMode.READ | AccessMode.WRITE)

    def test_combined_access_needs_all_bits(self):
        want = AccessMode.READ | AccessMode.WRITE
        assert check_mode_bits(0o600, 5, 5, 5, 5, want)
        assert not check_mode_bits(0o400, 5, 5, 5, 5, want)


class TestInode:
    def test_type_predicates(self):
        d = Inode(1, FileType.DIRECTORY)
        f = Inode(2, FileType.FILE)
        assert d.is_dir and not d.is_file
        assert f.is_file and not f.is_dir

    def test_permits_delegates_to_mode_bits(self):
        inode = Inode(1, FileType.FILE, mode=0o640, uid=5, gid=9)
        assert inode.permits(5, 0, AccessMode.WRITE)
        assert inode.permits(6, 9, AccessMode.READ)
        assert not inode.permits(6, 9, AccessMode.WRITE)
        assert not inode.permits(7, 8, AccessMode.READ)

    def test_record_round_trip(self):
        inode = Inode(7, FileType.FILE, mode=0o600, uid=3, gid=4, size=100,
                      ctime=1.5, mtime=2.5, inline_data=b"xyz")
        back = Inode.from_record(inode.to_record())
        assert back == inode

    def test_copy_is_independent(self):
        inode = Inode(1, FileType.FILE, size=10)
        dup = inode.copy()
        dup.size = 99
        assert inode.size == 10

    def test_from_record_defaults_nlink(self):
        rec = Inode(1, FileType.FILE).to_record()
        del rec["nlink"]
        assert Inode.from_record(rec).nlink == 1
