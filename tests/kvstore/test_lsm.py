"""Unit tests for the LSM tree (LevelDB-equivalent)."""

import pytest

from repro.kvstore.lsm import LSMTree


@pytest.fixture
def lsm():
    return LSMTree(memtable_limit=8, l0_limit=2)


class TestBasicReadWrite:
    def test_get_missing(self, lsm):
        r = lsm.get("/nope")
        assert not r.found
        assert r.value is None

    def test_put_then_get_from_memtable(self, lsm):
        lsm.put("/a", {"ino": 1})
        r = lsm.get("/a")
        assert r.found and r.memtable_hit
        assert r.value == {"ino": 1}
        assert r.tables_probed == 0

    def test_overwrite_latest_wins(self, lsm):
        lsm.put("/a", 1)
        lsm.put("/a", 2)
        assert lsm.get("/a").value == 2

    def test_delete_hides_key(self, lsm):
        lsm.put("/a", 1)
        lsm.delete("/a")
        assert not lsm.get("/a").found

    def test_delete_across_flush(self, lsm):
        lsm.put("/a", 1)
        lsm.flush()
        lsm.delete("/a")
        lsm.flush()
        assert not lsm.get("/a").found

    def test_memtable_limit_validation(self):
        with pytest.raises(ValueError):
            LSMTree(memtable_limit=0)


class TestFlushAndCompaction:
    def test_auto_flush_at_limit(self):
        lsm = LSMTree(memtable_limit=4, l0_limit=10)
        for i in range(4):
            lsm.put(f"/k{i}", i)
        assert lsm.flushes == 1
        assert lsm.memtable_size == 0
        assert lsm.l0_tables == 1

    def test_flush_truncates_wal(self, lsm):
        lsm.put("/a", 1)
        lsm.flush()
        assert len(lsm.wal) == 0

    def test_reads_after_flush(self):
        lsm = LSMTree(memtable_limit=4, l0_limit=10)
        for i in range(12):
            lsm.put(f"/k{i}", i)
        for i in range(12):
            r = lsm.get(f"/k{i}")
            assert r.found and r.value == i

    def test_compaction_triggered_past_l0_limit(self):
        lsm = LSMTree(memtable_limit=2, l0_limit=2)
        for i in range(12):
            lsm.put(f"/k{i}", i)
        assert lsm.compactions >= 1
        assert lsm.l0_tables <= 2

    def test_compaction_preserves_all_live_data(self):
        lsm = LSMTree(memtable_limit=3, l0_limit=1)
        expected = {}
        for i in range(40):
            key = f"/k{i % 10}"
            lsm.put(key, i)
            expected[key] = i
        for key, value in expected.items():
            assert lsm.get(key).value == value

    def test_compaction_drops_tombstones(self):
        lsm = LSMTree(memtable_limit=2, l0_limit=0)
        lsm.put("/a", 1)
        lsm.put("/b", 2)  # flush + compact
        lsm.delete("/a")
        lsm.put("/c", 3)  # flush + compact: tombstone erased at bottom
        assert not lsm.get("/a").found
        assert lsm.l1_entries == 2  # /b and /c only

    def test_manual_flush_empty_is_noop(self, lsm):
        assert lsm.flush() == 0
        assert lsm.flushes == 0


class TestReadReceipts:
    def test_memtable_hit_receipt(self, lsm):
        lsm.put("/a", 1)
        r = lsm.get("/a")
        assert r.memtable_hit and r.bloom_checks == 0

    def test_table_probe_counted(self):
        lsm = LSMTree(memtable_limit=2, l0_limit=10)
        lsm.put("/a", 1)
        lsm.put("/b", 2)  # flushed
        r = lsm.get("/a")
        assert not r.memtable_hit
        assert r.tables_probed == 1
        assert r.bloom_checks >= 1

    def test_absent_key_mostly_bloom_filtered(self):
        lsm = LSMTree(memtable_limit=50, l0_limit=10)
        for i in range(200):
            lsm.put(f"/present/{i}", i)
        probes = 0
        for i in range(500):
            probes += lsm.get(f"/absent/{i}").tables_probed
        # Bloom filters keep physical probes well below one per lookup.
        assert probes < 100


class TestScan:
    def test_scan_merges_all_levels(self):
        lsm = LSMTree(memtable_limit=3, l0_limit=1)
        for i in range(10):
            lsm.put(f"/dir/f{i}", i)
        found = dict(lsm.scan_prefix("/dir/"))
        assert found == {f"/dir/f{i}": i for i in range(10)}

    def test_scan_respects_tombstones(self):
        lsm = LSMTree(memtable_limit=100, l0_limit=10)
        lsm.put("/d/a", 1)
        lsm.put("/d/b", 2)
        lsm.flush()
        lsm.delete("/d/a")
        assert dict(lsm.scan_prefix("/d/")) == {"/d/b": 2}

    def test_scan_prefix_boundary(self):
        lsm = LSMTree()
        lsm.put("/a/x", 1)
        lsm.put("/ab", 2)
        assert dict(lsm.scan_prefix("/a/")) == {"/a/x": 1}

    def test_scan_sorted_order(self):
        lsm = LSMTree()
        for k in ["/d/c", "/d/a", "/d/b"]:
            lsm.put(k, k)
        assert [k for k, _ in lsm.scan_prefix("/d/")] == ["/d/a", "/d/b", "/d/c"]

    def test_total_live_keys(self):
        lsm = LSMTree(memtable_limit=4, l0_limit=1)
        for i in range(10):
            lsm.put(f"/k{i}", i)
        lsm.delete("/k0")
        assert lsm.total_live_keys() == 9


class TestCrashRecovery:
    def test_unsynced_writes_lost(self):
        lsm = LSMTree(memtable_limit=100)
        lsm.put("/a", 1)
        lsm.sync()
        lsm.put("/b", 2)
        lost = lsm.crash()
        assert lost == 1
        lsm.recover()
        assert lsm.get("/a").found
        assert not lsm.get("/b").found

    def test_auto_sync_loses_nothing(self):
        lsm = LSMTree(memtable_limit=100, auto_sync_wal=True)
        lsm.put("/a", 1)
        lsm.put("/b", 2)
        assert lsm.crash() == 0
        lsm.recover()
        assert lsm.get("/a").found and lsm.get("/b").found

    def test_flushed_data_survives_crash(self):
        lsm = LSMTree(memtable_limit=2)
        lsm.put("/a", 1)
        lsm.put("/b", 2)  # flushed to L0
        lsm.crash()
        assert lsm.get("/a").found

    def test_recovered_deletes_replay(self):
        lsm = LSMTree(memtable_limit=100, auto_sync_wal=True)
        lsm.put("/a", 1)
        lsm.delete("/a")
        lsm.crash()
        lsm.recover()
        assert not lsm.get("/a").found


class TestBulkInsertion:
    def test_put_batch_single_sync(self):
        lsm = LSMTree(memtable_limit=10_000)
        lsm.put_batch([(f"/k{i}", i) for i in range(100)])
        assert lsm.wal.syncs == 1
        assert lsm.get("/k50").value == 50

    def test_put_batch_durable(self):
        lsm = LSMTree(memtable_limit=10_000)
        lsm.put_batch([(f"/k{i}", i) for i in range(10)])
        assert lsm.crash() == 0
        lsm.recover()
        assert lsm.get("/k3").found

    def test_stats_snapshot(self):
        lsm = LSMTree(memtable_limit=4, l0_limit=1)
        for i in range(8):
            lsm.put(f"/k{i}", i)
        stats = lsm.stats()
        assert stats["puts"] == 8
        assert stats["flushes"] >= 1
