"""Unit tests for the Memcached-equivalent MemKV store."""

import pytest

from repro.kvstore.memkv import (
    CapacityExceeded,
    CasMismatch,
    KeyExists,
    MemKV,
)


@pytest.fixture
def kv():
    return MemKV(name="test")


class TestBasicOps:
    def test_get_missing_returns_none(self, kv):
        assert kv.get("/a") is None
        assert kv.misses == 1

    def test_set_then_get(self, kv):
        kv.set("/a", {"mode": 0o755})
        assert kv.get("/a") == {"mode": 0o755}
        assert kv.hits == 1

    def test_set_overwrites(self, kv):
        kv.set("/a", 1)
        kv.set("/a", 2)
        assert kv.get("/a") == 2
        assert len(kv) == 1

    def test_delete_present(self, kv):
        kv.set("/a", 1)
        assert kv.delete("/a") is True
        assert kv.get("/a") is None
        assert len(kv) == 0

    def test_delete_absent(self, kv):
        assert kv.delete("/nope") is False

    def test_contains(self, kv):
        kv.set("/a", 1)
        assert "/a" in kv
        assert "/b" not in kv

    def test_add_only_if_absent(self, kv):
        kv.add("/a", 1)
        with pytest.raises(KeyExists):
            kv.add("/a", 2)
        assert kv.get("/a") == 1

    def test_flush_all(self, kv):
        kv.set("/a", 1)
        kv.set("/b", 2)
        kv.flush_all()
        assert len(kv) == 0
        assert kv.used_bytes == 0


class TestCas:
    def test_gets_returns_token(self, kv):
        kv.set("/a", "v1")
        value, token = kv.gets("/a")
        assert value == "v1"
        assert isinstance(token, int)

    def test_gets_missing(self, kv):
        assert kv.gets("/a") is None

    def test_cas_succeeds_with_current_token(self, kv):
        kv.set("/a", "v1")
        _, token = kv.gets("/a")
        kv.cas("/a", "v2", token)
        assert kv.get("/a") == "v2"

    def test_cas_fails_with_stale_token(self, kv):
        kv.set("/a", "v1")
        _, token = kv.gets("/a")
        kv.set("/a", "v2")  # bumps version
        with pytest.raises(CasMismatch):
            kv.cas("/a", "v3", token)
        assert kv.get("/a") == "v2"
        assert kv.cas_failures == 1

    def test_cas_on_deleted_key_fails(self, kv):
        kv.set("/a", "v1")
        _, token = kv.gets("/a")
        kv.delete("/a")
        with pytest.raises(CasMismatch):
            kv.cas("/a", "v2", token)

    def test_cas_retry_loop_converges(self, kv):
        """The paper's §III.D.3 pattern: retry CAS until success."""
        kv.set("/ctr", 0)

        def bump():
            while True:
                value, token = kv.gets("/ctr")
                try:
                    kv.cas("/ctr", value + 1, token)
                    return
                except CasMismatch:
                    continue

        # Interleave two logical writers with stale reads.
        v1, t1 = kv.gets("/ctr")
        kv.cas("/ctr", v1 + 1, t1)  # writer A wins
        bump()  # writer B retries transparently
        assert kv.get("/ctr") == 2

    def test_versions_strictly_increase(self, kv):
        kv.set("/a", 1)
        _, t1 = kv.gets("/a")
        kv.set("/a", 2)
        _, t2 = kv.gets("/a")
        assert t2 > t1


class TestMemoryAccounting:
    def test_usage_grows_and_shrinks(self, kv):
        before = kv.used_bytes
        kv.set("/a", b"x" * 1000)
        assert kv.used_bytes > before + 1000
        kv.delete("/a")
        assert kv.used_bytes == before

    def test_overwrite_adjusts_usage(self, kv):
        kv.set("/a", b"x" * 1000)
        big = kv.used_bytes
        kv.set("/a", b"x" * 10)
        assert kv.used_bytes < big

    def test_capacity_enforced(self):
        kv = MemKV(capacity_bytes=500)
        with pytest.raises(CapacityExceeded):
            kv.set("/a", b"x" * 1000)

    def test_usage_fraction(self):
        kv = MemKV(capacity_bytes=10_000)
        kv.set("/a", b"x" * 5000)
        assert 0.4 < kv.usage_fraction() < 0.7

    def test_stats_snapshot(self, kv):
        kv.set("/a", 1)
        kv.get("/a")
        kv.get("/b")
        stats = kv.stats()
        assert stats["items"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1


class TestScan:
    def test_scan_prefix_filters(self, kv):
        kv.set("/ws1/a", 1)
        kv.set("/ws1/b", 2)
        kv.set("/ws2/c", 3)
        found = dict(kv.scan_prefix("/ws1/"))
        assert found == {"/ws1/a": 1, "/ws1/b": 2}

    def test_scan_prefix_empty(self, kv):
        assert list(kv.scan_prefix("/none")) == []

    def test_scan_allows_concurrent_delete(self, kv):
        kv.set("/a/1", 1)
        kv.set("/a/2", 2)
        for key, _ in kv.scan_prefix("/a/"):
            kv.delete(key)  # must not raise during iteration
        assert len(kv) == 0

    def test_keys_iteration(self, kv):
        kv.set("/a", 1)
        kv.set("/b", 2)
        assert sorted(kv.keys()) == ["/a", "/b"]
