"""Unit tests for BloomFilter, WriteAheadLog, and SSTable."""

import pytest

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.sstable import SSTable, TOMBSTONE, merge_tables
from repro.kvstore.wal import WriteAheadLog


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(expected_items=1000, fp_rate=0.01)
        keys = [f"/dir/file{i}" for i in range(1000)]
        for k in keys:
            bf.add(k)
        assert all(bf.might_contain(k) for k in keys)

    def test_false_positive_rate_in_band(self):
        bf = BloomFilter(expected_items=2000, fp_rate=0.01)
        for i in range(2000):
            bf.add(f"/present/{i}")
        fps = sum(bf.might_contain(f"/absent/{i}") for i in range(10000))
        assert fps / 10000 < 0.05  # generous bound over the 1% target

    def test_contains_operator(self):
        bf = BloomFilter(100)
        bf.add("/x")
        assert "/x" in bf

    def test_fp_rate_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(100, fp_rate=1.5)

    def test_zero_items_clamped(self):
        bf = BloomFilter(0)
        assert bf.num_bits >= 8

    def test_fill_ratio_grows(self):
        bf = BloomFilter(100)
        empty = bf.fill_ratio()
        for i in range(100):
            bf.add(str(i))
        assert bf.fill_ratio() > empty


class TestWriteAheadLog:
    def test_append_and_replay_durable_only(self):
        wal = WriteAheadLog()
        wal.append("put", "/a", 1)
        wal.sync()
        wal.append("put", "/b", 2)
        assert [r[1] for r in wal.replay()] == ["/a"]

    def test_crash_drops_unsynced_tail(self):
        wal = WriteAheadLog()
        wal.append("put", "/a", 1)
        wal.sync()
        wal.append("put", "/b", 2)
        wal.append("del", "/a", None)
        lost = wal.crash()
        assert lost == 2
        assert len(wal) == 1

    def test_auto_sync_makes_everything_durable(self):
        wal = WriteAheadLog(auto_sync=True)
        wal.append("put", "/a", 1)
        wal.append("put", "/b", 2)
        assert wal.crash() == 0
        assert len(list(wal.replay())) == 2

    def test_sync_returns_newly_durable_count(self):
        wal = WriteAheadLog()
        wal.append("put", "/a", 1)
        wal.append("put", "/b", 2)
        assert wal.sync() == 2
        assert wal.sync() == 0

    def test_truncate_clears(self):
        wal = WriteAheadLog()
        wal.append("put", "/a", 1)
        wal.sync()
        wal.truncate()
        assert len(wal) == 0
        assert list(wal.replay()) == []

    def test_counters(self):
        wal = WriteAheadLog()
        wal.append("put", "/abc", 1)
        wal.sync()
        assert wal.appends == 1
        assert wal.syncs == 1
        assert wal.bytes_written > 0


class TestSSTable:
    def test_sorted_lookup(self):
        t = SSTable([("/b", 2), ("/a", 1), ("/c", 3)])
        assert t.get("/a") == (True, 1)
        assert t.get("/b") == (True, 2)
        assert t.get("/zzz") == (False, None)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SSTable([("/a", 1), ("/a", 2)])

    def test_min_max_and_range_check(self):
        t = SSTable([("/b", 2), ("/d", 4)])
        assert t.min_key == "/b"
        assert t.max_key == "/d"
        assert t.key_in_range("/c")
        assert not t.key_in_range("/a")
        assert not t.key_in_range("/e")

    def test_empty_table(self):
        t = SSTable([])
        assert len(t) == 0
        assert t.min_key is None
        assert not t.might_contain("/x")

    def test_might_contain_no_false_negatives(self):
        items = [(f"/k{i:03d}", i) for i in range(50)]
        t = SSTable(items)
        assert all(t.might_contain(k) for k, _ in items)

    def test_range_scan_half_open(self):
        t = SSTable([(f"/k{i}", i) for i in range(5)])
        assert dict(t.range("/k1", "/k3")) == {"/k1": 1, "/k2": 2}

    def test_items_sorted(self):
        t = SSTable([("/c", 3), ("/a", 1), ("/b", 2)])
        assert [k for k, _ in t.items()] == ["/a", "/b", "/c"]

    def test_read_counter(self):
        t = SSTable([("/a", 1)])
        t.get("/a")
        t.get("/b")
        assert t.reads == 2


class TestMergeTables:
    def test_newest_wins(self):
        old = SSTable([("/a", "old"), ("/b", "old")])
        new = SSTable([("/a", "new")])
        merged = dict(merge_tables([new, old]))
        assert merged == {"/a": "new", "/b": "old"}

    def test_tombstones_kept_by_default(self):
        old = SSTable([("/a", 1)])
        new = SSTable([("/a", TOMBSTONE)])
        merged = dict(merge_tables([new, old]))
        assert merged["/a"] is TOMBSTONE

    def test_tombstones_dropped_at_bottom(self):
        old = SSTable([("/a", 1), ("/b", 2)])
        new = SSTable([("/a", TOMBSTONE)])
        merged = merge_tables([new, old], drop_tombstones=True)
        assert merged == [("/b", 2)]

    def test_merge_output_sorted(self):
        t1 = SSTable([("/c", 3)])
        t2 = SSTable([("/a", 1), ("/b", 2)])
        assert [k for k, _ in merge_tables([t1, t2])] == ["/a", "/b", "/c"]
