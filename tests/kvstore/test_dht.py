"""Unit tests for consistent hashing and the mod-N partitioner."""

import pytest

from repro.kvstore.dht import ConsistentHashRing, HashPartitioner, stable_hash64


class FakeNode:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"FakeNode({self.name})"


@pytest.fixture
def nodes():
    return [FakeNode(f"n{i}") for i in range(4)]


@pytest.fixture
def ring(nodes):
    r = ConsistentHashRing(vnodes=64)
    for n in nodes:
        r.add(n)
    return r


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("/a/b") == stable_hash64("/a/b")

    def test_distinct_inputs(self):
        assert stable_hash64("/a") != stable_hash64("/b")

    def test_64_bit_range(self):
        h = stable_hash64("key")
        assert 0 <= h < (1 << 64)


class TestRingMembership:
    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)

    def test_add_duplicate_rejected(self, ring, nodes):
        with pytest.raises(ValueError):
            ring.add(nodes[0])

    def test_remove_unknown_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.remove(FakeNode("ghost"))

    def test_len_and_members(self, ring, nodes):
        assert len(ring) == 4
        assert set(ring.members) == set(nodes)

    def test_empty_ring_lookup_fails(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().lookup("/a")


class TestRingPlacement:
    def test_lookup_deterministic(self, ring):
        keys = [f"/dir/file{i}" for i in range(100)]
        first = [ring.lookup(k) for k in keys]
        second = [ring.lookup(k) for k in keys]
        assert first == second

    def test_placement_stable_across_instances(self, nodes):
        r1 = ConsistentHashRing(vnodes=64)
        r2 = ConsistentHashRing(vnodes=64)
        for n in nodes:
            r1.add(n)
            r2.add(n)
        keys = [f"/k{i}" for i in range(200)]
        assert ([ring_node.name for ring_node in map(r1.lookup, keys)]
                == [ring_node.name for ring_node in map(r2.lookup, keys)])

    def test_balance_within_reason(self, ring, nodes):
        keys = [f"/workspace/file-{i}" for i in range(4000)]
        dist = ring.distribution(keys)
        for node in nodes:
            assert dist[node] > 4000 / len(nodes) * 0.5

    def test_minimal_movement_on_member_removal(self, ring, nodes):
        keys = [f"/k{i}" for i in range(2000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(nodes[0])
        moved = 0
        for k in keys:
            after = ring.lookup(k)
            if after is not before[k]:
                moved += 1
                # keys may only move off the removed node
                assert before[k] is nodes[0]
        assert moved > 0  # the removed node did own some keys

    def test_lookup_n_distinct(self, ring):
        owners = ring.lookup_n("/some/key", 3)
        assert len(owners) == 3
        assert len({id(o) for o in owners}) == 3

    def test_lookup_n_caps_at_membership(self, ring):
        owners = ring.lookup_n("/some/key", 99)
        assert len(owners) == 4

    def test_lookup_n_first_matches_lookup(self, ring):
        key = "/x/y/z"
        assert ring.lookup_n(key, 2)[0] is ring.lookup(key)

    def test_weight_increases_share(self):
        heavy, light = FakeNode("heavy"), FakeNode("light")
        ring = ConsistentHashRing(vnodes=32)
        ring.add(heavy, weight=4)
        ring.add(light, weight=1)
        keys = [f"/k{i}" for i in range(3000)]
        dist = ring.distribution(keys)
        assert dist[heavy] > dist[light] * 2


class TestHashPartitioner:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            HashPartitioner([])

    def test_lookup_deterministic(self, nodes):
        p = HashPartitioner(nodes)
        assert p.lookup("/a/b") is p.lookup("/a/b")

    def test_index_of_matches_lookup(self, nodes):
        p = HashPartitioner(nodes)
        idx = p.index_of("/a/b")
        assert p.lookup("/a/b") is nodes[idx]

    def test_spread_over_members(self, nodes):
        p = HashPartitioner(nodes)
        picks = {p.index_of(f"/k{i}") for i in range(200)}
        assert picks == {0, 1, 2, 3}
