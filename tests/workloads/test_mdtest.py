"""Tests for the mdtest-equivalent workload generator."""

import pytest

from repro.bench.systems import make_testbed
from repro.workloads.mdtest import (
    MdtestConfig,
    build_tree,
    leaf_dirs,
    run_mdtest,
    run_random_stat,
    spawn_mdtest,
)


@pytest.fixture
def bed():
    return make_testbed("pacon", n_apps=1, nodes_per_app=2,
                        clients_per_node=3)


class TestRunMdtest:
    def test_phases_produce_expected_entries(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=5)
        result = run_mdtest(bed.env, bed.clients, config)
        bed.quiesce()
        n = len(bed.clients)
        # 5 dirs + 5 files per client on the DFS (plus workspace dirs).
        names = bed.dfs.namespace.readdir("/app")
        assert len(names) == 10 * n
        assert result.total_ops == 15 * n

    def test_throughput_fields_populated(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=5)
        result = run_mdtest(bed.env, bed.clients, config)
        for phase in ("mkdir", "create", "stat"):
            assert result.ops(phase) > 0
            assert result.phase_elapsed[phase] > 0

    def test_rm_phase(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=4,
                              phases=("create", "rm"))
        run_mdtest(bed.env, bed.clients, config)
        bed.quiesce()
        assert bed.dfs.namespace.readdir("/app") == []

    def test_local_stat_mode(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=4,
                              stat_random_global=False)
        result = run_mdtest(bed.env, bed.clients, config)
        assert result.ops("stat") > 0

    def test_stats_per_client_override(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=4,
                              stats_per_client=10)
        result = run_mdtest(bed.env, bed.clients, config)
        n = len(bed.clients)
        assert result.total_ops == (4 + 4 + 10) * n

    def test_unknown_phase_rejected(self, bed):
        config = MdtestConfig(workdir="/app", phases=("fly",))
        with pytest.raises(ValueError):
            run_mdtest(bed.env, bed.clients, config)

    def test_needs_clients(self, bed):
        with pytest.raises(ValueError):
            run_mdtest(bed.env, [], MdtestConfig())

    def test_unique_dir_per_rank_mode(self, bed):
        config = MdtestConfig(workdir="/app", items_per_client=4,
                              unique_dir_per_rank=True,
                              phases=("create", "stat"))
        result = run_mdtest(bed.env, bed.clients, config)
        bed.quiesce()
        n = len(bed.clients)
        # One subdirectory per rank, each holding that rank's files.
        assert bed.dfs.namespace.readdir("/app") == \
            sorted(f"rank{r}" for r in range(n))
        for r in range(n):
            assert len(bed.dfs.namespace.readdir(f"/app/rank{r}")) == 4
        assert result.ops("create") > 0

    def test_deterministic_given_seed(self):
        def once():
            bed = make_testbed("pacon", n_apps=1, nodes_per_app=2,
                               clients_per_node=3, seed=99)
            config = MdtestConfig(workdir="/app", items_per_client=5)
            r = run_mdtest(bed.env, bed.clients, config)
            return (r.ops("mkdir"), r.ops("create"), r.ops("stat"))

        assert once() == once()


class TestSpawnConcurrent:
    def test_two_instances_interleave(self):
        bed = make_testbed("pacon", n_apps=2, nodes_per_app=2,
                           clients_per_node=2)
        handles = []
        for app in bed.apps:
            config = MdtestConfig(workdir=app.workdir, items_per_client=5)
            handles.append(spawn_mdtest(bed.env, app.clients, config))
        for handle in handles:
            for proc in handle.procs:
                bed.env.run(until=proc)
        results = [h.result() for h in handles]
        assert all(r.ops("create") > 0 for r in results)
        bed.quiesce()
        for app in bed.apps:
            assert len(bed.dfs.namespace.readdir(app.workdir)) == 10 * 4


class TestTreeBuilding:
    def test_build_tree_shape(self, bed):
        leaves = build_tree(bed.env, bed.clients[0], "/app", fanout=3,
                            depth=2)
        assert len(leaves) == 9
        assert leaves == leaf_dirs("/app", 3, 2)
        bed.quiesce()
        assert bed.dfs.namespace.exists("/app/d0/d2")

    def test_leaf_dirs_math(self):
        assert len(leaf_dirs("/r", 5, 3)) == 125
        assert leaf_dirs("/r", 2, 1) == ["/r/d0", "/r/d1"]

    def test_random_stat_throughput(self, bed):
        leaves = build_tree(bed.env, bed.clients[0], "/app", fanout=2,
                            depth=2)
        ops = run_random_stat(bed.env, bed.clients, leaves,
                              stats_per_client=10)
        assert ops > 0

    def test_random_stat_validation(self, bed):
        with pytest.raises(ValueError):
            run_random_stat(bed.env, bed.clients, [], 10)
