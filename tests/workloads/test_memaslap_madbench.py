"""Tests for the memaslap- and MADbench2-equivalent workloads."""

import pytest

from repro.bench.systems import make_testbed
from repro.core.cache import CacheShard, DistributedCache
from repro.sim.network import Cluster
from repro.workloads.madbench import MadbenchConfig, run_madbench
from repro.workloads.memaslap import MemaslapConfig, run_memaslap


def make_cache_world(n=3):
    cluster = Cluster(seed=3)
    nodes = [cluster.add_node(f"c{i}") for i in range(n)]
    shards = [CacheShard(cluster, node, capacity_bytes=1 << 26,
                         name=f"s{i}") for i, node in enumerate(nodes)]
    return cluster, nodes, DistributedCache(shards)


class TestMemaslap:
    def test_inserts_items(self):
        cluster, nodes, cache = make_cache_world()
        ops = run_memaslap(cluster.env, cache, nodes[0],
                           MemaslapConfig(operations=100))
        assert ops > 0
        assert cache.total_items() == 100

    def test_throughput_scales_with_concurrency(self):
        def tput(conc):
            cluster, nodes, cache = make_cache_world()
            return run_memaslap(cluster.env, cache, nodes[0],
                                MemaslapConfig(operations=200,
                                               concurrency=conc))

        assert tput(8) > tput(1) * 2

    def test_operation_validation(self):
        cluster, nodes, cache = make_cache_world()
        with pytest.raises(ValueError):
            run_memaslap(cluster.env, cache, nodes[0],
                         MemaslapConfig(operations=0))

    def test_remainder_distribution(self):
        cluster, nodes, cache = make_cache_world()
        run_memaslap(cluster.env, cache, nodes[0],
                     MemaslapConfig(operations=103, concurrency=4))
        assert cache.total_items() == 103


class TestMadbench:
    @pytest.fixture
    def beds(self):
        return {
            system: make_testbed(system, n_apps=1, nodes_per_app=2,
                                 clients_per_node=2,
                                 workdir_base="/madbench")
            for system in ("beegfs", "pacon")
        }

    def test_creates_one_file_per_process(self, beds):
        bed = beds["pacon"]
        config = MadbenchConfig(file_size=256 * 1024, iterations=1)
        run_madbench(bed.env, bed.clients, config)
        bed.quiesce()
        assert len(bed.dfs.namespace.readdir("/madbench")) == \
            len(bed.clients)

    def test_breakdown_sums_to_busy_time(self, beds):
        bed = beds["beegfs"]
        config = MadbenchConfig(file_size=256 * 1024, iterations=2)
        result = run_madbench(bed.env, bed.clients, config)
        shares = result.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert result.total_time > 0

    def test_file_size_written_through(self, beds):
        bed = beds["pacon"]
        size = 512 * 1024
        config = MadbenchConfig(file_size=size, iterations=1)
        run_madbench(bed.env, bed.clients, config)
        bed.quiesce()
        for rank in range(len(bed.clients)):
            inode = bed.dfs.namespace.getattr(f"/madbench/data.{rank}")
            assert inode.size == size

    def test_compute_counts_as_other(self, beds):
        bed = beds["beegfs"]
        config = MadbenchConfig(file_size=128 * 1024, iterations=3,
                                compute_time=5e-3)
        result = run_madbench(bed.env, bed.clients, config)
        assert result.other_time >= 3 * 5e-3 * len(bed.clients)

    def test_pacon_total_close_to_beegfs(self, beds):
        config = MadbenchConfig(file_size=1024 * 1024, iterations=2)
        totals = {}
        for system, bed in beds.items():
            totals[system] = run_madbench(bed.env, bed.clients,
                                          config).total_time
        assert totals["pacon"] < totals["beegfs"] * 1.2

    def test_needs_clients(self, beds):
        with pytest.raises(ValueError):
            run_madbench(beds["pacon"].env, [], MadbenchConfig())
