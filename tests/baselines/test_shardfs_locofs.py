"""Tests for the ShardFS/LocoFS ablation baselines."""

import pytest

from repro.baselines.locofs import LocoFS
from repro.baselines.shardfs import ShardFS
from repro.dfs.errors import FileExists, FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make_shardfs(n=3):
    cluster = Cluster(seed=9)
    servers = [cluster.add_node(f"s{i}") for i in range(n)]
    client = cluster.add_node("client")
    return cluster, ShardFS(cluster, servers), client


def make_locofs(n_fms=3):
    cluster = Cluster(seed=9)
    dms = cluster.add_node("dms")
    fms = [cluster.add_node(f"fms{i}") for i in range(n_fms)]
    client = cluster.add_node("client")
    return cluster, LocoFS(cluster, dms, fms), client


class TestShardFS:
    def test_mkdir_replicates_everywhere(self):
        cluster, fs, client = make_shardfs()

        def scenario():
            yield from fs.mkdir(client, "/d")

        run_sync(cluster.env, scenario())
        assert all("/d" in s.dirs for s in fs.servers)

    def test_create_and_stat_single_rpc(self):
        cluster, fs, client = make_shardfs()

        def scenario():
            yield from fs.mkdir(client, "/d")
            yield from fs.create(client, "/d/f")
            record = yield from fs.getattr(client, "/d/f")
            return record

        record = run_sync(cluster.env, scenario())
        assert record["ftype"] == "file"
        served = sum(s.requests_by_method.get("getattr", 0)
                     for s in fs.servers)
        assert served == 1

    def test_stat_depth_insensitive(self):
        def stat_time(depth):
            cluster, fs, client = make_shardfs()

            def scenario():
                path = ""
                for i in range(depth):
                    path += f"/d{i}"
                    yield from fs.mkdir(client, path)
                yield from fs.create(client, path + "/leaf")
                t0 = cluster.env.now
                yield from fs.getattr(client, path + "/leaf")
                return cluster.env.now - t0

            return run_sync(cluster.env, scenario())

        assert stat_time(6) < stat_time(3) * 1.2

    def test_mkdir_cost_scales_with_servers(self):
        def mkdir_time(n):
            cluster, fs, client = make_shardfs(n)

            def scenario():
                t0 = cluster.env.now
                yield from fs.mkdir(client, "/d")
                return cluster.env.now - t0

            return run_sync(cluster.env, scenario())

        assert mkdir_time(6) > mkdir_time(1) * 3

    def test_create_missing_parent(self):
        cluster, fs, client = make_shardfs()

        def scenario():
            yield from fs.create(client, "/no/f")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, scenario())

    def test_unlink(self):
        cluster, fs, client = make_shardfs()

        def scenario():
            yield from fs.mkdir(client, "/d")
            yield from fs.create(client, "/d/f")
            yield from fs.unlink(client, "/d/f")
            yield from fs.getattr(client, "/d/f")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, scenario())


class TestLocoFS:
    def test_create_and_stat(self):
        cluster, fs, client = make_locofs()

        def scenario():
            yield from fs.mkdir(client, "/d")
            yield from fs.create(client, "/d/f")
            record = yield from fs.getattr(client, "/d/f")
            return record

        assert run_sync(cluster.env, scenario())["ftype"] == "file"

    def test_all_dir_ops_hit_single_dms(self):
        cluster, fs, client = make_locofs()

        def scenario():
            for i in range(6):
                yield from fs.mkdir(client, f"/d{i}")

        run_sync(cluster.env, scenario())
        assert fs.dms.requests_by_method["mkdir"] == 6

    def test_files_spread_over_fms(self):
        cluster, fs, client = make_locofs(n_fms=3)

        def scenario():
            yield from fs.mkdir(client, "/d")
            for i in range(30):
                yield from fs.create(client, f"/d/f{i}")

        run_sync(cluster.env, scenario())
        loads = [len(s.files) for s in fs.fms]
        assert sum(loads) == 30
        assert all(load > 0 for load in loads)

    def test_duplicate_mkdir(self):
        cluster, fs, client = make_locofs()

        def scenario():
            yield from fs.mkdir(client, "/d")
            yield from fs.mkdir(client, "/d")

        with pytest.raises(FileExists):
            run_sync(cluster.env, scenario())

    def test_missing_path_component(self):
        cluster, fs, client = make_locofs()

        def scenario():
            yield from fs.create(client, "/ghost/f")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, scenario())

    def test_dms_is_serialization_point(self):
        """Concurrent creates all funnel through the DMS path check."""
        cluster, fs, client = make_locofs(n_fms=4)

        def setup():
            yield from fs.mkdir(client, "/d")

        run_sync(cluster.env, setup())
        done = []

        def creator(i):
            yield from fs.create(client, f"/d/f{i}")
            done.append(i)

        for i in range(8):
            cluster.env.process(creator(i))
        cluster.run()
        assert len(done) == 8
        assert fs.dms.requests_by_method["check_path"] == 8
