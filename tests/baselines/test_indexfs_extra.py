"""Additional IndexFS coverage: readdir across partitions, exists, leases
under concurrent clients, and the LSM cost coupling at scale."""

import pytest

from repro.baselines.indexfs import IndexFS
from repro.dfs.errors import FileNotFound
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make(n_nodes=4, lease_ttl=200e-3, split_threshold=10):
    cluster = Cluster(seed=13)
    nodes = [cluster.add_node(f"n{i}") for i in range(n_nodes)]
    fs = IndexFS(cluster, nodes, lease_ttl=lease_ttl,
                 split_threshold=split_threshold)
    return cluster, fs, nodes


class TestAdminMkdir:
    def test_admin_mkdir_visible_to_clients(self):
        cluster, fs, nodes = make()
        fs.admin_mkdir("/work", mode=0o777)
        client = fs.client(nodes[0])

        def go():
            yield from client.create("/work/f")
            return (yield from client.exists("/work/f"))

        assert run_sync(cluster.env, go())

    def test_admin_mkdir_counts_toward_splits(self):
        cluster, fs, nodes = make(split_threshold=2)
        for i in range(8):
            fs.admin_mkdir(f"/d{i}")
        assert fs.partitions_of("/") >= 2


class TestConcurrentClients:
    def test_many_clients_share_namespace(self):
        cluster, fs, nodes = make()
        clients = [fs.client(node) for node in nodes]

        def writer(i, cl):
            yield from cl.mkdir(f"/dir{i}")
            yield from cl.create(f"/dir{i}/f")

        procs = [cluster.env.process(writer(i, cl))
                 for i, cl in enumerate(clients)]
        for p in procs:
            cluster.env.run(until=p)
        # Every client can see every other client's work.
        reader = clients[0]

        def check():
            out = []
            for i in range(len(clients)):
                out.append((yield from reader.exists(f"/dir{i}/f")))
            return out

        assert all(run_sync(cluster.env, check()))

    def test_lease_caches_are_per_client(self):
        cluster, fs, nodes = make(lease_ttl=100.0)
        a = fs.client(nodes[0])
        b = fs.client(nodes[1])

        def go():
            yield from a.mkdir("/d")
            yield from a.create("/d/f1")   # warms a's lease on /d
            before_b = b.lease_renewals
            yield from b.create("/d/f2")   # b must fetch its own lease
            return b.lease_renewals - before_b

        assert run_sync(cluster.env, go()) == 1


class TestErrorPaths:
    def test_getattr_missing_after_probe_chain(self):
        cluster, fs, nodes = make(split_threshold=3)
        client = fs.client(nodes[0])

        def go():
            yield from client.mkdir("/d")
            for i in range(20):  # force splits so the chain is > 1 long
                yield from client.create(f"/d/f{i}")
            yield from client.getattr("/d/ghost")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, go())

    def test_unlink_missing_after_probe_chain(self):
        cluster, fs, nodes = make(split_threshold=3)
        client = fs.client(nodes[0])

        def go():
            yield from client.mkdir("/d")
            for i in range(20):
                yield from client.create(f"/d/f{i}")
            yield from client.unlink("/d/ghost")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, go())


class TestScaleCosts:
    def test_stat_slows_once_tables_flush(self):
        """With a small memtable, a big namespace pushes entries into
        SSTables stored on the DFS — stats get measurably slower."""
        def mean_stat_time(n_files):
            cluster, fs, nodes = make(split_threshold=10 ** 9)
            fs.servers[0].lsm.memtable_limit = 32
            client = fs.client(nodes[0])

            def go():
                yield from client.mkdir("/d")
                for i in range(n_files):
                    yield from client.create(f"/d/f{i:04d}")
                t0 = cluster.env.now
                for i in range(0, n_files, max(1, n_files // 20)):
                    yield from client.getattr(f"/d/f{i:04d}")
                count = len(range(0, n_files, max(1, n_files // 20)))
                return (cluster.env.now - t0) / count

            return run_sync(cluster.env, go())

        assert mean_stat_time(200) > mean_stat_time(20) * 1.3
