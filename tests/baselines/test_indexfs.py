"""Tests for the IndexFS-equivalent baseline."""

import pytest

from repro.baselines.indexfs import IndexFS
from repro.dfs.errors import (
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make_indexfs(n_nodes=4, lease_ttl=2e-3):
    cluster = Cluster(seed=5)
    nodes = [cluster.add_node(f"n{i}") for i in range(n_nodes)]
    fs = IndexFS(cluster, nodes, lease_ttl=lease_ttl)
    client = fs.client(nodes[0])
    return cluster, fs, nodes, client


class TestBasicOps:
    def test_mkdir_create_getattr(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f")
            inode = yield from client.getattr("/d/f")
            return inode

        inode = run_sync(cluster.env, scenario())
        assert inode.is_file
        assert fs.total_entries() == 2

    def test_create_missing_parent(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.create("/no/f")

        with pytest.raises(FileNotFound):
            run_sync(cluster.env, scenario())

    def test_duplicate_create(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f")
            yield from client.create("/d/f")

        with pytest.raises(FileExists):
            run_sync(cluster.env, scenario())

    def test_unlink(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f")
            yield from client.unlink("/d/f")
            return (yield from client.exists("/d/f"))

        assert run_sync(cluster.env, scenario()) is False

    def test_unlink_dir_rejected(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            yield from client.unlink("/d")

        with pytest.raises(IsADirectory):
            run_sync(cluster.env, scenario())

    def test_readdir(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            for name in ["b", "a", "c"]:
                yield from client.create(f"/d/{name}")
            yield from client.mkdir("/d/sub")
            yield from client.create("/d/sub/nested")
            return (yield from client.readdir("/d"))

        assert run_sync(cluster.env, scenario()) == ["a", "b", "c", "sub"]

    def test_rmdir_recursive_across_partitions(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            yield from client.mkdir("/d/sub")
            for i in range(5):
                yield from client.create(f"/d/f{i}")
                yield from client.create(f"/d/sub/g{i}")
            removed = yield from client.rmdir("/d")
            return removed

        assert run_sync(cluster.env, scenario()) == 12
        assert fs.total_entries() == 0

    def test_permission_checks(self):
        cluster, fs, nodes, client = make_indexfs()
        other = fs.client(nodes[1], uid=2000, gid=2000)

        def scenario():
            yield from client.mkdir("/private", mode=0o700)
            yield from other.create("/private/f")

        with pytest.raises(PermissionDenied):
            run_sync(cluster.env, scenario())


class TestPartitioning:
    def test_metadata_spreads_over_servers(self):
        cluster, fs, nodes, client = make_indexfs(n_nodes=4)

        def scenario():
            for i in range(12):
                yield from client.mkdir(f"/d{i}")
                for j in range(4):
                    yield from client.create(f"/d{i}/f{j}")

        run_sync(cluster.env, scenario())
        loads = [s.lsm.total_live_keys() for s in fs.servers]
        assert sum(loads) == 60
        assert sum(1 for x in loads if x > 0) >= 3

    def test_same_dir_entries_colocate(self):
        cluster, fs, nodes, client = make_indexfs(n_nodes=4)
        owner = fs.server_for("/d/f0")
        for j in range(10):
            assert fs.server_for(f"/d/f{j}") is owner

    def test_placement_deterministic(self):
        _, fs1, _, _ = make_indexfs()
        _, fs2, _, _ = make_indexfs()
        for i in range(20):
            assert (fs1.server_for(f"/a/b{i}").name
                    == fs2.server_for(f"/a/b{i}").name)


class TestLeases:
    def test_lease_hit_avoids_rpc(self):
        cluster, fs, nodes, client = make_indexfs(lease_ttl=10.0)

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f1")
            before = client.lease_renewals
            yield from client.create("/d/f2")  # /d lease still warm
            return client.lease_renewals - before

        assert run_sync(cluster.env, scenario()) == 0

    def test_lease_expiry_forces_renewal(self):
        cluster, fs, nodes, client = make_indexfs(lease_ttl=1e-6)

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/f1")
            before = client.lease_renewals
            yield from client.create("/d/f2")
            return client.lease_renewals - before

        assert run_sync(cluster.env, scenario()) == 1

    def test_deeper_paths_renew_more(self):
        cluster, fs, nodes, client = make_indexfs(lease_ttl=1e-6)

        def scenario():
            yield from client.mkdir("/a")
            yield from client.mkdir("/a/b")
            yield from client.mkdir("/a/b/c")
            yield from client.create("/a/b/c/f")
            before = client.lease_renewals
            yield from client.getattr("/a/b/c/f")
            return client.lease_renewals - before

        assert run_sync(cluster.env, scenario()) == 3


class TestBulkInsertion:
    def test_bulk_buffers_then_flushes(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            client.bulk_mode = True
            client.bulk_batch_size = 1000
            for i in range(50):
                yield from client.create(f"/d/f{i}")
            buffered = len(client._bulk_buffer)
            flushed = yield from client.flush_bulk()
            return buffered, flushed

        buffered, flushed = run_sync(cluster.env, scenario())
        assert buffered == 50
        assert flushed == 50
        assert fs.total_entries() == 51

    def test_bulk_auto_flush_at_batch_size(self):
        cluster, fs, nodes, client = make_indexfs()

        def scenario():
            yield from client.mkdir("/d")
            client.bulk_mode = True
            client.bulk_batch_size = 10
            for i in range(25):
                yield from client.create(f"/d/f{i}")
            yield from client.flush_bulk()

        run_sync(cluster.env, scenario())
        assert fs.total_entries() == 26

    def test_bulk_insert_is_cheaper_per_op(self):
        def run_creates(bulk):
            cluster, fs, nodes, client = make_indexfs()

            def scenario():
                yield from client.mkdir("/d")
                t0 = cluster.env.now
                client.bulk_mode = bulk
                for i in range(200):
                    yield from client.create(f"/d/f{i}")
                yield from client.flush_bulk()
                return cluster.env.now - t0

            return run_sync(cluster.env, scenario())

        assert run_creates(bulk=True) < run_creates(bulk=False) / 3


class TestLSMCostCoupling:
    def test_flushed_server_reads_cost_more(self):
        """After flushes, reads probe SSTables — visibly slower."""
        cluster, fs, nodes, client = make_indexfs(n_nodes=1)
        fs.servers[0].lsm.memtable_limit = 8

        def build():
            yield from client.mkdir("/d")
            for i in range(64):
                yield from client.create(f"/d/f{i:03d}")

        run_sync(cluster.env, build())
        assert fs.servers[0].lsm.l0_tables + \
            (1 if fs.servers[0].lsm.l1_entries else 0) > 0

        def timed_stat(path):
            def proc():
                t0 = cluster.env.now
                yield from client.getattr(path)
                return cluster.env.now - t0
            return run_sync(cluster.env, proc())

        # A key still in the memtable vs one flushed to a table.
        in_table = timed_stat("/d/f000")
        lsm = fs.servers[0].lsm
        in_mem_key = next(iter(lsm._memtable)) if lsm.memtable_size else None
        if in_mem_key:
            assert in_table >= timed_stat(in_mem_key)
