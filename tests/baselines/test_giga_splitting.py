"""Tests for GIGA+-style directory splitting in the IndexFS baseline."""

import pytest

from repro.baselines.indexfs import IndexFS
from repro.sim.core import run_sync
from repro.sim.network import Cluster


def make(n_nodes=4, split_threshold=10):
    cluster = Cluster(seed=5)
    nodes = [cluster.add_node(f"n{i}") for i in range(n_nodes)]
    fs = IndexFS(cluster, nodes, split_threshold=split_threshold)
    return cluster, fs, fs.client(nodes[0])


class TestSplitting:
    def test_directory_splits_past_threshold(self):
        cluster, fs, client = make(split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(30):
                yield from client.create(f"/d/f{i}")

        run_sync(cluster.env, scenario())
        assert fs.partitions_of("/d") >= 2
        assert fs.splits >= 1

    def test_partitions_capped_at_server_count(self):
        cluster, fs, client = make(n_nodes=2, split_threshold=4)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(100):
                yield from client.create(f"/d/f{i}")

        run_sync(cluster.env, scenario())
        assert fs.partitions_of("/d") <= 2

    def test_split_spreads_load(self):
        cluster, fs, client = make(n_nodes=4, split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(200):
                yield from client.create(f"/d/f{i}")

        run_sync(cluster.env, scenario())
        holders = [s for s in fs.servers if s.lsm.total_live_keys() > 0]
        assert len(holders) >= 3

    def test_pre_split_entries_still_found(self):
        """GIGA+ probe chain finds entries created before a split."""
        cluster, fs, client = make(split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            early = [f"/d/f{i}" for i in range(8)]   # before any split
            for path in early:
                yield from client.create(path)
            for i in range(8, 60):                   # force splits
                yield from client.create(f"/d/f{i}")
            found = []
            for path in early:
                inode = yield from client.getattr(path)
                found.append(inode.is_file)
            return found

        assert all(run_sync(cluster.env, scenario()))

    def test_readdir_gathers_all_partitions(self):
        cluster, fs, client = make(split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(40):
                yield from client.create(f"/d/f{i:02d}")
            return (yield from client.readdir("/d"))

        names = run_sync(cluster.env, scenario())
        assert names == [f"f{i:02d}" for i in range(40)]

    def test_unlink_pre_split_entry(self):
        cluster, fs, client = make(split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            yield from client.create("/d/early")
            for i in range(50):
                yield from client.create(f"/d/f{i}")
            yield from client.unlink("/d/early")
            return (yield from client.exists("/d/early"))

        assert run_sync(cluster.env, scenario()) is False

    def test_no_split_under_threshold(self):
        cluster, fs, client = make(split_threshold=1000)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(50):
                yield from client.create(f"/d/f{i}")

        run_sync(cluster.env, scenario())
        assert fs.partitions_of("/d") == 1
        assert fs.splits == 0

    def test_rmdir_resets_partition_state(self):
        cluster, fs, client = make(split_threshold=10)

        def scenario():
            yield from client.mkdir("/d")
            for i in range(40):
                yield from client.create(f"/d/f{i}")
            yield from client.rmdir("/d")

        run_sync(cluster.env, scenario())
        assert fs.partitions_of("/d") == 1
        assert fs.total_entries() == 0
