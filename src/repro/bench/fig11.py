"""Fig. 11: metadata scalability (file creation, normalized).

Client count grows 20 per node as nodes are added (IndexFS servers and
Pacon cache/commit services grow with the client nodes; BeeGFS keeps its
single MDS).  Results are normalized by each system's single-client
throughput.  Paper: Pacon scales ~16.5× better than BeeGFS and ~2.8×
better than IndexFS at 320 clients, and exceeds 1 M creates/s.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult, fmt_ops
from repro.bench.systems import DEFAULT_SEED, SYSTEMS, make_testbed
from repro.workloads.mdtest import MdtestConfig, run_mdtest

__all__ = ["run", "run_aggregate", "main", "SCALES", "AGGREGATE_SCALES",
           "creation_throughput"]

SCALES: Dict[str, Dict] = {
    "smoke": {"points": [(1, 1), (2, 5)], "items": 15},
    "ci": {"points": [(1, 1), (1, 10), (2, 10), (4, 10)], "items": 25},
    "paper": {"points": [(1, 1), (1, 20), (2, 20), (4, 20), (8, 20),
                         (16, 20)], "items": 100},
}

#: Aggregate-scalability points: ``(nodes, clients_per_node,
#: aggregate_multiplier)``.  Logical clients = nodes × cpn × multiplier —
#: 20–100× past the per-scale maximum of the faithful sweep above at a
#: similar event-heap footprint.
AGGREGATE_SCALES: Dict[str, Dict] = {
    "smoke": {"points": [(2, 5, 20)], "items": 15},
    "ci": {"points": [(2, 10, 20), (4, 10, 50)], "items": 25},
    "paper": {"points": [(8, 20, 50), (16, 20, 100)], "items": 100},
}


def creation_throughput(system: str, nodes: int, cpn: int,
                        items: int, seed: int = DEFAULT_SEED) -> float:
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, seed=seed)
    config = MdtestConfig(workdir="/app", items_per_client=items,
                          phases=("create",))
    return run_mdtest(bed.env, bed.clients, config).ops("create")


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig11",
        title="Creation scalability (normalized to 1 client)",
        scale=scale, seed=seed, params=dict(params))
    base: Dict[str, float] = {}
    for system in SYSTEMS:
        for nodes, cpn in params["points"]:
            ops = creation_throughput(system, nodes, cpn, params["items"],
                                      seed=seed)
            clients = nodes * cpn
            if clients == 1:
                base[system] = ops
            out.add(system=system, clients=clients,
                    ops_per_sec=round(ops),
                    normalized=round(ops / base[system], 2))
    max_clients = max(n * c for n, c in params["points"])
    big = {s: out.where(system=s, clients=max_clients)[0] for s in SYSTEMS}
    out.derive("scaling_vs_beegfs", round(
        big["pacon"]["normalized"] / big["beegfs"]["normalized"], 3))
    out.derive("scaling_vs_indexfs", round(
        big["pacon"]["normalized"] / big["indexfs"]["normalized"], 3))
    out.derive("pacon_peak_ops_per_sec", big["pacon"]["ops_per_sec"])
    out.note(f"at {max_clients} clients: Pacon scaling is"
             f" {big['pacon']['normalized'] / big['beegfs']['normalized']:.1f}x"
             f" BeeGFS's and"
             f" {big['pacon']['normalized'] / big['indexfs']['normalized']:.1f}x"
             f" IndexFS's (paper: ~16.5x / ~2.8x at 320 clients)")
    out.note(f"Pacon absolute throughput at {max_clients} clients:"
             f" {fmt_ops(big['pacon']['ops_per_sec'])} OPS"
             " (paper: >1M OPS at 320 clients)")
    return out


def run_aggregate(scale: str = "ci",
                  seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Fig. 11 extension: hierarchical aggregate-client scalability.

    Each Pacon client object stands in for ``multiplier`` statistically
    identical ranks (``config.aggregate_multiplier``; see
    :class:`repro.core.client.AggregateClient`), so the sweep reaches
    logical client counts 20–100× past the faithful sweep's maximum at a
    similar wall-clock.  Logical throughput = physical × multiplier — a
    documented approximation valid while per-op service times stay
    load-independent; the faithful figures are untouched.
    """
    params = AGGREGATE_SCALES[scale]
    out = ExperimentResult(
        experiment="fig11_aggregate",
        title="Creation scalability, hierarchical aggregate clients",
        scale=scale, seed=seed, params=dict(params))
    faithful_max = max(n * c for n, c in SCALES[scale]["points"])
    max_logical = 0
    for nodes, cpn, multiplier in params["points"]:
        bed = make_testbed("pacon", n_apps=1, nodes_per_app=nodes,
                           clients_per_node=cpn, seed=seed,
                           aggregate_multiplier=multiplier)
        config = MdtestConfig(workdir="/app",
                              items_per_client=params["items"],
                              phases=("create",))
        ops = run_mdtest(bed.env, bed.clients, config).ops("create")
        physical = nodes * cpn
        logical = physical * multiplier
        max_logical = max(max_logical, logical)
        out.add(system="pacon", physical_clients=physical,
                multiplier=multiplier, logical_clients=logical,
                ops_per_sec=round(ops),
                logical_ops_per_sec=round(ops * multiplier))
    out.derive("max_logical_clients", max_logical)
    out.derive("scaleup_vs_faithful_sweep",
               round(max_logical / faithful_max, 2))
    out.note(f"{max_logical} logical clients"
             f" ({max_logical // faithful_max}x the faithful {scale} sweep's"
             f" {faithful_max}); logical ops/sec = physical x multiplier"
             " (assumes load-independent per-op service times)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
