"""Fig. 8: multi-application performance.

16 client nodes, 320 clients total, 2–16 concurrent applications on
disjoint working directories (nodes evenly divided among them); each app
is one mdtest instance (and, for Pacon, one consistent region).  Paper:
Pacon beats BeeGFS by more than an order of magnitude and IndexFS by more
than 1.07× — the IndexFS gap *narrows* here because separate directories
spread its partitions, so reproducing the narrowing matters as much as
the win.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, SYSTEMS, make_testbed
from repro.workloads.mdtest import MdtestConfig, spawn_mdtest

__all__ = ["run", "main", "SCALES", "multi_app_point"]

SCALES: Dict[str, Dict] = {
    "smoke": {"total_nodes": 4, "cpn": 4, "app_counts": [2, 4], "items": 15},
    "ci": {"total_nodes": 8, "cpn": 5, "app_counts": [2, 4, 8], "items": 20},
    "paper": {"total_nodes": 16, "cpn": 20, "app_counts": [2, 4, 8, 16],
              "items": 100},
}

PHASES = ("mkdir", "create", "stat")


def multi_app_point(system: str, n_apps: int, total_nodes: int, cpn: int,
                    items: int, seed: int = DEFAULT_SEED) -> Dict[str, float]:
    """Run n_apps concurrent mdtests; return overall ops/s per phase."""
    nodes_per_app = max(1, total_nodes // n_apps)
    bed = make_testbed(system, n_apps=n_apps, nodes_per_app=nodes_per_app,
                       clients_per_node=cpn, seed=seed)
    handles = []
    for app in bed.apps:
        config = MdtestConfig(workdir=app.workdir, items_per_client=items,
                              phases=PHASES)
        handles.append(spawn_mdtest(bed.env, app.clients, config))
    # All applications run simultaneously.
    for handle in handles:
        for proc in handle.procs:
            bed.env.run(until=proc)
    results = [h.result() for h in handles]
    overall: Dict[str, float] = {}
    for phase in PHASES:
        total_ops = sum(items * len(app.clients) for app in bed.apps)
        slowest = max(r.phase_elapsed[phase] for r in results)
        overall[phase] = total_ops / slowest if slowest > 0 else 0.0
    return overall


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig08",
        title="Multi-application overall throughput (disjoint workdirs)",
        scale=scale, seed=seed, params=dict(params))
    for system in SYSTEMS:
        for n_apps in params["app_counts"]:
            ops = multi_app_point(system, n_apps, params["total_nodes"],
                                  params["cpn"], params["items"],
                                  seed=seed)
            out.add(system=system, apps=n_apps,
                    mkdir=round(ops["mkdir"]),
                    create=round(ops["create"]),
                    stat=round(ops["stat"]))
    worst_vs_beegfs = min(
        out.value("create", system="pacon", apps=a)
        / out.value("create", system="beegfs", apps=a)
        for a in params["app_counts"])
    worst_vs_indexfs = min(
        out.value("create", system="pacon", apps=a)
        / out.value("create", system="indexfs", apps=a)
        for a in params["app_counts"])
    out.derive("min_create_speedup_vs_beegfs", round(worst_vs_beegfs, 3))
    out.derive("min_create_speedup_vs_indexfs", round(worst_vs_indexfs, 3))
    out.note(f"create: min Pacon/BeeGFS = {worst_vs_beegfs:.1f}x"
             " (paper: >10x), min Pacon/IndexFS ="
             f" {worst_vs_indexfs:.2f}x (paper: >1.07x — the gap narrows"
             " with many apps)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
