"""Fig. 12: MADbench2 runtime breakdown (Pacon vs BeeGFS).

16 nodes × 16 processes, one 4 MB file per process (256 files total).
This is a data-intensive workload: the paper's point is that Pacon does
*not* change overall runtime (files exceed the small-file threshold so
reads/writes are redirected to BeeGFS), and only the "init" (file
creation) share shrinks slightly.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.workloads.madbench import MadbenchConfig, run_madbench

__all__ = ["run", "main", "SCALES", "madbench_point"]

SCALES: Dict[str, Dict] = {
    "smoke": {"nodes": 2, "procs_per_node": 2,
              "file_size": 512 * 1024, "iterations": 2},
    "ci": {"nodes": 4, "procs_per_node": 4,
           "file_size": 1 * 1024 * 1024, "iterations": 3},
    "paper": {"nodes": 16, "procs_per_node": 16,
              "file_size": 4 * 1024 * 1024, "iterations": 4},
}


def madbench_point(system: str, nodes: int, procs_per_node: int,
                   file_size: int, iterations: int,
                   seed: int = DEFAULT_SEED):
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=procs_per_node,
                       workdir_base="/madbench", seed=seed)
    config = MadbenchConfig(workdir="/madbench", file_size=file_size,
                            iterations=iterations)
    result = run_madbench(bed.env, bed.clients, config)
    bed.quiesce()
    return result


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig12",
        title="MADbench2 breakdown (normalized to BeeGFS total runtime)",
        scale=scale, seed=seed, params=dict(params))
    results = {}
    for system in ("beegfs", "pacon"):
        results[system] = madbench_point(
            system, params["nodes"], params["procs_per_node"],
            params["file_size"], params["iterations"], seed=seed)
    norm = results["beegfs"].total_time
    for system in ("beegfs", "pacon"):
        r = results[system]
        shares = r.shares()
        out.add(system=system,
                total_norm=round(r.total_time / norm, 3),
                init_pct=round(shares["init"] * 100, 2),
                write_pct=round(shares["write"] * 100, 1),
                read_pct=round(shares["read"] * 100, 1),
                other_pct=round(shares["other"] * 100, 1))
    ratio = results["pacon"].total_time / norm
    out.derive("total_runtime_ratio", round(ratio, 4))
    out.note(f"Pacon/BeeGFS total runtime = {ratio:.3f}"
             " (paper: almost the same — data-intensive scenario)")
    init_b = results["beegfs"].init_time
    init_p = results["pacon"].init_time
    out.derive("init_time_ratio", round(init_p / init_b, 4))
    out.note(f"init (creation) time: Pacon/BeeGFS = {init_p / init_b:.2f}"
             " (paper: Pacon slightly smaller)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
