"""System-under-test builders shared by all experiment drivers.

``make_testbed`` assembles one of the three evaluated systems — native
BeeGFS, IndexFS-over-BeeGFS (co-located with clients, as §IV deploys it),
or Pacon-over-BeeGFS — on one simulated cluster with the same fabric and
cost model, mirroring the paper's testbed topology (client nodes plus a
1-MDS/3-data BeeGFS cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.baselines.indexfs import IndexFS
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.core.permissions import PermissionSpec
from repro.dfs.beegfs import BeeGFS
from repro.sim.costs import CostModel
from repro.sim.network import Cluster, Node

__all__ = ["AppHandle", "TestBed", "make_testbed", "SYSTEMS",
           "DEFAULT_SEED"]

SYSTEMS = ("beegfs", "indexfs", "pacon")

#: The one seed every bench driver defaults to; ``runner.py`` plumbs a
#: ``--seed`` override through so snapshots state their seed honestly.
DEFAULT_SEED = 0xBEE


@dataclass
class AppHandle:
    """One application: its workspace, nodes, and per-rank clients."""

    workdir: str
    nodes: List[Node]
    clients: List[Any]
    region: Any = None          # ConsistentRegion for Pacon, else None


@dataclass
class TestBed:
    """A deployed system plus its applications."""

    system: str
    cluster: Cluster
    apps: List[AppHandle]
    dfs: Optional[BeeGFS] = None
    indexfs: Optional[IndexFS] = None
    pacon: Optional[PaconDeployment] = None

    @property
    def env(self):
        return self.cluster.env

    @property
    def clients(self) -> List[Any]:
        """All clients of the first app (single-app convenience)."""
        return self.apps[0].clients

    @property
    def app(self) -> AppHandle:
        return self.apps[0]

    def quiesce(self) -> None:
        """Wait for Pacon's asynchronous commits (no-op elsewhere)."""
        if self.pacon is not None:
            for app in self.apps:
                if app.region is not None:
                    self.pacon.quiesce_sync(app.region)


def make_testbed(system: str, n_apps: int = 1, nodes_per_app: int = 2,
                 clients_per_node: int = 20,
                 workdir_base: str = "/app",
                 costs: Optional[CostModel] = None,
                 seed: int = DEFAULT_SEED,
                 n_mds: int = 1, n_data: int = 3,
                 lease_ttl: float = 200e-3,
                 split_threshold: int = 2000,
                 parent_check: bool = True,
                 trace_clients: bool = False,
                 hub: Optional[Any] = None,
                 commit_batch_size: Optional[int] = None,
                 commit_coalesce: Optional[bool] = None,
                 aggregate_multiplier: int = 1) -> TestBed:
    """Build one system with ``n_apps`` applications.

    Application ``k`` gets workspace ``{workdir_base}{k}`` (or exactly
    ``workdir_base`` when there is a single app), ``nodes_per_app``
    dedicated client nodes, and ``clients_per_node`` client processes per
    node — the paper's mdtest geometry.

    Pass a :class:`repro.obs.MetricsHub` as ``hub`` to instrument the
    Pacon deployment (regions get the hub + its tracer, clients are
    attached, and gauge samplers start if the hub has a sample interval).
    The baseline systems accept the argument but are not instrumented.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS}")
    cluster = Cluster(costs=costs, seed=seed)
    workdirs = ([workdir_base] if n_apps == 1
                else [f"{workdir_base}{k}" for k in range(n_apps)])
    app_nodes = [
        [cluster.add_node(f"client{k}_{i}") for i in range(nodes_per_app)]
        for k in range(n_apps)
    ]
    all_nodes = [node for nodes in app_nodes for node in nodes]
    bed = TestBed(system=system, cluster=cluster, apps=[])

    if system == "beegfs":
        bed.dfs = BeeGFS(cluster, n_mds=n_mds, n_data=n_data)
        for k, workdir in enumerate(workdirs):
            bed.dfs.mkdir_sync(workdir, mode=0o777, uid=1000 + k,
                               gid=1000 + k)
            clients = [bed.dfs.client(node, uid=1000 + k, gid=1000 + k)
                       for node in app_nodes[k]
                       for _ in range(clients_per_node)]
            bed.apps.append(AppHandle(workdir=workdir, nodes=app_nodes[k],
                                      clients=clients))
        return bed

    if system == "indexfs":
        # Co-located with the client nodes; LevelDB tables live on BeeGFS
        # (captured by the LSM cost constants), so no separate MDS is
        # simulated — the data servers exist for fairness of node counts.
        bed.indexfs = IndexFS(cluster, all_nodes, lease_ttl=lease_ttl,
                              split_threshold=split_threshold)
        for k, workdir in enumerate(workdirs):
            bed.indexfs.admin_mkdir(workdir, mode=0o777, uid=1000 + k,
                                    gid=1000 + k)
            clients = [bed.indexfs.client(node, uid=1000 + k, gid=1000 + k)
                       for node in app_nodes[k]
                       for _ in range(clients_per_node)]
            bed.apps.append(AppHandle(workdir=workdir, nodes=app_nodes[k],
                                      clients=clients))
        return bed

    # pacon
    bed.dfs = BeeGFS(cluster, n_mds=n_mds, n_data=n_data)
    bed.pacon = PaconDeployment(cluster, bed.dfs)
    commit_kwargs = {}
    if commit_batch_size is not None:
        commit_kwargs["commit_batch_size"] = commit_batch_size
    if commit_coalesce is not None:
        commit_kwargs["commit_coalesce"] = commit_coalesce
    for k, workdir in enumerate(workdirs):
        config = PaconConfig(
            workspace=workdir, uid=1000 + k, gid=1000 + k,
            parent_check=parent_check,
            permissions=PermissionSpec(mode=0o755, uid=1000 + k,
                                       gid=1000 + k),
            aggregate_multiplier=aggregate_multiplier,
            **commit_kwargs)
        region = bed.pacon.create_region(config, app_nodes[k])
        if hub is not None:
            hub.attach_region(region)
        clients = [bed.pacon.client(region, node, trace=trace_clients)
                   for node in app_nodes[k]
                   for _ in range(clients_per_node)]
        if hub is not None:
            for client in clients:
                hub.attach_client(client)
        bed.apps.append(AppHandle(workdir=workdir, nodes=app_nodes[k],
                                  clients=clients, region=region))
    return bed
