"""Benchmark harness: one driver per table/figure of the paper.

Every experiment in §IV (and the two motivation experiments in §II) has a
module here that rebuilds the workload, runs all systems under the same
simulated cluster model, and prints the rows/series the paper reports.

================  ==========================================  ==========
module            paper content                               scale knob
================  ==========================================  ==========
``fig01``         client scalability of BeeGFS/IndexFS        Fig. 1
``fig02``         path traversal cost (motivation)            Fig. 2
``table1``        operation semantics conformance             Table I
``fig07``         single-application mkdir/create/stat        Fig. 7
``fig08``         multi-application throughput                Fig. 8
``fig09``         path traversal with Pacon                   Fig. 9
``fig10``         Pacon overhead vs raw in-memory KV          Fig. 10
``fig11``         file-creation scalability to 320 clients    Fig. 11
``fig12``         MADbench2 runtime breakdown                 Fig. 12
``ablations``     commit-strategy / batch-permission /        extension
                  related-work trade-off studies
================  ==========================================  ==========

Each driver exposes ``run(scale=\"ci\") -> ExperimentResult`` plus a
``main()`` CLI; ``python -m repro.bench.figNN [--paper-scale]`` regenerates
one figure, ``python -m repro.bench.runner`` regenerates everything.
"""

from repro.bench.report import ExperimentResult, format_table, write_markdown
from repro.bench.systems import AppHandle, TestBed, make_testbed

__all__ = [
    "AppHandle",
    "ExperimentResult",
    "TestBed",
    "format_table",
    "make_testbed",
    "write_markdown",
]
