"""Fig. 9: path traversal analysis — now including Pacon.

Same methodology as Fig. 2 (random stat of directories in a fanout-5 tree
of growing depth) with Pacon added.  Paper: BeeGFS −63 %, IndexFS −47 % at
depth 6, while depth has "only a slight impact" on Pacon thanks to batch
permission management + full-path cache keys.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.fig02 import stat_throughput_at_depth
from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED

__all__ = ["run", "main", "SCALES"]

SCALES: Dict[str, Dict] = {
    "smoke": {"depths": [3, 5], "fanout": 3, "nodes": 2, "cpn": 3,
              "stats_per_client": 30},
    "ci": {"depths": [3, 4, 5, 6], "fanout": 3, "nodes": 2, "cpn": 5,
           "stats_per_client": 40},
    "paper": {"depths": [3, 4, 5, 6], "fanout": 5, "nodes": 16, "cpn": 20,
              "stats_per_client": 250},
}


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig09",
        title="Path traversal with batch permissions (stat vs depth)",
        scale=scale, seed=seed, params=dict(params))
    base: Dict[str, float] = {}
    for system in ("beegfs", "indexfs", "pacon"):
        for depth in params["depths"]:
            ops = stat_throughput_at_depth(
                system, depth, params["fanout"], params["nodes"],
                params["cpn"], params["stats_per_client"], seed=seed)
            base.setdefault(system, ops)
            out.add(system=system, depth=depth, ops_per_sec=round(ops),
                    loss_vs_shallowest_pct=round(
                        (1 - ops / base[system]) * 100, 1))
    for system in ("beegfs", "indexfs", "pacon"):
        deepest = out.where(system=system)[-1]
        target = {"beegfs": "~63%", "indexfs": "~47%",
                  "pacon": "slight"}[system]
        out.derive(f"{system}_loss_pct_deepest",
                   deepest["loss_vs_shallowest_pct"])
        out.note(f"{system}: {deepest['loss_vs_shallowest_pct']}% loss at"
                 f" depth {deepest['depth']} (paper: {target})")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
