"""Fig. 10: Pacon overhead vs raw in-memory KV (Memcached).

Single client, no concurrency: mdtest creates a fanout-5 namespace of a
given depth on each file system, and memaslap inserts items into the raw
distributed cache.  Paper: Pacon reaches >64.6 % of raw Memcached
throughput; BeeGFS/IndexFS are far below because their metadata lives on
the local FS / an on-disk KV.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.core.cache import CacheShard, DistributedCache
from repro.sim.network import Cluster
from repro.workloads.mdtest import build_tree
from repro.workloads.memaslap import MemaslapConfig, run_memaslap

__all__ = ["run", "main", "SCALES", "mkdir_throughput", "memaslap_throughput"]

SCALES: Dict[str, Dict] = {
    "smoke": {"depths": [2], "fanout": 4, "nodes": 2},
    "ci": {"depths": [2, 3, 4], "fanout": 4, "nodes": 4},
    "paper": {"depths": [2, 3, 4, 5], "fanout": 5, "nodes": 16},
}


def mkdir_throughput(system: str, fanout: int, depth: int,
                     nodes: int, seed: int = DEFAULT_SEED) -> float:
    """Single client builds the tree; returns mkdirs/second."""
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=1, seed=seed)
    client = bed.clients[0]
    t0 = bed.env.now
    leaves = build_tree(bed.env, client, "/app", fanout=fanout, depth=depth)
    elapsed = bed.env.now - t0
    total = sum(fanout ** level for level in range(1, depth + 1))
    assert len(leaves) == fanout ** depth
    return total / elapsed if elapsed > 0 else 0.0


def memaslap_throughput(operations: int, nodes: int,
                        seed: int = DEFAULT_SEED) -> float:
    """Raw distributed-cache insertions from one client (memaslap -c 1)."""
    cluster = Cluster(seed=seed)
    cache_nodes = [cluster.add_node(f"cache{i}") for i in range(nodes)]
    shards = [CacheShard(cluster, node, capacity_bytes=1 << 28,
                         name=f"raw{i}")
              for i, node in enumerate(cache_nodes)]
    cache = DistributedCache(shards)
    # memaslap runs on one of the cluster nodes, like a Pacon client does.
    return run_memaslap(cluster.env, cache, cache_nodes[0],
                        MemaslapConfig(operations=operations))


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig10",
        title="Pacon overhead vs raw Memcached (single client mkdir)",
        scale=scale, seed=seed, params=dict(params))
    for depth in params["depths"]:
        total_items = sum(params["fanout"] ** level
                          for level in range(1, depth + 1))
        raw = memaslap_throughput(total_items, params["nodes"], seed=seed)
        row: Dict[str, float] = {"depth": depth,
                                 "memcached": round(raw)}
        for system in ("pacon", "beegfs", "indexfs"):
            ops = mkdir_throughput(system, params["fanout"], depth,
                                   params["nodes"], seed=seed)
            row[system] = round(ops)
        row["pacon_vs_memcached_pct"] = round(
            row["pacon"] / row["memcached"] * 100, 1)
        out.add(**row)
    worst = min(r["pacon_vs_memcached_pct"] for r in out.rows)
    out.derive("worst_pacon_vs_memcached_pct", worst)
    out.note(f"Pacon reaches >= {worst}% of raw Memcached throughput"
             " (paper: more than 64.6%)")
    out.note("BeeGFS/IndexFS are far below the in-memory KV because their"
             " metadata writes hit the MDS disk / the DFS-backed LSM")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
