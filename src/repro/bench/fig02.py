"""Fig. 2 (motivation): path traversal cost on BeeGFS and IndexFS.

mdtest builds a namespace with fanout 5; the experiment measures the
throughput of randomly stating the *leaf directories* as depth grows from
3 to 6.  The paper reports >47 % loss at depth 6 (IndexFS) and more for
BeeGFS, attributing it to per-level network I/O.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.workloads.mdtest import build_tree, run_random_stat

__all__ = ["run", "main", "SCALES", "stat_throughput_at_depth"]

SCALES: Dict[str, Dict] = {
    "smoke": {"depths": [3, 4], "fanout": 3, "nodes": 2, "cpn": 3,
              "stats_per_client": 30},
    "ci": {"depths": [3, 4, 5, 6], "fanout": 3, "nodes": 2, "cpn": 5,
           "stats_per_client": 40},
    "paper": {"depths": [3, 4, 5, 6], "fanout": 5, "nodes": 16, "cpn": 20,
              "stats_per_client": 250},
}


def stat_throughput_at_depth(system: str, depth: int, fanout: int,
                             nodes: int, cpn: int, stats_per_client: int,
                             lease_ttl: float = 200e-3,
                             seed: int = DEFAULT_SEED) -> float:
    """Build the tree, then measure random leaf-dir stat throughput."""
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, lease_ttl=lease_ttl, seed=seed)
    builder = bed.clients[0]
    leaves = build_tree(bed.env, builder, "/app", fanout=fanout, depth=depth)
    bed.quiesce()
    return run_random_stat(bed.env, bed.clients, leaves, stats_per_client)


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig02",
        title="Path traversal cost: random stat of leaf dirs vs depth",
        scale=scale, seed=seed, params=dict(params))
    base: Dict[str, float] = {}
    for system in ("beegfs", "indexfs"):
        for depth in params["depths"]:
            ops = stat_throughput_at_depth(
                system, depth, params["fanout"], params["nodes"],
                params["cpn"], params["stats_per_client"], seed=seed)
            base.setdefault(system, ops)
            loss = (1 - ops / base[system]) * 100
            out.add(system=system, depth=depth, ops_per_sec=round(ops),
                    loss_vs_shallowest_pct=round(loss, 1))
    for system in ("beegfs", "indexfs"):
        deepest = out.where(system=system)[-1]
        out.derive(f"{system}_loss_pct_deepest",
                   deepest["loss_vs_shallowest_pct"])
        out.note(f"{system}: {deepest['loss_vs_shallowest_pct']}% loss at"
                 f" depth {deepest['depth']} (paper: >47% at depth 6)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
