"""Extension: robustness of the paper's conclusions to the cost model.

The reproduction's absolute numbers depend on calibrated constants; the
*conclusions* should not.  This driver perturbs the two most influential
constants — per-message network overhead and MDS service time — by
substantial factors and re-measures the headline comparison (creation
throughput, Pacon vs BeeGFS vs IndexFS).  The orderings the paper's
abstract rests on must survive every perturbation.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.sim.costs import CostModel
from repro.workloads.mdtest import MdtestConfig, run_mdtest

__all__ = ["run", "main", "SCALES"]

SCALES: Dict[str, Dict] = {
    "smoke": {"nodes": 2, "cpn": 4, "items": 15,
              "factors": [0.5, 1.0, 2.0]},
    "ci": {"nodes": 2, "cpn": 8, "items": 25,
           "factors": [0.5, 1.0, 2.0]},
    "paper": {"nodes": 8, "cpn": 20, "items": 60,
              "factors": [0.25, 0.5, 1.0, 2.0, 4.0]},
}

PERTURBATIONS = {
    "network": lambda c, f: c.with_overrides(
        net_msg_overhead=c.net_msg_overhead * f,
        net_latency=c.net_latency * f,
        local_loopback=c.local_loopback * f),
    "mds": lambda c, f: c.with_overrides(
        mds_op_service=c.mds_op_service * f,
        mds_read_service=c.mds_read_service * f,
        mds_lookup_service=c.mds_lookup_service * f),
}


def _creation(system: str, costs: CostModel, nodes: int, cpn: int,
              items: int, seed: int = DEFAULT_SEED) -> float:
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, costs=costs, seed=seed)
    config = MdtestConfig(workdir="/app", items_per_client=items,
                          phases=("create",))
    return run_mdtest(bed.env, bed.clients, config).ops("create")


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="sensitivity",
        title="Conclusion robustness under cost-model perturbation",
        scale=scale, seed=seed, params=dict(params))
    base = CostModel.tianhe2_like()
    orderings_hold = True
    for knob, perturb in PERTURBATIONS.items():
        for factor in params["factors"]:
            costs = perturb(base, factor)
            ops = {system: _creation(system, costs, params["nodes"],
                                     params["cpn"], params["items"],
                                     seed=seed)
                   for system in ("beegfs", "indexfs", "pacon")}
            # The paper's core claim: Pacon beats both baselines.  (The
            # IndexFS-vs-BeeGFS ordering is scale-dependent: IndexFS only
            # overtakes once GIGA+ splitting spreads the hot directory,
            # which needs paper-scale entry counts.)
            ordering_ok = (ops["pacon"] > ops["indexfs"]
                           and ops["pacon"] > ops["beegfs"])
            orderings_hold = orderings_hold and ordering_ok
            out.add(knob=knob, factor=factor,
                    beegfs=round(ops["beegfs"]),
                    indexfs=round(ops["indexfs"]),
                    pacon=round(ops["pacon"]),
                    pacon_vs_beegfs=round(ops["pacon"] / ops["beegfs"], 1),
                    pacon_wins="yes" if ordering_ok else "NO")
    out.derive("orderings_hold", 1.0 if orderings_hold else 0.0)
    out.derive("min_pacon_vs_beegfs",
               min(row["pacon_vs_beegfs"] for row in out.rows))
    out.note("the core claim (Pacon > both baselines on creation)"
             + (" holds under every perturbation tested"
                if orderings_hold else " is VIOLATED somewhere — see rows"))
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
