"""Fig. 7: single-application performance (mkdir / create / random stat).

mdtest on 2–16 client nodes × 20 clients per node, shared parent
directory, namespace depth 1; Pacon runs one consistent region.  Paper
headlines: Pacon >76.4× BeeGFS and >8.8× IndexFS on writes, >6.5× BeeGFS
and >2.6× IndexFS on random stat.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, SYSTEMS, make_testbed
from repro.workloads.mdtest import MdtestConfig, run_mdtest

__all__ = ["run", "main", "SCALES", "single_app_point",
           "batching_comparison"]

SCALES: Dict[str, Dict] = {
    "smoke": {"node_counts": [2], "cpn": 5, "items": 20},
    "ci": {"node_counts": [2, 4], "cpn": 10, "items": 25},
    "paper": {"node_counts": [2, 4, 8, 16], "cpn": 20, "items": 100},
}

PHASES = ("mkdir", "create", "stat")


def single_app_point(system: str, nodes: int, cpn: int,
                     items: int, hub: Optional[object] = None,
                     seed: int = DEFAULT_SEED) -> Dict[str, float]:
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, hub=hub, seed=seed)
    config = MdtestConfig(workdir="/app", items_per_client=items,
                          phases=PHASES)
    result = run_mdtest(bed.env, bed.clients, config)
    ops = {phase: result.ops(phase) for phase in PHASES}
    if bed.pacon is not None:
        # Drain the async commit pipeline so commit-latency histograms and
        # resubmission counters cover every queued op, and so the
        # committed-op count below is total.  Reported phase throughput
        # is captured above, before the drain, and the drain happens in
        # every run — instrumented and not — so the two stay
        # simulated-time identical.
        bed.quiesce()
        ops["committed_ops"] = float(bed.app.region.ops_committed)
    return ops


def batching_comparison(scale: str = "smoke",
                        batch_sizes: Sequence[int] = (1, 16),
                        seed: int = DEFAULT_SEED,
                        ) -> Dict[int, Dict[str, object]]:
    """Pacon committed-op throughput as a function of commit batch size.

    Runs the fig. 7 workload once per batch size on identically seeded
    clusters and measures the commit pipeline end to end: total committed
    operations over the simulated time to fully drain (quiesce).  §III.E
    convergence demands the final DFS namespace be identical regardless of
    batch size, so each run also returns a digest of the namespace
    structure — callers should assert the digests match.
    """
    params = SCALES[scale]
    nodes = params["node_counts"][0]
    out: Dict[int, Dict[str, object]] = {}
    for batch_size in batch_sizes:
        bed = make_testbed("pacon", n_apps=1, nodes_per_app=nodes,
                           clients_per_node=params["cpn"],
                           commit_batch_size=batch_size, seed=seed)
        config = MdtestConfig(workdir="/app",
                              items_per_client=params["items"],
                              phases=PHASES)
        run_mdtest(bed.env, bed.clients, config)
        bed.quiesce()
        region = bed.app.region
        elapsed = bed.env.now
        out[batch_size] = {
            "committed_ops": region.ops_committed,
            "elapsed": elapsed,
            "committed_ops_per_sec": region.ops_committed / elapsed,
            "namespace_digest": _namespace_digest(bed.dfs),
        }
    return out


def _namespace_digest(dfs) -> str:
    """Digest of the DFS namespace *structure* (paths, kinds, modes).

    Inode numbers and timestamps depend on commit interleaving and are
    excluded on purpose: §III.E promises the same *namespace*, not the
    same commit schedule.
    """
    entries = sorted(
        (path, "dir" if inode.is_dir else "file", inode.mode, inode.size)
        for path, inode in dfs.namespace.walk("/"))
    digest = hashlib.sha256()
    for entry in entries:
        digest.update(repr(entry).encode())
    return digest.hexdigest()


def run(scale: str = "ci", hub: Optional[object] = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig07",
        title="Single-application throughput (shared dir, depth 1)",
        scale=scale, seed=seed, params=dict(params))
    committed_total = 0.0
    for system in SYSTEMS:
        for nodes in params["node_counts"]:
            ops = single_app_point(system, nodes, params["cpn"],
                                   params["items"], hub=hub, seed=seed)
            committed_total += ops.get("committed_ops", 0.0)
            out.add(system=system, nodes=nodes,
                    clients=nodes * params["cpn"],
                    mkdir=round(ops["mkdir"]),
                    create=round(ops["create"]),
                    stat=round(ops["stat"]))
    out.derive("pacon_committed_ops", committed_total)
    # Ratio notes at the largest point (the paper's headline comparisons).
    biggest = params["node_counts"][-1]
    by = {s: out.where(system=s, nodes=biggest)[0] for s in SYSTEMS}
    for phase in ("create", "stat"):
        p, b, i = (by["pacon"][phase], by["beegfs"][phase],
                   by["indexfs"][phase])
        out.derive(f"{phase}_speedup_vs_beegfs", round(p / b, 3))
        out.derive(f"{phase}_speedup_vs_indexfs", round(p / i, 3))
        out.note(f"{phase} at {biggest} nodes: Pacon/BeeGFS ="
                 f" {p / b:.1f}x (paper: >{76.4 if phase == 'create' else 6.5}x),"
                 f" Pacon/IndexFS = {p / i:.1f}x"
                 f" (paper: >{8.8 if phase == 'create' else 2.6}x)")
    if hub is not None:
        out.metrics = hub.export()
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
