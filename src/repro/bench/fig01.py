"""Fig. 1 (motivation): client scalability of BeeGFS and IndexFS.

The paper ran file creation with growing client counts on a 16-node
cluster (BeeGFS with a single MDS; IndexFS on all client nodes over
BeeGFS) and reported the throughput *multiple* relative to the one-client
case — showing both flatten long before client counts stop growing.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.workloads.mdtest import MdtestConfig, run_mdtest

__all__ = ["run", "main", "SCALES"]

# (nodes, clients_per_node) sweep points; first point is the baseline.
SCALES: Dict[str, Dict] = {
    "smoke": {"points": [(1, 1), (1, 4), (2, 4)], "items": 15},
    "ci": {"points": [(1, 1), (1, 4), (2, 8), (4, 10)], "items": 25},
    "paper": {"points": [(1, 1), (1, 20), (2, 20), (4, 20), (8, 20),
                         (16, 20)], "items": 100},
}


def _creation_throughput(system: str, nodes: int, cpn: int,
                         items: int, seed: int = DEFAULT_SEED) -> float:
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, seed=seed)
    config = MdtestConfig(workdir="/app", items_per_client=items,
                          phases=("create",))
    result = run_mdtest(bed.env, bed.clients, config)
    return result.ops("create")


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="fig01",
        title="Client scalability (creation throughput multiple vs 1 client)",
        scale=scale, seed=seed, params=dict(params))
    base: Dict[str, float] = {}
    for system in ("beegfs", "indexfs"):
        for nodes, cpn in params["points"]:
            ops = _creation_throughput(system, nodes, cpn, params["items"],
                                       seed=seed)
            clients = nodes * cpn
            if clients == 1:
                base[system] = ops
            out.add(system=system, clients=clients, nodes=nodes,
                    ops_per_sec=round(ops),
                    multiple=round(ops / base[system], 2))
    max_clients = max(n * c for n, c in params["points"])
    for system in ("beegfs", "indexfs"):
        peak = max(r["multiple"] for r in out.where(system=system))
        out.derive(f"{system}_peak_multiple", peak)
        out.note(f"{system}: peak speedup {peak}x at up to {max_clients}"
                 f" clients — far from linear (paper Fig. 1 shape)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
