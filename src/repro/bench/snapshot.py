"""Machine-readable benchmark snapshots (``BENCH_<label>.json``).

One snapshot captures everything a bench run claims: per-experiment
scenario parameters, the RNG seed, every result row (simulated ops/s per
system/curve-point), the named headline claims (``derived``), plus
harness-side wall-clock and peak RSS.  The simulated payload is
deterministic — two same-seed runs produce byte-identical
:func:`simulated_view` serializations — while everything under ``host``
keys varies run to run and is excluded from that guarantee.

``repro.bench.runner`` writes snapshots, ``repro.bench.baseline`` diffs
and folds them (``pacon-bench compare`` / ``pacon-bench history``), and
:func:`repro.obs.schema.validate_bench` is the format contract.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.schema import BENCH_SCHEMA, validate_bench

__all__ = ["SnapshotError", "build_snapshot", "simulated_view", "to_json",
           "write_snapshot", "load_snapshot", "default_label",
           "snapshot_path", "peak_rss_bytes", "collect_snapshot_paths",
           "BENCH_SCHEMA"]


class SnapshotError(Exception):
    """A snapshot file is unreadable, non-conformant, or incomparable."""


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process, or None if unknowable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kibibytes everywhere else.
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def default_label() -> str:
    """Short git SHA of HEAD, or ``local`` outside a checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "local"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "local"


def snapshot_path(label: str, directory: str = ".") -> str:
    """Canonical snapshot path for a label (``BENCH_<label>.json``)."""
    return os.path.join(directory, f"BENCH_{label}.json")


def build_snapshot(results: Sequence[Any], *, label: str, scale: str,
                   seed: int,
                   wall_clock_s: Optional[float] = None) -> Dict[str, Any]:
    """Assemble a ``pacon.bench/v1`` document from experiment results.

    ``results`` are :class:`repro.bench.report.ExperimentResult` objects
    (anything with a ``to_snapshot()`` returning the per-experiment
    record works).  The returned document is JSON-normalized, so it
    compares equal to its own load_snapshot(write_snapshot(...)) round
    trip.
    """
    experiments = {r.experiment: r.to_snapshot() for r in results}
    host: Dict[str, Any] = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "platform": sys.platform,
    }
    rss = peak_rss_bytes()
    if rss is not None:
        host["peak_rss_bytes"] = rss
    if wall_clock_s is not None:
        host["wall_clock_s"] = round(wall_clock_s, 3)
    doc = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "scale": scale,
        "seed": seed,
        "experiments": experiments,
        "host": host,
    }
    return json.loads(json.dumps(doc))


def simulated_view(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic subset of a snapshot.

    Strips the top-level ``host`` section and ``label`` plus every
    per-experiment ``host`` — what remains is a pure function of
    (code, scale, seed), and two same-seed runs serialize to identical
    bytes under ``json.dumps(..., sort_keys=True)``.
    """
    view = json.loads(json.dumps(doc))
    view.pop("label", None)
    view.pop("host", None)
    for record in view.get("experiments", {}).values():
        if isinstance(record, dict):
            record.pop("host", None)
    return view


def to_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def write_snapshot(doc: Dict[str, Any], path: str) -> str:
    """Schema-validate and write a snapshot; returns the path."""
    problems = validate_bench(doc)
    if problems:
        raise SnapshotError(
            "refusing to write non-conformant snapshot: "
            + "; ".join(problems[:5])
            + ("" if len(problems) <= 5 else f" (+{len(problems) - 5} more)"))
    with open(path, "w") as fh:
        fh.write(to_json(doc))
    return path


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load and validate one snapshot; raise :class:`SnapshotError`.

    Mismatched schema versions are refused with a clear error rather
    than producing a nonsense comparison downstream.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise SnapshotError(f"{path}: document is"
                            f" {type(doc).__name__}, expected object")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise SnapshotError(
            f"{path}: schema is {schema!r} but this pacon-bench speaks"
            f" {BENCH_SCHEMA!r} — regenerate the snapshot with this"
            " tree's runner (or compare with a matching version)")
    problems = validate_bench(doc)
    if problems:
        raise SnapshotError(
            f"{path}: non-conformant snapshot: " + "; ".join(problems[:5]))
    return doc


def collect_snapshot_paths(directory: str = ".") -> List[str]:
    """All ``BENCH_*.json`` files in a directory, sorted by name."""
    out = []
    for name in sorted(os.listdir(directory or ".")):
        if name.startswith("BENCH_") and name.endswith(".json"):
            out.append(os.path.join(directory, name))
    return out
