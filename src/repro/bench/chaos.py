"""Chaos-scenario bench driver: fault injection as a tracked experiment.

Runs every packaged :mod:`repro.chaos.scenarios` scenario at a named
scale and reports, per scenario, what the invariant checker proved: the
convergence verdict, faults injected, ops lost to crashes, MDS replays
absorbed by commit-token dedup, and messages dropped by the
delivery-time network semantics.  All of these are **simulated metrics**
— two same-seed runs produce byte-identical rows — so the snapshot
(``benchmarks/baseline_chaos.json``) gates fault-handling semantics in
CI the same way ``baseline_kernel.json`` gates kernel event counts.

Deliberately *not* registered in ``repro.bench.runner.DRIVERS``: the
default bench suite and its baseline stay untouched; chaos has its own
snapshot emitter (``benchmarks/bench_chaos_scenarios.py``) and its own
compare gate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED
from repro.chaos.scenarios import SCENARIOS, run_scenario

__all__ = ["SCALES", "run"]

#: Workload shape per scale.  ``smoke`` is the CI chaos gate — small
#: enough for seconds, large enough that every fault window overlaps
#: live client traffic.  ``paper`` stretches the span so Poisson
#: node-crash schedules draw several faults.
SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {"items": 24, "pacing": 200e-6, "n_nodes": 3,
              "clients_per_node": 2},
    "ci": {"items": 40, "pacing": 200e-6, "n_nodes": 3,
           "clients_per_node": 2},
    "paper": {"items": 96, "pacing": 200e-6, "n_nodes": 4,
              "clients_per_node": 3},
}


def run(scale: str = "smoke", seed: int = DEFAULT_SEED,
        hub: Optional[Any] = None) -> ExperimentResult:
    """Run all chaos scenarios at ``scale``; one row per scenario."""
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="chaos",
        title="Fault injection: post-recovery convergence",
        scale=scale, seed=seed, params=dict(params))
    scenarios_ok = 0
    total_faults = total_lost = total_replays = total_dropped = 0
    for name in SCENARIOS:
        # The hub (if any) observes the last scenario only — each
        # scenario builds a fresh world, and attaching every one would
        # pile five worlds' counters into a single export.
        result = run_scenario(
            name, seed=seed,
            hub=hub if name == SCENARIOS[-1] else None, **params)
        scenarios_ok += int(result.ok)
        total_faults += len(result.fault_records)
        total_lost += result.lost_ops
        total_replays += result.replays
        total_dropped += result.dropped
        out.add(scenario=name, ok=int(result.ok),
                faults=len(result.fault_records),
                lost_ops=result.lost_ops, replays=result.replays,
                net_dropped=result.dropped,
                entries=int(result.report.checks.get("entries", 0)),
                problems=len(result.report.problems))
        if result.report.problems:
            for problem in result.report.problems:
                out.note(f"{name}: INVARIANT VIOLATION: {problem}")
    out.derive("scenarios_ok", scenarios_ok)
    out.derive("scenarios_total", len(SCENARIOS))
    out.derive("total_faults", total_faults)
    out.derive("total_lost_ops", total_lost)
    out.derive("total_replays", total_replays)
    out.derive("total_net_dropped", total_dropped)
    out.note(f"{scenarios_ok}/{len(SCENARIOS)} scenarios converged"
             f" ({total_faults} faults, {total_lost} ops lost,"
             f" {total_replays} replays deduplicated,"
             f" {total_dropped} messages dropped)")
    return out
