"""Flash-crowd elasticity bench: autoscaled vs. statically provisioned.

The same duration-driven, stat-heavy workload (a diurnal baseline with a
flash-crowd window burst) runs against three provisioning modes of one
identical cluster topology:

* ``static_min`` — the region holds only the base nodes for the whole
  run: cheapest, and the flash crowd saturates the base nodes' NICs;
* ``static_peak`` — the region holds base + warm-pool nodes from t=0:
  best tail latency, paid for every node-second of the run;
* ``autoscale`` — starts at base, and :class:`repro.core.autoscale.
  Autoscaler` grows onto the warm pool when the flash crowd pushes
  utilization over the watermark, then retires the extra nodes when the
  burst passes.

Clients stay pinned to the base nodes in every mode (growth adds cache
shards and commit processes, not application processes), so the three
modes run the *same* op sequence and differ only in membership.  The
latency lever is real physics, not bookkeeping: with more shards, the
consistent-hash ring spreads stat traffic across more NICs/worker pools,
pulling queueing delay off the saturated base nodes.

Reported per mode: getattr p50/p99 over the whole run, **steady-state
flash p99** (samples inside the flash window after a fixed adaptation
exclusion — the window is identical for all three modes, so static runs
are measured by exactly the same clock), and provisioned cost in
node-seconds (the step integral of ``region.membership_log``).  The
adaptation exclusion is the honest part of the story: while the
controller is still reacting (sense streak + grow migrations, ~the
first few ms of the burst) the autoscaled run serves static_min-grade
tail latency, and the whole-run p99 shows that.  Once converged it
serves static_peak-grade latency at a fraction of the cost — which is
what the steady-state column isolates, the way an SRE would measure an
SLO after a scaling event.  The headline derived metrics record both
acceptance axes — steady-state p99 vs. both static modes, and cost vs.
``static_peak``.

All arithmetic is integer/float only (the diurnal curve is a triangle
wave, not a sine) so snapshots are byte-identical across platforms and
the CI compare gate can hold the simulated section exactly.

Deliberately *not* registered in ``repro.bench.runner.DRIVERS`` — like
chaos, this driver has its own emitter (``benchmarks/bench_elastic.py``)
and its own baseline/compare gate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED
from repro.core.autoscale import Autoscaler
from repro.core.config import PaconConfig
from repro.core.deploy import PaconDeployment
from repro.dfs.beegfs import BeeGFS
from repro.obs.hub import MetricsHub
from repro.sim.core import run_sync
from repro.sim.network import Cluster

__all__ = ["SCALES", "MODES", "run"]

MODES = ("static_min", "static_peak", "autoscale")

#: Workload shape per scale.  ``horizon`` is the driven span (simulated
#: seconds); the flash-crowd window sits at fixed fractions of it so
#: every scale exercises ramp-up, saturation, and ramp-down.
SCALES: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "n_base": 2, "n_peak": 6, "clients_per_node": 10,
        "files_per_client": 4, "horizon": 0.10,
        "base_think": 400e-6, "flash_think": 5e-6,
        "flash_start": 0.45, "flash_len": 0.30, "diurnal_amp": 0.3,
        "setup_pacing": 600e-6, "sample_interval": 0.5e-3,
        "adaptation_exclusion": 10e-3,
    },
    "ci": {
        "n_base": 2, "n_peak": 6, "clients_per_node": 10,
        "files_per_client": 4, "horizon": 0.14,
        "base_think": 400e-6, "flash_think": 5e-6,
        "flash_start": 0.45, "flash_len": 0.30, "diurnal_amp": 0.3,
        "setup_pacing": 600e-6, "sample_interval": 0.5e-3,
        "adaptation_exclusion": 10e-3,
    },
    "paper": {
        "n_base": 3, "n_peak": 9, "clients_per_node": 12,
        "files_per_client": 6, "horizon": 0.25,
        "base_think": 400e-6, "flash_think": 5e-6,
        "flash_start": 0.45, "flash_len": 0.30, "diurnal_amp": 0.3,
        "setup_pacing": 600e-6, "sample_interval": 1e-3,
        "adaptation_exclusion": 15e-3,
    },
}


def _think(now: float, params: Dict[str, Any]) -> float:
    """Per-op think time at simulated time ``now``.

    Baseline load follows a one-period triangle "diurnal" wave (pure
    arithmetic — no libm, so cross-platform byte-identical), and the
    flash-crowd window multiplies load by dividing think time to near
    zero: inside the window clients issue back-to-back stats.
    """
    horizon = params["horizon"]
    x = min(now / horizon, 1.0)
    flash_start = params["flash_start"]
    if flash_start <= x < flash_start + params["flash_len"]:
        return params["flash_think"]
    amp = params["diurnal_amp"]
    tri = 1.0 - abs(2.0 * x - 1.0)           # 0 at the edges, 1 mid-run
    load = (1.0 - amp) + 2.0 * amp * tri     # in [1-amp, 1+amp]
    return params["base_think"] / load


def _client_loop(client, base_dir: str, params: Dict[str, Any],
                 steady: List[float]):
    """Setup (private dir + files), then stat-loop until the horizon.

    Duration-driven on purpose: every provisioning mode spans the same
    simulated time, so node-seconds compare apples to apples and the
    flash window hits identically.  Stat latencies whose op started
    inside the steady-state flash window (flash start + adaptation
    exclusion .. flash end — the same wall-clock window in every mode)
    are appended to ``steady``."""
    env = client.env
    files = params["files_per_client"]
    horizon = params["horizon"]
    window_lo = (params["flash_start"] * horizon
                 + params["adaptation_exclusion"])
    window_hi = (params["flash_start"] + params["flash_len"]) * horizon
    yield from client.mkdir(base_dir)
    for i in range(files):
        yield from client.create(f"{base_dir}/f{i:04d}")
        yield env.timeout(params["setup_pacing"])
    i = 0
    while env.now < horizon:
        t0 = env.now
        yield from client.getattr(f"{base_dir}/f{i % files:04d}")
        if window_lo <= t0 < window_hi:
            steady.append(env.now - t0)
        i += 1
        yield env.timeout(_think(env.now, params))


def _autoscale_config(params: Dict[str, Any]) -> PaconConfig:
    return PaconConfig(
        workspace="/elastic",
        autoscale_min_nodes=params["n_base"],
        autoscale_max_nodes=params["n_peak"],
        autoscale_interval=0.5e-3,
        autoscale_cooldown=2e-3,
        autoscale_util_high=0.60,
        autoscale_util_low=0.25,
        # Clients stay pinned to the base nodes, publishing only to the
        # local commit queue — growth adds cache/NIC capacity, not MDS or
        # commit throughput.  A backlog-triggered grow here would quiesce
        # against an MDS-bound drain and stall the controller, so this
        # bench parks the backlog watermark out of reach and lets the
        # utilization signal (the one growth can actually fix) drive.
        autoscale_backlog_high=1000.0,
        autoscale_backlog_low=8.0,
        autoscale_up_consecutive=2,
        autoscale_down_consecutive=4,
    )


def _run_mode(mode: str, params: Dict[str, Any], seed: int,
              hub: Optional[MetricsHub] = None) -> Dict[str, Any]:
    """One full world build + drive for one provisioning mode."""
    own_hub = hub if hub is not None else MetricsHub(
        sample_interval=params["sample_interval"])
    cluster = Cluster(seed=seed)
    dfs = BeeGFS(cluster, n_mds=1, n_data=2)
    base = [cluster.add_node(f"en{i}") for i in range(params["n_base"])]
    # The warm pool exists (idle) in every mode, so cluster topology —
    # and therefore the DES event sequence feeding each client op — is
    # identical across modes.
    pool = [cluster.add_node(f"ep{i}")
            for i in range(params["n_peak"] - params["n_base"])]
    config = _autoscale_config(params)
    deployment = PaconDeployment(cluster, dfs)
    region_nodes = list(base) + (list(pool) if mode == "static_peak"
                                 else [])
    region = deployment.create_region(config, region_nodes)
    own_hub.attach_region(region)
    clients = []
    for node in base:
        for _ in range(params["clients_per_node"]):
            client = deployment.client(region, node)
            own_hub.attach_client(client)
            clients.append(client)
    scaler = None
    if mode == "autoscale":
        warm = iter(pool)
        scaler = Autoscaler(deployment, region,
                            node_factory=lambda: next(warm))
        scaler.start()
    env = cluster.env
    steady: List[float] = []
    procs = [env.process(_client_loop(client, f"/elastic/c{idx:02d}",
                                      params, steady),
                         label=f"elastic:{mode}:c{idx}")
             for idx, client in enumerate(clients)]

    def driver():
        for proc in procs:
            yield proc  # re-raises any workload failure
        yield from deployment.quiesce(region)
        region.close()

    run_sync(env, driver(), label=f"elastic:{mode}")
    env.run()  # drain (commit/sampler/autoscaler processes exit)
    own_hub.stop_samplers()
    span = env.now
    stats = own_hub.stats.sketch("client.op.getattr.latency").summary()
    peak_nodes = max(count for _, count in region.membership_log)
    import numpy as np
    arr = np.asarray(steady)
    row = {
        "mode": mode,
        "nodes_start": len(region_nodes),
        "nodes_peak": peak_nodes,
        "node_seconds": round(region.node_seconds(until=span), 6),
        "stats_ops": int(stats["count"]),
        "p50_us": round(stats["p50"] * 1e6, 3),
        "p99_us": round(stats["p99"] * 1e6, 3),
        "steady_ops": int(arr.size),
        "steady_p99_us": (round(float(np.percentile(arr, 99)) * 1e6, 3)
                          if arr.size else 0.0),
        "committed": region.ops_committed,
        "scale_ups": scaler.scale_ups if scaler else 0,
        "scale_downs": scaler.scale_downs if scaler else 0,
        "migrated": sum(a.moved for a in scaler.actions) if scaler else 0,
    }
    if scaler is not None and scaler.failed:
        row["scale_failed"] = scaler.failed
    return row


def run(scale: str = "smoke", seed: int = DEFAULT_SEED,
        hub: Optional[MetricsHub] = None) -> ExperimentResult:
    """Run the flash-crowd workload under all three provisioning modes.

    ``hub``, when given, observes the ``autoscale`` mode's world (the
    interesting one: it has the ``autoscale.*`` series and actions); the
    static modes always record into private hubs.
    """
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="elastic",
        title="Flash crowd: autoscaled vs static provisioning",
        scale=scale, seed=seed, params=dict(params))
    rows: Dict[str, Dict[str, Any]] = {}
    for mode in MODES:
        row = _run_mode(mode, params, seed,
                        hub=hub if mode == "autoscale" else None)
        rows[mode] = row
        out.add(**row)
    sp99_min = rows["static_min"]["steady_p99_us"]
    sp99_peak = rows["static_peak"]["steady_p99_us"]
    sp99_auto = rows["autoscale"]["steady_p99_us"]
    cost_min = rows["static_min"]["node_seconds"]
    cost_peak = rows["static_peak"]["node_seconds"]
    cost_auto = rows["autoscale"]["node_seconds"]
    out.derive("steady_p99_speedup_vs_static_min",
               round(sp99_min / sp99_auto, 4) if sp99_auto else 0.0)
    out.derive("steady_p99_ratio_vs_static_peak",
               round(sp99_auto / sp99_peak, 4) if sp99_peak else 0.0)
    out.derive("cost_ratio_vs_static_peak",
               round(cost_auto / cost_peak, 4) if cost_peak else 0.0)
    out.derive("node_seconds_saved_vs_peak",
               round(cost_peak - cost_auto, 6))
    out.derive("whole_run_p99_ratio_vs_static_min",
               round(rows["autoscale"]["p99_us"]
                     / rows["static_min"]["p99_us"], 4)
               if rows["static_min"]["p99_us"] else 0.0)
    out.derive("scale_ups", rows["autoscale"]["scale_ups"])
    out.derive("scale_downs", rows["autoscale"]["scale_downs"])
    out.note(f"steady-state flash p99: autoscale {sp99_auto:.0f}us vs"
             f" static_min {sp99_min:.0f}us / static_peak"
             f" {sp99_peak:.0f}us; cost {cost_auto:.4f} node-s vs min"
             f" {cost_min:.4f} / peak {cost_peak:.4f}")
    return out
