"""Ablation studies for the design choices DESIGN.md calls out.

* **Ablation A — commit discipline**: how often a dependent (barrier)
  operation appears determines how much of partial consistency's async
  win survives.  Sweeping a barrier every K creates interpolates between
  Pacon's independent commit (K=∞) and commit-everything-synchronously.
* **Ablation B — batch permissions**: Pacon with the traditional
  layer-by-layer check executed inside the distributed cache (one KV get
  per level) vs batch permission management, across namespace depths.
* **Ablation C — related-work trade-offs**: ShardFS and LocoFS remove
  traversal RPCs too; this measures what each pays for it (ShardFS:
  N×-replicated mkdir; LocoFS: the single DMS ceiling).
* **Ablation D — MDS scaling vs client scaling**: §II.B argues that adding
  metadata servers cannot keep up with client growth; this sweeps BeeGFS
  MDS counts against a fixed 320-client load and compares with Pacon on
  the same clients.
* **Ablation E — the BatchFS/DeltaFS approximation**: the paper treats the
  private-namespace systems as "IndexFS co-located with clients using bulk
  insertion"; this measures IndexFS with bulk insertion on/off against
  Pacon on an N-N create workload — bulk insertion narrows the gap but
  gives up the shared consistent view Pacon keeps.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Generator, List

from repro.baselines.locofs import LocoFS
from repro.baselines.shardfs import ShardFS
from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.sim.network import Cluster
from repro.workloads.mdtest import build_tree, run_random_stat

__all__ = ["run_commit_ablation", "run_permission_ablation",
           "run_related_ablation", "run_mds_scaling_ablation",
           "run_bulk_insertion_ablation", "run_all", "main", "SCALES"]

SCALES: Dict[str, Dict] = {
    "smoke": {"nodes": 2, "cpn": 4, "items": 20, "barrier_every": [0, 5],
              "depths": [3, 5], "fanout": 3, "stats": 30, "servers": 3,
              "mds_counts": [1, 2]},
    "ci": {"nodes": 2, "cpn": 8, "items": 30, "barrier_every": [0, 20, 5, 1],
           "depths": [3, 4, 5, 6], "fanout": 3, "stats": 40, "servers": 4,
           "mds_counts": [1, 2, 4]},
    "paper": {"nodes": 8, "cpn": 20, "items": 100,
              "barrier_every": [0, 50, 10, 1], "depths": [3, 4, 5, 6],
              "fanout": 5, "stats": 100, "servers": 16,
              "mds_counts": [1, 2, 4, 8]},
}


# --------------------------------------------------------------- Ablation A
def _create_with_barriers(bed, items: int, barrier_every: int) -> float:
    """Each client creates ``items`` files; a barrier op every K creates."""
    env = bed.env
    from repro.sim.resources import Barrier

    sync = Barrier(env, parties=len(bed.clients), name="abl")
    t_state = {"start": None, "end": 0.0}

    def proc(rank: int, client) -> Generator[Any, Any, None]:
        yield sync.arrive()
        if t_state["start"] is None:
            t_state["start"] = env.now
        for i in range(items):
            yield from client.create(f"/app/f.{rank}.{i}")
            if barrier_every and (i + 1) % barrier_every == 0:
                # A dependent operation: readdir barriers the region.
                yield from client.readdir("/app")
        yield sync.arrive()
        t_state["end"] = max(t_state["end"], env.now)

    procs = [env.process(proc(rank, cl), label=f"abl:{rank}")
             for rank, cl in enumerate(bed.clients)]
    for p in procs:
        env.run(until=p)
    elapsed = t_state["end"] - t_state["start"]
    total = items * len(bed.clients)
    return total / elapsed if elapsed > 0 else 0.0


def run_commit_ablation(scale: str = "ci",
                        seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="ablA",
        title="Commit discipline: barrier frequency vs create throughput",
        scale=scale, seed=seed, params=dict(params))
    base = None
    for barrier_every in params["barrier_every"]:
        bed = make_testbed("pacon", n_apps=1,
                           nodes_per_app=params["nodes"],
                           clients_per_node=params["cpn"], seed=seed)
        ops = _create_with_barriers(bed, params["items"], barrier_every)
        if base is None:
            base = ops
        out.add(barrier_every_k_creates=barrier_every or "never",
                create_ops_per_sec=round(ops),
                fraction_of_async=round(ops / base, 3))
    out.derive("min_fraction_of_async",
               min(row["fraction_of_async"] for row in out.rows))
    out.note("barriers per op collapse throughput toward synchronous"
             " commit — why Table I reserves them for rmdir/readdir")
    return out


# --------------------------------------------------------------- Ablation B
def run_permission_ablation(scale: str = "ci",
                            seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="ablB",
        title="Batch permissions vs per-level checks in the cache",
        scale=scale, seed=seed, params=dict(params))
    for mode in ("batch", "hierarchical"):
        base = None
        for depth in params["depths"]:
            bed = make_testbed("pacon", n_apps=1,
                               nodes_per_app=params["nodes"],
                               clients_per_node=params["cpn"], seed=seed)
            for client in bed.clients:
                client.hierarchical_permissions = (mode == "hierarchical")
            leaves = build_tree(bed.env, bed.clients[0], "/app",
                                fanout=params["fanout"], depth=depth)
            ops = run_random_stat(bed.env, bed.clients, leaves,
                                  params["stats"])
            if base is None:
                base = ops
            out.add(mode=mode, depth=depth, stat_ops_per_sec=round(ops),
                    loss_pct=round((1 - ops / base) * 100, 1))
    deep = params["depths"][-1]
    batch_loss = out.value("loss_pct", mode="batch", depth=deep)
    hier_loss = out.value("loss_pct", mode="hierarchical", depth=deep)
    out.derive("batch_loss_pct_deepest", batch_loss)
    out.derive("hierarchical_loss_pct_deepest", hier_loss)
    out.note(f"at depth {deep}: batch check loses {batch_loss}% vs"
             f" {hier_loss}% for per-level checks — batch permission"
             " management removes the depth dependence (Motivation 2)")
    return out


# --------------------------------------------------------------- Ablation C
def run_related_ablation(scale: str = "ci",
                         seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="ablC",
        title="ShardFS/LocoFS trade-offs (related work §II.C)",
        scale=scale, seed=seed, params=dict(params))

    # The two worlds get distinct-but-derived streams so the one --seed
    # still states everything the run depended on.
    def shard_world(n_servers):
        cluster = Cluster(seed=seed)
        servers = [cluster.add_node(f"s{i}") for i in range(n_servers)]
        client = cluster.add_node("client")
        return cluster, ShardFS(cluster, servers), client

    def loco_world(n_fms):
        cluster = Cluster(seed=seed + 1)
        dms = cluster.add_node("dms")
        fms = [cluster.add_node(f"f{i}") for i in range(n_fms)]
        client = cluster.add_node("client")
        return cluster, LocoFS(cluster, dms, fms), client

    from repro.sim.core import run_sync

    # (1) stat depth-insensitivity for both.
    for name, make_world in (("shardfs", shard_world),
                             ("locofs", loco_world)):
        for depth in (params["depths"][0], params["depths"][-1]):
            cluster, fs, client = make_world(params["servers"])

            def scenario(depth=depth, fs=fs, client=client,
                         cluster=cluster):
                path = ""
                for i in range(depth):
                    path += f"/d{i}"
                    yield from fs.mkdir(client, path)
                yield from fs.create(client, path + "/leaf")
                t0 = cluster.env.now
                for _ in range(50):
                    yield from fs.getattr(client, path + "/leaf")
                return 50 / (cluster.env.now - t0)

            ops = run_sync(cluster.env, scenario())
            out.add(system=name, metric=f"stat@depth{depth}",
                    value=round(ops))

    # (2) ShardFS mkdir replication cost vs server count.
    for n in (1, params["servers"]):
        cluster, fs, client = shard_world(n)

        def scenario(fs=fs, client=client, cluster=cluster):
            t0 = cluster.env.now
            for i in range(20):
                yield from fs.mkdir(client, f"/d{i}")
            return 20 / (cluster.env.now - t0)

        ops = run_sync(cluster.env, scenario())
        out.add(system="shardfs", metric=f"mkdir@{n}servers",
                value=round(ops))

    # (3) LocoFS DMS ceiling: directory ops only touch the single DMS, so
    # adding file metadata servers cannot speed them up.
    for n in (1, params["servers"]):
        cluster, fs, client_node = loco_world(n)
        done = {"count": 0}

        def dir_maker(i, fs=fs, client=client_node):
            yield from fs.mkdir(client, f"/d{i}")
            done["count"] += 1

        t0 = cluster.env.now
        procs = [cluster.env.process(dir_maker(i)) for i in range(200)]
        for p in procs:
            cluster.env.run(until=p)
        ops = 200 / (cluster.env.now - t0)
        out.add(system="locofs", metric=f"mkdir@{n}fms", value=round(ops))

    out.derive("shardfs_mkdir_replication_slowdown", round(
        out.value("value", system="shardfs", metric="mkdir@1servers")
        / out.value("value", system="shardfs",
                    metric=f"mkdir@{params['servers']}servers"), 3))
    out.derive("locofs_fms_mkdir_gain", round(
        out.value("value", system="locofs",
                  metric=f"mkdir@{params['servers']}fms")
        / out.value("value", system="locofs", metric="mkdir@1fms"), 3))
    out.note("ShardFS: flat stats but mkdir pays per-server replication;"
             " LocoFS: flat stats but directory ops bottleneck on the"
             " single DMS regardless of FMS count — the trade-offs Pacon"
             " avoids")
    return out


# --------------------------------------------------------------- Ablation D
def run_mds_scaling_ablation(scale: str = "ci",
                             seed: int = DEFAULT_SEED) -> ExperimentResult:
    """§II.B: scaling the MDS cluster vs scaling with the clients.

    BeeGFS creation throughput grows (sub-linearly: one shared parent
    directory is owned by one MDS; per-rank directories spread) with MDS
    count, but Pacon on the *same* client nodes — zero extra hardware —
    stays far ahead because the clients themselves absorb the load.
    """
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="ablD",
        title="MDS-cluster scaling vs client-side absorption",
        scale=scale, seed=seed, params=dict(params))

    # mkdir builds per-rank directories (owned by the /app MDS); the
    # measured create phase then spreads across MDSes by directory hash —
    # the friendliest possible case for multi-MDS BeeGFS.
    def create_in_own_dirs(bed):
        env = bed.env
        from repro.sim.resources import Barrier

        sync = Barrier(env, parties=len(bed.clients), name="ablD")
        t = {"start": None, "end": 0.0}
        items = params["items"]

        def proc(rank, client):
            yield from client.mkdir(f"/app/rank{rank}")
            yield sync.arrive()
            if t["start"] is None:
                t["start"] = env.now
            for i in range(items):
                yield from client.create(f"/app/rank{rank}/f{i}")
            yield sync.arrive()
            t["end"] = max(t["end"], env.now)

        procs = [env.process(proc(rank, cl))
                 for rank, cl in enumerate(bed.clients)]
        for p in procs:
            env.run(until=p)
        return items * len(bed.clients) / (t["end"] - t["start"])

    for n_mds in params["mds_counts"]:
        bed = make_testbed("beegfs", n_apps=1, nodes_per_app=params["nodes"],
                           clients_per_node=params["cpn"], n_mds=n_mds,
                           seed=seed)
        ops = create_in_own_dirs(bed)
        out.add(system=f"beegfs-{n_mds}mds", mds=n_mds,
                create_ops_per_sec=round(ops))
    bed = make_testbed("pacon", n_apps=1, nodes_per_app=params["nodes"],
                       clients_per_node=params["cpn"], seed=seed)
    ops = create_in_own_dirs(bed)
    out.add(system="pacon-0-extra-mds", mds=0, create_ops_per_sec=round(ops))
    best_beegfs = max(r["create_ops_per_sec"] for r in out.rows
                      if r["mds"] > 0)
    out.derive("pacon_vs_best_beegfs", round(ops / best_beegfs, 3))
    out.note(f"Pacon with zero added hardware beats BeeGFS with"
             f" {params['mds_counts'][-1]} MDSes by"
             f" {ops / best_beegfs:.1f}x — static MDS scaling cannot keep"
             " up with client counts (paper §II.B)")
    return out


# --------------------------------------------------------------- Ablation E
def run_bulk_insertion_ablation(scale: str = "ci",
                                seed: int = DEFAULT_SEED
                                ) -> ExperimentResult:
    """The BatchFS/DeltaFS approximation: IndexFS + bulk insertion.

    N-N creation (each rank its own directory — the private-namespace
    sweet spot).  Bulk insertion buffers creates client-side and ships
    batches, closing much of the gap to Pacon, but the buffered entries
    are invisible to other clients until flushed — the consistency cost
    §II.B calls out.
    """
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="ablE",
        title="IndexFS bulk insertion (BatchFS/DeltaFS proxy) vs Pacon",
        scale=scale, seed=seed, params=dict(params))
    from repro.sim.core import run_sync
    from repro.sim.resources import Barrier

    def nn_create(bed, clients, items, bulk):
        env = bed.env
        sync = Barrier(env, parties=len(clients), name="nn")
        t = {"start": None, "end": 0.0}

        def proc(rank, client):
            yield from client.mkdir(f"/app/rank{rank}")
            if bulk:
                client.bulk_mode = True
                client.bulk_batch_size = 64
            yield sync.arrive()
            if t["start"] is None:
                t["start"] = env.now
            for i in range(items):
                yield from client.create(f"/app/rank{rank}/f{i}")
            if bulk:
                yield from client.flush_bulk()
            yield sync.arrive()
            t["end"] = max(t["end"], env.now)

        procs = [env.process(proc(rank, cl))
                 for rank, cl in enumerate(clients)]
        for p in procs:
            env.run(until=p)
        return items * len(clients) / (t["end"] - t["start"])

    for label, bulk in (("indexfs", False), ("indexfs+bulk", True)):
        bed = make_testbed("indexfs", n_apps=1,
                           nodes_per_app=params["nodes"],
                           clients_per_node=params["cpn"], seed=seed)
        ops = nn_create(bed, bed.clients, params["items"], bulk)
        out.add(system=label, create_ops_per_sec=round(ops))

    bed = make_testbed("pacon", n_apps=1, nodes_per_app=params["nodes"],
                       clients_per_node=params["cpn"], seed=seed)
    ops = nn_create(bed, bed.clients, params["items"], bulk=False)
    out.add(system="pacon", create_ops_per_sec=round(ops))

    plain = out.value("create_ops_per_sec", system="indexfs")
    bulked = out.value("create_ops_per_sec", system="indexfs+bulk")
    pacon = out.value("create_ops_per_sec", system="pacon")
    out.derive("bulk_insertion_gain", round(bulked / plain, 3))
    out.derive("pacon_vs_bulk", round(pacon / bulked, 3))
    out.note(f"bulk insertion buys IndexFS {bulked / plain:.1f}x on N-N"
             f" creates (Pacon/bulk = {pacon / bulked:.2f}x) — the"
             " BatchFS/DeltaFS trade: raw batch throughput in exchange for"
             " deferred visibility and no shared consistent view, which is"
             " why the paper excludes them as general-purpose systems")
    return out


def run_all(scale: str = "ci",
            seed: int = DEFAULT_SEED) -> List[ExperimentResult]:
    results = []
    for ablation in (run_commit_ablation, run_permission_ablation,
                     run_related_ablation, run_mds_scaling_ablation,
                     run_bulk_insertion_ablation):
        t0 = time.perf_counter()
        result = ablation(scale, seed=seed)
        result.host.setdefault("wall_clock_s",
                               round(time.perf_counter() - t0, 3))
        results.append(result)
    return results


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    for result in run_all(scale):
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
