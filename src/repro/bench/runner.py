"""Run every experiment and write the consolidated report.

``python -m repro.bench.runner [--paper-scale] [--out report.md]
[--metrics-out metrics.json]``
"""

from __future__ import annotations

import inspect
import sys
import time
from typing import List, Optional

from repro.bench import ablations, fig01, fig02, fig07, fig08, fig09, \
    fig10, fig11, fig12, latency, sensitivity, table1
from repro.bench.report import ExperimentResult, write_markdown

__all__ = ["run_all", "main"]

DRIVERS = [fig01, fig02, table1, fig07, fig08, fig09, fig10, fig11, fig12,
           latency, sensitivity]

#: Simulated seconds between observability gauge samples when a bench run
#: collects metrics.
METRICS_SAMPLE_INTERVAL = 200e-6


def _accepts_hub(run_fn) -> bool:
    return "hub" in inspect.signature(run_fn).parameters


def run_all(scale: str = "ci", verbose: bool = True,
            include_ablations: bool = True,
            metrics_path: Optional[str] = None) -> List[ExperimentResult]:
    hub = None
    if metrics_path is not None:
        from repro.obs.hub import MetricsHub
        hub = MetricsHub(sample_interval=METRICS_SAMPLE_INTERVAL)
    results: List[ExperimentResult] = []
    for driver in DRIVERS:
        # perf_counter, not time.time: harness phase timings must be
        # monotonic so they survive wall-clock adjustments (NTP steps).
        t0 = time.perf_counter()
        if hub is not None and _accepts_hub(driver.run):
            result = driver.run(scale, hub=hub)
        else:
            result = driver.run(scale)
        results.append(result)
        if verbose:
            print(result.render())
            print(f"  [{time.perf_counter() - t0:.1f}s]\n")
    if include_ablations:
        for result in ablations.run_all(scale):
            results.append(result)
            if verbose:
                print(result.render())
                print()
    if hub is not None and metrics_path is not None:
        with open(metrics_path, "w") as fh:
            fh.write(hub.to_json(indent=2))
        if verbose:
            print(f"metrics written to {metrics_path}")
    return results


def main() -> None:  # pragma: no cover - CLI
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    out_path = None
    if "--out" in sys.argv:
        out_path = sys.argv[sys.argv.index("--out") + 1]
    metrics_path = None
    if "--metrics-out" in sys.argv:
        metrics_path = sys.argv[sys.argv.index("--metrics-out") + 1]
    results = run_all(scale, metrics_path=metrics_path)
    if out_path:
        write_markdown(results, out_path)
        print(f"report written to {out_path}")


if __name__ == "__main__":  # pragma: no cover
    main()
