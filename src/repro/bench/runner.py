"""Run every experiment and write the consolidated report + snapshot.

``python -m repro.bench.runner [--scale ci|smoke|paper] [--seed N]
[--out report.md] [--metrics-out metrics.json] [--bench-out snap.json]
[--label LABEL] [--no-snapshot]``

Besides the human-readable markdown report, the runner collects every
driver's structured record into a versioned, schema-validated
``BENCH_<git-sha-or-label>.json`` snapshot (see ``repro.bench.snapshot``)
that ``pacon-bench compare``/``history`` and the CI perf gate consume.
"""

from __future__ import annotations

import argparse
import inspect
import time
from typing import Any, List, Optional

from repro.bench import ablations, fig01, fig02, fig07, fig08, fig09, \
    fig10, fig11, fig12, latency, sensitivity, staleness, table1
from repro.bench.report import ExperimentResult, write_markdown
from repro.bench.systems import DEFAULT_SEED

__all__ = ["run_all", "write_snapshot_file", "main", "DEFAULT_SEED"]

DRIVERS = [fig01, fig02, table1, fig07, fig08, fig09, fig10, fig11, fig12,
           latency, sensitivity, staleness]

#: Simulated seconds between observability gauge samples when a bench run
#: collects metrics.
METRICS_SAMPLE_INTERVAL = 200e-6


def _accepts(run_fn, name: str) -> bool:
    return name in inspect.signature(run_fn).parameters


def run_all(scale: str = "ci", verbose: bool = True,
            include_ablations: bool = True,
            metrics_path: Optional[str] = None,
            seed: int = DEFAULT_SEED) -> List[ExperimentResult]:
    hub = None
    if metrics_path is not None:
        from repro.obs.hub import MetricsHub
        hub = MetricsHub(sample_interval=METRICS_SAMPLE_INTERVAL)
    results: List[ExperimentResult] = []

    def finish(result: ExperimentResult, t0: float) -> None:
        # perf_counter, not time.time: harness phase timings must be
        # monotonic so they survive wall-clock adjustments (NTP steps).
        result.host.setdefault("wall_clock_s",
                               round(time.perf_counter() - t0, 3))
        if result.seed is None:
            result.seed = seed
        results.append(result)
        if verbose:
            print(result.render())
            print(f"  [{result.host['wall_clock_s']:.1f}s]\n")

    for driver in DRIVERS:
        t0 = time.perf_counter()
        kwargs = {}
        if hub is not None and _accepts(driver.run, "hub"):
            kwargs["hub"] = hub
        if _accepts(driver.run, "seed"):
            kwargs["seed"] = seed
        finish(driver.run(scale, **kwargs), t0)
    if include_ablations:
        for result in ablations.run_all(scale, seed=seed):
            # ablations.run_all stamps per-result wall clocks itself.
            finish(result, time.perf_counter())
    if hub is not None and metrics_path is not None:
        with open(metrics_path, "w") as fh:
            fh.write(hub.to_json(indent=2))
        if verbose:
            print(f"metrics written to {metrics_path}")
    return results


def write_snapshot_file(results: List[ExperimentResult], *, scale: str,
                        seed: int, path: Optional[str] = None,
                        label: Optional[str] = None,
                        wall_clock_s: Optional[float] = None) -> str:
    """Build, validate, and write one ``BENCH_*.json`` snapshot.

    With no explicit ``path``, writes ``BENCH_<label>.json`` in the
    current directory, defaulting the label to the short git SHA.
    """
    from repro.bench import snapshot as snap

    label = label or snap.default_label()
    path = path or snap.snapshot_path(label)
    doc = snap.build_snapshot(results, label=label, scale=scale, seed=seed,
                              wall_clock_s=wall_clock_s)
    return snap.write_snapshot(doc, path)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="Regenerate every experiment; write the markdown"
                    " report and the BENCH_*.json snapshot.")
    parser.add_argument("--scale", choices=("smoke", "ci", "paper"),
                        default="ci")
    parser.add_argument("--paper-scale", action="store_true",
                        help="legacy alias for --scale paper")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="RNG seed for every driver's clusters"
                             " (default 0xBEE)")
    parser.add_argument("--out", default=None,
                        help="write a markdown report here")
    parser.add_argument("--metrics-out", default=None,
                        help="write a MetricsHub JSON artifact here")
    parser.add_argument("--bench-out", default=None, metavar="SNAPSHOT",
                        help="snapshot path (default: BENCH_<label>.json)")
    parser.add_argument("--label", default=None,
                        help="snapshot label (default: short git SHA)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="skip writing the BENCH_*.json snapshot")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    scale = "paper" if args.paper_scale else args.scale
    t0 = time.perf_counter()
    results = run_all(scale, metrics_path=args.metrics_out, seed=args.seed)
    wall_clock = time.perf_counter() - t0
    if args.out:
        write_markdown(results, args.out)
        print(f"report written to {args.out}")
    if not args.no_snapshot:
        path = write_snapshot_file(results, scale=scale, seed=args.seed,
                                   path=args.bench_out, label=args.label,
                                   wall_clock_s=wall_clock)
        print(f"bench snapshot written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
