"""Run every experiment and write the consolidated report.

``python -m repro.bench.runner [--paper-scale] [--out report.md]``
"""

from __future__ import annotations

import sys
import time
from typing import List

from repro.bench import ablations, fig01, fig02, fig07, fig08, fig09, \
    fig10, fig11, fig12, latency, sensitivity, table1
from repro.bench.report import ExperimentResult, write_markdown

__all__ = ["run_all", "main"]

DRIVERS = [fig01, fig02, table1, fig07, fig08, fig09, fig10, fig11, fig12,
           latency, sensitivity]


def run_all(scale: str = "ci", verbose: bool = True,
            include_ablations: bool = True) -> List[ExperimentResult]:
    results: List[ExperimentResult] = []
    for driver in DRIVERS:
        t0 = time.time()
        result = driver.run(scale)
        results.append(result)
        if verbose:
            print(result.render())
            print(f"  [{time.time() - t0:.1f}s]\n")
    if include_ablations:
        for result in ablations.run_all(scale):
            results.append(result)
            if verbose:
                print(result.render())
                print()
    return results


def main() -> None:  # pragma: no cover - CLI
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    out_path = None
    if "--out" in sys.argv:
        out_path = sys.argv[sys.argv.index("--out") + 1]
    results = run_all(scale)
    if out_path:
        write_markdown(results, out_path)
        print(f"report written to {out_path}")


if __name__ == "__main__":  # pragma: no cover
    main()
