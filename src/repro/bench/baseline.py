"""Run-to-run regression detection over bench snapshots.

``pacon-bench compare A.json B.json`` diffs two ``pacon.bench/v1``
snapshots.  Simulated metrics (rows and derived claims) come from a
deterministic DES, so they compare **exactly** by default; per-metric
relative tolerances can be granted with ``--tolerance METRIC=REL``
(``METRIC`` may be an ``fnmatch`` glob).  The one built-in exception:
quantile metrics derived from the streaming sketches carry a one-bucket
relative tolerance (:data:`SKETCH_TOLERANCES`) because sketch
percentiles are quantized to log-bucket boundaries.  Host metrics (wall-clock,
peak RSS) are noisy by nature and only flag when the candidate grows
beyond a relative threshold *and* an absolute floor.

``pacon-bench history`` folds many snapshots into per-metric
trajectories (first/last/delta plus a sparkline) so the repo's perf
story over a sequence of commits is inspectable in one command.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.report import format_table
from repro.bench.snapshot import SnapshotError, load_snapshot

__all__ = ["Metric", "Delta", "Comparison", "flatten_metrics",
           "compare_snapshots", "compare_files", "render_comparison",
           "load_history", "history_rows", "render_history", "sparkline",
           "SIMULATED", "HOST",
           "DEFAULT_HOST_THRESHOLD", "WALL_CLOCK_FLOOR_S", "RSS_FLOOR_BYTES",
           "SKETCH_BUCKET_TOLERANCE", "SKETCH_TOLERANCES"]

SIMULATED = "simulated"
HOST = "host"

#: Quantile metrics read off the streaming sketches are quantized to
#: log-bucket boundaries (growth factor 1.05): a sample landing one
#: bucket over — e.g. because an unrelated change shifted a latency by a
#: hair — snaps the reported percentile by up to one bucket width, even
#: though the distribution is effectively unchanged.  Compare therefore
#: grants sketch-derived percentiles a built-in one-bucket relative
#: tolerance; sketch *counts* stay exact (the DES is deterministic).
#: Explicit ``--tolerance`` grants with a longer (more specific) pattern
#: override these defaults.
SKETCH_BUCKET_TOLERANCE = 0.05
SKETCH_TOLERANCES: Dict[str, float] = {
    "*.stale_p*": SKETCH_BUCKET_TOLERANCE,
    "*.lag_p*": SKETCH_BUCKET_TOLERANCE,
    "*.vis_commit_p*": SKETCH_BUCKET_TOLERANCE,
    "*.vis_global_p*": SKETCH_BUCKET_TOLERANCE,
    "*.derived.consistency.staleness_p99": SKETCH_BUCKET_TOLERANCE,
    "*.derived.staleness_growth_vs_batch": SKETCH_BUCKET_TOLERANCE,
}

#: Relative growth of a host metric tolerated before flagging (50 %).
DEFAULT_HOST_THRESHOLD = 0.5
#: Host regressions additionally need an absolute delta beyond these
#: floors — a 20 ms driver doubling to 40 ms is noise, not a regression.
WALL_CLOCK_FLOOR_S = 1.0
RSS_FLOOR_BYTES = 64 << 20


@dataclass
class Metric:
    """One comparable number extracted from a snapshot."""

    name: str                 # e.g. "fig07.rows[4].create"
    value: float
    kind: str                 # SIMULATED or HOST
    context: str = ""         # human label: the row's string fields


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_metrics(doc: Dict[str, Any]) -> Dict[str, Metric]:
    """Flatten a snapshot into named metrics.

    Row order inside an experiment is deterministic (the DES replays the
    same schedule for the same seed), so ``rows[i]`` is a stable address.
    """
    out: Dict[str, Metric] = {}
    for exp_name in sorted(doc.get("experiments", {})):
        record = doc["experiments"][exp_name]
        for i, row in enumerate(record.get("rows") or []):
            context = " ".join(f"{k}={v}" for k, v in row.items()
                               if isinstance(v, str))
            for key, value in row.items():
                if _is_number(value):
                    name = f"{exp_name}.rows[{i}].{key}"
                    out[name] = Metric(name, float(value), SIMULATED,
                                       context)
        for key, value in (record.get("derived") or {}).items():
            if _is_number(value):
                name = f"{exp_name}.derived.{key}"
                out[name] = Metric(name, float(value), SIMULATED)
        for key, value in (record.get("host") or {}).items():
            if _is_number(value):
                name = f"{exp_name}.host.{key}"
                out[name] = Metric(name, float(value), HOST)
    for key, value in (doc.get("host") or {}).items():
        if _is_number(value):
            out[f"host.{key}"] = Metric(f"host.{key}", float(value), HOST)
    return out


@dataclass
class Delta:
    """One metric's fate across a comparison."""

    metric: str
    kind: str
    baseline: Optional[float]
    candidate: Optional[float]
    rel_change: Optional[float]          # signed (candidate-baseline)/|base|
    threshold: float
    status: str                          # ok | regression | added | removed
    detail: str = ""


@dataclass
class Comparison:
    """Everything ``pacon-bench compare`` reports."""

    baseline_label: str
    candidate_label: str
    deltas: List[Delta] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for delta in self.deltas:
            out[delta.status] = out.get(delta.status, 0) + 1
        return out

    def to_doc(self) -> Dict[str, Any]:
        """Machine output for ``--json``."""
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "ok": self.ok,
            "counts": self.counts(),
            "warnings": self.warnings,
            "regressions": [vars(d) for d in self.regressions],
            "deltas": [vars(d) for d in self.deltas
                       if d.status != "ok"],
        }


def _tolerance_for(name: str, tolerances: Dict[str, float]) -> float:
    """Most specific tolerance granted for a metric (exact, then glob)."""
    if name in tolerances:
        return tolerances[name]
    best = 0.0
    best_len = -1
    for pattern, tol in tolerances.items():
        if fnmatch.fnmatchcase(name, pattern) and len(pattern) > best_len:
            best, best_len = tol, len(pattern)
    return best if best_len >= 0 else 0.0


def _rel(baseline: float, candidate: float) -> float:
    if baseline == candidate:
        return 0.0
    return (candidate - baseline) / max(abs(baseline), 1e-12)


def compare_snapshots(baseline: Dict[str, Any], candidate: Dict[str, Any],
                      tolerances: Optional[Dict[str, float]] = None,
                      host_threshold: float = DEFAULT_HOST_THRESHOLD,
                      ignore_host: bool = False) -> Comparison:
    """Diff two snapshot documents.

    Raises :class:`SnapshotError` on mismatched schema versions; seed or
    scale mismatches produce warnings (the exact-compare of simulated
    metrics will surface the differences anyway).
    """
    a_schema = baseline.get("schema")
    b_schema = candidate.get("schema")
    if a_schema != b_schema:
        raise SnapshotError(
            f"cannot compare schema {a_schema!r} against {b_schema!r} —"
            " regenerate both snapshots with the same pacon-bench version")
    tolerances = {**SKETCH_TOLERANCES, **(tolerances or {})}
    comp = Comparison(baseline_label=str(baseline.get("label")),
                      candidate_label=str(candidate.get("label")))
    for key in ("seed", "scale"):
        if baseline.get(key) != candidate.get(key):
            comp.warnings.append(
                f"{key} differs: baseline={baseline.get(key)!r}"
                f" candidate={candidate.get(key)!r} — simulated metrics"
                " are only expected to match for identical runs")
    a_metrics = flatten_metrics(baseline)
    b_metrics = flatten_metrics(candidate)
    for name in sorted(set(a_metrics) | set(b_metrics)):
        a = a_metrics.get(name)
        b = b_metrics.get(name)
        kind = (a or b).kind
        if kind == HOST and ignore_host:
            continue
        if a is None:
            comp.deltas.append(Delta(
                metric=name, kind=kind, baseline=None, candidate=b.value,
                rel_change=None, threshold=0.0, status="added",
                detail="metric only in candidate"))
            continue
        if b is None:
            status = "removed" if kind == HOST else "regression"
            comp.deltas.append(Delta(
                metric=name, kind=kind, baseline=a.value, candidate=None,
                rel_change=None, threshold=0.0, status=status,
                detail="metric disappeared from candidate"))
            continue
        rel = _rel(a.value, b.value)
        if kind == SIMULATED:
            tol = _tolerance_for(name, tolerances)
            ok = abs(rel) <= tol
            detail = ""
            if not ok:
                allowance = ("exactly" if tol == 0.0
                             else f"within ±{tol:.1%}")
                detail = (f"{a.value:g} -> {b.value:g} ({rel:+.2%});"
                          f" simulated metrics must match {allowance}")
                if a.context:
                    detail += f" [{a.context}]"
            comp.deltas.append(Delta(
                metric=name, kind=kind, baseline=a.value,
                candidate=b.value, rel_change=rel, threshold=tol,
                status="ok" if ok else "regression", detail=detail))
        else:
            floor = (RSS_FLOOR_BYTES if name.endswith("peak_rss_bytes")
                     else WALL_CLOCK_FLOOR_S)
            grew = (rel > host_threshold
                    and (b.value - a.value) > floor)
            detail = ""
            if grew:
                detail = (f"{a.value:g} -> {b.value:g} ({rel:+.1%});"
                          f" host metrics may grow at most"
                          f" {host_threshold:.0%} (and {floor:g} absolute)")
            comp.deltas.append(Delta(
                metric=name, kind=kind, baseline=a.value,
                candidate=b.value, rel_change=rel,
                threshold=host_threshold,
                status="regression" if grew else "ok", detail=detail))
    return comp


def compare_files(baseline_path: str, candidate_path: str,
                  **kwargs: Any) -> Comparison:
    """Load, validate, and diff two snapshot files."""
    return compare_snapshots(load_snapshot(baseline_path),
                             load_snapshot(candidate_path), **kwargs)


def render_comparison(comp: Comparison) -> str:
    """Human output: summary line, warnings, and a table of anomalies."""
    counts = comp.counts()
    total = len(comp.deltas)
    lines = [f"compare: baseline={comp.baseline_label}"
             f" candidate={comp.candidate_label}"]
    lines.extend(f"warning: {w}" for w in comp.warnings)
    summary = (f"{total} metrics compared:"
               f" {counts.get('ok', 0)} ok,"
               f" {counts.get('regression', 0)} regression(s),"
               f" {counts.get('added', 0)} added,"
               f" {counts.get('removed', 0)} removed")
    lines.append(summary)
    anomalies = [d for d in comp.deltas if d.status != "ok"]
    if anomalies:
        rows = []
        for delta in anomalies:
            rows.append({
                "status": delta.status,
                "kind": delta.kind,
                "metric": delta.metric,
                "baseline": "-" if delta.baseline is None
                            else f"{delta.baseline:g}",
                "candidate": "-" if delta.candidate is None
                             else f"{delta.candidate:g}",
                "change": "-" if delta.rel_change is None
                          else f"{delta.rel_change:+.2%}",
                "threshold": f"{delta.threshold:.2%}",
            })
        lines.append(format_table(rows))
        for delta in comp.regressions:
            if delta.detail:
                lines.append(f"REGRESSION {delta.metric}: {delta.detail}")
    lines.append("verdict: " + ("OK — no regressions" if comp.ok else
                                f"{len(comp.regressions)} regression(s)"))
    return "\n".join(lines)


# ------------------------------------------------------------------ history

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Optional[float]]) -> str:
    """Unicode sparkline; ``·`` marks snapshots missing the metric."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for value in values:
        if value is None:
            out.append("·")
        elif span == 0:
            out.append(SPARK_LEVELS[3])
        else:
            idx = int((value - lo) / span * (len(SPARK_LEVELS) - 1))
            out.append(SPARK_LEVELS[idx])
    return "".join(out)


def _sort_key(doc: Dict[str, Any], path: str) -> Tuple[str, float, str]:
    generated = str((doc.get("host") or {}).get("generated_at") or "")
    try:
        mtime = os.path.getmtime(path)
    except OSError:
        mtime = 0.0
    return (generated, mtime, str(doc.get("label")))


def load_history(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load snapshots and order them oldest-first (generation time,
    falling back to file mtime)."""
    docs = [(load_snapshot(path), path) for path in paths]
    docs.sort(key=lambda pair: _sort_key(*pair))
    return [doc for doc, _ in docs]


def history_rows(docs: Sequence[Dict[str, Any]],
                 metric_glob: Optional[str] = None) -> List[Dict[str, Any]]:
    """Per-metric trajectory rows across an ordered snapshot sequence.

    Default selection is the headline claims (``*.derived.*``) plus the
    harness wall clock; this includes the consistency lens headline
    ``staleness.derived.consistency.staleness_p99``, so staleness drift
    across commits sparklines without any extra flag.  Pass an
    ``fnmatch`` glob to widen (e.g. ``'fig07.*'`` or ``'*'``).
    """
    flattened = [flatten_metrics(doc) for doc in docs]
    names: List[str] = []
    seen = set()
    for metrics in flattened:
        for name in metrics:
            if name in seen:
                continue
            if metric_glob is not None:
                # Exact equality first: row metrics contain "[i]", which
                # fnmatch would misread as a character class.
                if name != metric_glob and \
                        not fnmatch.fnmatchcase(name, metric_glob):
                    continue
            elif ".derived." not in name and name != "host.wall_clock_s":
                continue
            seen.add(name)
            names.append(name)
    rows = []
    for name in sorted(names):
        values = [m[name].value if name in m else None for m in flattened]
        present = [v for v in values if v is not None]
        first, last = present[0], present[-1]
        rows.append({
            "metric": name,
            "runs": len(present),
            "first": first,
            "last": last,
            "delta": f"{_rel(first, last):+.1%}" if first != last else "=",
            "trend": sparkline(values),
        })
    return rows


def render_history(docs: Sequence[Dict[str, Any]],
                   metric_glob: Optional[str] = None) -> str:
    labels = " -> ".join(str(doc.get("label")) for doc in docs)
    rows = history_rows(docs, metric_glob)
    if not rows:
        return (f"{len(docs)} snapshot(s): {labels}\n"
                "(no metrics matched)")
    return (f"{len(docs)} snapshot(s): {labels}\n"
            + format_table(rows))
