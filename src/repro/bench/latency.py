"""Extension: per-operation latency distributions.

Benefit 3 of partial consistency (§III.A) is that asynchronous commit
"allows the latency of the metadata servers to be hidden".  The paper only
reports throughput; this extension measures what the claim implies
directly: the client-observed latency distribution of create operations
under a fixed concurrent load, for all three systems.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, SYSTEMS, make_testbed
from repro.sim.resources import Barrier
from repro.sim.stats import Histogram

__all__ = ["run", "main", "SCALES"]

SCALES: Dict[str, Dict] = {
    "smoke": {"nodes": 2, "cpn": 4, "items": 25},
    "ci": {"nodes": 2, "cpn": 10, "items": 40},
    "paper": {"nodes": 16, "cpn": 20, "items": 100},
}


def measure_create_latency(system: str, nodes: int, cpn: int,
                           items: int, seed: int = DEFAULT_SEED
                           ) -> Histogram:
    bed = make_testbed(system, n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, seed=seed)
    env = bed.env
    hist = Histogram(f"{system}.create")
    sync = Barrier(env, parties=len(bed.clients), name="lat")

    def proc(rank, client):
        yield sync.arrive()
        for i in range(items):
            t0 = env.now
            yield from client.create(f"/app/f.{rank}.{i}")
            hist.observe(env.now - t0)
        yield sync.arrive()

    procs = [env.process(proc(rank, cl))
             for rank, cl in enumerate(bed.clients)]
    for p in procs:
        env.run(until=p)
    return hist


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="latency",
        title="Create latency distribution under load (extension)",
        scale=scale, seed=seed, params=dict(params))
    stats = {}
    for system in SYSTEMS:
        hist = measure_create_latency(system, params["nodes"],
                                      params["cpn"], params["items"],
                                      seed=seed)
        summary = hist.summary()
        stats[system] = summary
        out.add(system=system,
                mean_us=round(summary["mean"] * 1e6, 1),
                p50_us=round(summary["p50"] * 1e6, 1),
                p99_us=round(summary["p99"] * 1e6, 1),
                max_us=round(summary["max"] * 1e6, 1))
    ratio = stats["beegfs"]["p50"] / stats["pacon"]["p50"]
    out.derive("p50_speedup_vs_beegfs", round(ratio, 3))
    out.derive("pacon_p99_us", round(stats["pacon"]["p99"] * 1e6, 1))
    out.note(f"median create latency: Pacon is {ratio:.0f}x lower than"
             " BeeGFS — asynchronous commit hides the MDS entirely"
             " (paper §III.A Benefit 3)")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
