"""Result containers and ASCII/markdown rendering for the bench harness."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "write_markdown", "fmt_ops",
           "metrics_sidecar_path"]


@dataclass
class ExperimentResult:
    """Rows produced by one experiment driver."""

    experiment: str                      # e.g. "fig07"
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    scale: str = "ci"
    #: Optional MetricsHub export captured while the driver ran; written
    #: as a JSON sidecar next to the markdown report.
    metrics: Optional[Dict[str, Any]] = None
    #: RNG seed the driver's clusters were built with (snapshots must
    #: state their seed honestly).
    seed: Optional[int] = None
    #: Scenario parameters (the driver's SCALES entry for this run).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Named headline claims (speedup factors, crossovers, committed-op
    #: counts) — the metrics `pacon-bench compare`/`history` track first.
    derived: Dict[str, Any] = field(default_factory=dict)
    #: Harness-side facts (wall-clock seconds, ...).  Everything under
    #: ``host`` is excluded from the snapshot's deterministic view.
    host: Dict[str, Any] = field(default_factory=dict)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def derive(self, name: str, value: Any) -> None:
        """Record one named headline claim (a simulated metric)."""
        self.derived[name] = value

    def to_snapshot(self) -> Dict[str, Any]:
        """JSON-normalized record for ``BENCH_*.json`` snapshots.

        Round-trips through :mod:`json` so tuples in ``params`` become
        lists — the in-memory record equals the re-loaded one, which is
        what the byte-identity guarantee is stated over.
        """
        record = {
            "title": self.title,
            "scale": self.scale,
            "seed": self.seed,
            "params": self.params,
            "rows": self.rows,
            "derived": self.derived,
            "notes": self.notes,
            "host": self.host,
        }
        return json.loads(json.dumps(record))

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def where(self, **match: Any) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                out.append(row)
        return out

    def value(self, field_name: str, **match: Any) -> Any:
        hits = self.where(**match)
        if len(hits) != 1:
            raise KeyError(f"{len(hits)} rows match {match!r}")
        return hits[0][field_name]

    def render(self) -> str:
        header = f"== {self.experiment}: {self.title} [{self.scale}] =="
        body = format_table(self.rows)
        notes = "".join(f"\n  note: {n}" for n in self.notes)
        return f"{header}\n{body}{notes}"


def fmt_ops(value: float) -> str:
    """Human throughput formatting (ops/s)."""
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.1f}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    def line(cells):
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))
    out = [line(columns), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def metrics_sidecar_path(path: str) -> str:
    """Path of the metrics JSON written alongside a markdown report."""
    return path + ".metrics.json"


def write_markdown(results: Sequence[ExperimentResult], path: str) -> None:
    """Write experiment results as a markdown report.

    Results carrying a :attr:`ExperimentResult.metrics` export also get a
    stable-ordered JSON sidecar (``<path>.metrics.json``) keyed by
    experiment name.
    """
    lines: List[str] = ["# Benchmark report", ""]
    metrics: Dict[str, Any] = {}
    for result in results:
        lines.append(f"## {result.experiment}: {result.title}")
        lines.append("")
        if result.rows:
            columns: List[str] = []
            for row in result.rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            lines.append("| " + " | ".join(columns) + " |")
            lines.append("|" + "---|" * len(columns))
            for row in result.rows:
                lines.append("| " + " | ".join(
                    _fmt(row.get(c, "")) for c in columns) + " |")
        for note in result.notes:
            lines.append(f"\n> {note}")
        if result.metrics is not None:
            metrics[result.experiment] = result.metrics
            lines.append(f"\n> metrics: see"
                         f" {metrics_sidecar_path(path)}"
                         f" [{result.experiment}]")
        lines.append("")
    if metrics:
        with open(metrics_sidecar_path(path), "w") as fh:
            json.dump(metrics, fh, sort_keys=True, indent=2)
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
