"""Staleness vs. consistency configuration (the observability figure).

Pacon's partial-consistency bet is that the DFS copy may lag the cache
as long as the lag is bounded and drains.  This driver measures that
bound directly: the fig. 7 workload runs on identically seeded Pacon
clusters while the commit batch size — the knob that trades commit
efficiency against DFS freshness — sweeps upward.  Each point runs with
its own private :class:`MetricsHub` so the consistency lens (staleness
age / version lag per cache tier, visibility latency per op class) is
attributed to exactly one configuration.

Expected shape: larger batches hold mutations in the commit queue
longer, so staleness-at-read age and committed-visibility latency climb
with batch size while the namespace still converges (every run ends
quiesced, pending mutations zero).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.report import ExperimentResult
from repro.bench.systems import DEFAULT_SEED, make_testbed
from repro.workloads.mdtest import MdtestConfig, run_mdtest

__all__ = ["run", "main", "SCALES", "staleness_point"]

SCALES: Dict[str, Dict] = {
    "smoke": {"nodes": 2, "cpn": 4, "items": 15, "batch_sizes": [1, 8]},
    "ci": {"nodes": 2, "cpn": 8, "items": 25, "batch_sizes": [1, 4, 16]},
    "paper": {"nodes": 4, "cpn": 16, "items": 50,
              "batch_sizes": [1, 4, 16, 64]},
}

PHASES = ("mkdir", "create", "stat")

#: Gauge cadence for the per-point hubs.  Kept local — the bench runner
#: owns its own copy of this constant and importing it here would be a
#: cycle (runner imports drivers).
SAMPLE_INTERVAL = 200e-6


def staleness_point(nodes: int, cpn: int, items: int, batch_size: int,
                    seed: int = DEFAULT_SEED) -> Dict[str, object]:
    """One fully instrumented Pacon run at one commit batch size.

    Returns the run's ``consistency`` export section plus the drained
    elapsed time.
    """
    from repro.obs.hub import MetricsHub

    hub = MetricsHub(sample_interval=SAMPLE_INTERVAL)
    bed = make_testbed("pacon", n_apps=1, nodes_per_app=nodes,
                       clients_per_node=cpn, hub=hub,
                       commit_batch_size=batch_size, seed=seed)
    config = MdtestConfig(workdir="/app", items_per_client=items,
                          phases=PHASES)
    run_mdtest(bed.env, bed.clients, config)
    bed.quiesce()
    consistency = hub.consistency_snapshot()
    return {"consistency": consistency, "elapsed": bed.env.now}


def run(scale: str = "ci", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = SCALES[scale]
    out = ExperimentResult(
        experiment="staleness",
        title="Staleness vs. commit batch size (Pacon, fig. 7 workload)",
        scale=scale, seed=seed, params=dict(params))
    worst_p99 = 0.0
    for batch_size in params["batch_sizes"]:
        point = staleness_point(params["nodes"], params["cpn"],
                                params["items"], batch_size, seed=seed)
        cons = point["consistency"]
        reads = cons["reads"]
        age = cons["staleness"]["age"]
        vis_committed = cons["visibility"]["committed"]
        vis_global = cons["visibility"]["global"]
        worst_p99 = max(worst_p99, cons["staleness_p99"])
        out.add(batch=batch_size,
                reads_private=reads.get("private", 0),
                reads_shared=reads.get("shared", 0),
                reads_mds=reads.get("mds", 0),
                stale_p50=age.get("p50", 0.0),
                stale_p99=cons["staleness_p99"],
                lag_p99=cons["staleness"]["lag"].get("p99", 0.0),
                vis_commit_p99=vis_committed.get("p99", 0.0),
                vis_global_p99=vis_global.get("p99", 0.0),
                pending_end=cons["pending_mutations"],
                elapsed=point["elapsed"])
    # Headline claims: the worst staleness exposure across the sweep, and
    # convergence (all runs drained — pending mutations zero at the end).
    out.derive("consistency.staleness_p99", worst_p99)
    out.derive("consistency.pending_end_total",
               sum(row["pending_end"] for row in out.rows))
    first, last = out.rows[0], out.rows[-1]
    if first["stale_p99"] > 0:
        out.derive("staleness_growth_vs_batch",
                   round(last["stale_p99"] / first["stale_p99"], 3))
    out.note(f"staleness p99 {first['stale_p99']:.6f}s at batch"
             f" {first['batch']} -> {last['stale_p99']:.6f}s at batch"
             f" {last['batch']}; every run quiesced with"
             f" {last['pending_end']} pending mutations")
    return out


def main() -> None:  # pragma: no cover - CLI
    import sys
    scale = "paper" if "--paper-scale" in sys.argv else "ci"
    print(run(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
