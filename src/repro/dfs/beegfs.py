"""BeeGFS-like deployment: MDS + data servers wired onto a cluster.

Defaults mirror the paper's testbed: one metadata server (NVMe-class
service times) and three data servers.  With ``n_mds > 1`` directories are
sharded across metadata servers by hashing the directory path — the same
per-directory ownership BeeGFS metadata targets use — so multi-MDS scaling
experiments are possible (used by ablations).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dfs.client import DFSClient
from repro.dfs.mds import MetadataServer
from repro.dfs.namespace import Namespace, normalize_path
from repro.dfs.storage import DataServer
from repro.kvstore.dht import stable_hash64
from repro.sim.network import Cluster, Node

__all__ = ["BeeGFS"]


class BeeGFS:
    """A deployed DFS instance on a :class:`~repro.sim.network.Cluster`."""

    def __init__(self, cluster: Cluster, n_mds: int = 1, n_data: int = 3,
                 mds_nodes: Optional[List[Node]] = None,
                 data_nodes: Optional[List[Node]] = None):
        if n_mds < 1 or n_data < 1:
            raise ValueError("need at least one MDS and one data server")
        self.cluster = cluster
        self.namespace = Namespace()
        if mds_nodes is None:
            mds_nodes = [cluster.add_node(f"mds{i}") for i in range(n_mds)]
        if len(mds_nodes) != n_mds:
            raise ValueError("mds_nodes length must equal n_mds")
        if data_nodes is None:
            data_nodes = [cluster.add_node(f"data{i}") for i in range(n_data)]
        if len(data_nodes) != n_data:
            raise ValueError("data_nodes length must equal n_data")
        self.mds_servers = [
            MetadataServer(cluster, node, self.namespace, name=f"mds{i}")
            for i, node in enumerate(mds_nodes)
        ]
        self.data_servers = [
            DataServer(cluster, node, name=f"data{i}")
            for i, node in enumerate(data_nodes)
        ]

    # -- placement -------------------------------------------------------
    def mds_for(self, dir_path: str) -> MetadataServer:
        """Owning MDS for a directory (all ops on entries in it go there)."""
        if len(self.mds_servers) == 1:
            return self.mds_servers[0]
        key = normalize_path(dir_path)
        return self.mds_servers[stable_hash64(key) % len(self.mds_servers)]

    def data_server_for(self, ino: int, chunk: int) -> DataServer:
        """Round-robin striping, rotated per inode."""
        return self.data_servers[(ino + chunk) % len(self.data_servers)]

    # -- clients ------------------------------------------------------------
    def client(self, node: Node, uid: int = 1000, gid: int = 1000) -> DFSClient:
        return DFSClient(self, node, uid=uid, gid=gid)

    # -- test/benchmark convenience -------------------------------------------
    def mkdir_sync(self, path: str, mode: int = 0o777, uid: int = 0,
                   gid: int = 0) -> None:
        """Administrative mkdir applied directly to the namespace.

        Used by experiment setup (e.g. pre-creating application working
        directories as the cluster admin would) without consuming
        simulated time.
        """
        self.namespace.mkdir(path, mode=mode, uid=uid, gid=gid,
                             now=self.cluster.env.now)
