"""Hierarchical POSIX-like namespace with layer-by-layer permission checks.

This is the metadata heart of the BeeGFS-equivalent: a dentry tree plus an
inode table.  Every operation that takes a path performs the traditional
hierarchical traversal — each ancestor directory must exist, be a
directory, and (when ``check_perms`` is on) grant EXECUTE to the caller —
because that is precisely the cost Pacon's batch permission management
avoids (§II.C, Motivation 2).

The namespace is a pure data structure; the MDS actor stamps times and
charges simulated cost.  Subtree export/restore supports Pacon's
checkpoint-based failure recovery (§III.G).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.dfs.inode import AccessMode, FileType, Inode

__all__ = ["Namespace", "normalize_path", "split_path", "parent_of",
           "basename", "is_within"]

ROOT_INO = 1


def normalize_path(path: str) -> str:
    """Validate and canonicalize an absolute path.

    Rejects relative paths and '.'/'..' segments (the DFS client resolves
    those before they hit the wire, as real DFS clients do).
    """
    if not isinstance(path, str) or not path:
        raise InvalidPath(str(path), "empty path")
    if not path.startswith("/"):
        raise InvalidPath(path, "path must be absolute")
    if "\x00" in path:
        raise InvalidPath(path, "embedded NUL")
    parts = [p for p in path.split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise InvalidPath(path, "'.'/'..' must be client-resolved")
    return "/" + "/".join(parts)


def split_path(path: str) -> List[str]:
    """Components of a normalized path; [] for the root."""
    path = normalize_path(path)
    if path == "/":
        return []
    return path[1:].split("/")


def parent_of(path: str) -> str:
    parts = split_path(path)
    if not parts:
        raise InvalidPath(path, "root has no parent")
    return "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"


def basename(path: str) -> str:
    parts = split_path(path)
    if not parts:
        raise InvalidPath(path, "root has no basename")
    return parts[-1]


def is_within(path: str, ancestor: str) -> bool:
    """True if ``path`` equals or lies under ``ancestor``."""
    path = normalize_path(path)
    ancestor = normalize_path(ancestor)
    if ancestor == "/":
        return True
    return path == ancestor or path.startswith(ancestor + "/")


class Namespace:
    """Dentry tree + inode table with POSIX traversal semantics."""

    def __init__(self, root_mode: int = 0o777):
        self._inodes: Dict[int, Inode] = {}
        self._children: Dict[int, Dict[str, int]] = {}
        self._next_ino = ROOT_INO
        # op counters (observability; the MDS exports these)
        self.lookups = 0
        self.mutations = 0
        # Commit stamps: ino -> (commit generation, commit sim-time) of
        # the last authoritative mutation touching that inode.  A side
        # table (never part of inode records or cache values) so enabling
        # the staleness lens cannot change record sizes or eviction.
        self._stamps: Dict[int, Tuple[int, float]] = {}
        root = self._alloc(FileType.DIRECTORY, mode=root_mode, uid=0, gid=0,
                           now=0.0)
        assert root.ino == ROOT_INO

    # -- allocation ---------------------------------------------------------
    def _alloc(self, ftype: FileType, mode: int, uid: int, gid: int,
               now: float) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(ino=ino, ftype=ftype, mode=mode, uid=uid, gid=gid,
                      ctime=now, mtime=now)
        self._inodes[ino] = inode
        if ftype is FileType.DIRECTORY:
            self._children[ino] = {}
        # Restored subtrees re-alloc every inode, so stamping here keeps
        # checkpoint recovery covered; mutation methods re-stamp with the
        # post-increment generation.
        self._stamps[ino] = (self.mutations, now)
        return inode

    # -- traversal ------------------------------------------------------------
    def _resolve(self, path: str, uid: int, gid: int,
                 check_perms: bool) -> Inode:
        """Walk the path from the root; raises on any violation."""
        parts = split_path(path)
        current = self._inodes[ROOT_INO]
        for i, name in enumerate(parts):
            if not current.is_dir:
                raise NotADirectory("/" + "/".join(parts[:i]))
            if check_perms and not current.permits(uid, gid,
                                                   AccessMode.EXECUTE):
                raise PermissionDenied("/" + "/".join(parts[:i]),
                                       "search permission")
            child_ino = self._children[current.ino].get(name)
            if child_ino is None:
                raise FileNotFound("/" + "/".join(parts[: i + 1]))
            current = self._inodes[child_ino]
            self.lookups += 1
        return current

    def _resolve_parent(self, path: str, uid: int, gid: int,
                        check_perms: bool) -> Tuple[Inode, str]:
        parts = split_path(path)
        if not parts:
            raise InvalidPath(path, "operation on root")
        parent = self._resolve(parent_of(path), uid, gid, check_perms)
        if not parent.is_dir:
            raise NotADirectory(parent_of(path))
        return parent, parts[-1]

    # -- queries --------------------------------------------------------------
    def exists(self, path: str) -> bool:
        try:
            self._resolve(path, 0, 0, check_perms=False)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def getattr(self, path: str, uid: int = 0, gid: int = 0,
                check_perms: bool = True) -> Inode:
        return self._resolve(path, uid, gid, check_perms).copy()

    def readdir(self, path: str, uid: int = 0, gid: int = 0,
                check_perms: bool = True) -> List[str]:
        inode = self._resolve(path, uid, gid, check_perms)
        if not inode.is_dir:
            raise NotADirectory(path)
        if check_perms and not inode.permits(uid, gid, AccessMode.READ):
            raise PermissionDenied(path, "read permission on directory")
        return sorted(self._children[inode.ino])

    def count_entries(self) -> int:
        """Total live inodes, excluding the root."""
        return len(self._inodes) - 1

    def commit_stamp(self, path: str) -> Optional[Tuple[int, float]]:
        """(commit generation, commit sim-time) of ``path``'s inode.

        Zero-cost observability peek: walks the child maps directly
        (no permission checks, no ``lookups`` counter bump — this query
        must never perturb the counters an instrumented run exports).
        Returns None when the path does not exist authoritatively.
        """
        try:
            parts = split_path(path)
        except InvalidPath:
            return None
        ino = ROOT_INO
        for name in parts:
            children = self._children.get(ino)
            if children is None:
                return None
            child = children.get(name)
            if child is None:
                return None
            ino = child
        return self._stamps.get(ino)

    def walk(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Depth-first iteration of (path, inode) under ``path``, inclusive."""
        start = self._resolve(path, 0, 0, check_perms=False)
        base = normalize_path(path)
        stack: List[Tuple[str, Inode]] = [(base, start)]
        while stack:
            current_path, inode = stack.pop()
            yield current_path, inode
            if inode.is_dir:
                prefix = "" if current_path == "/" else current_path
                for name in sorted(self._children[inode.ino], reverse=True):
                    child = self._inodes[self._children[inode.ino][name]]
                    stack.append((f"{prefix}/{name}", child))

    # -- mutations ------------------------------------------------------------
    def mkdir(self, path: str, mode: int = 0o755, uid: int = 0, gid: int = 0,
              now: float = 0.0, check_perms: bool = True) -> Inode:
        parent, name = self._resolve_parent(path, uid, gid, check_perms)
        self._check_parent_write(parent, path, uid, gid, check_perms)
        if name in self._children[parent.ino]:
            raise FileExists(path)
        inode = self._alloc(FileType.DIRECTORY, mode, uid, gid, now)
        self._children[parent.ino][name] = inode.ino
        parent.mtime = now
        self.mutations += 1
        self._stamps[inode.ino] = (self.mutations, now)
        return inode.copy()

    def create(self, path: str, mode: int = 0o644, uid: int = 0, gid: int = 0,
               now: float = 0.0, check_perms: bool = True) -> Inode:
        """Exclusive file creation (O_CREAT|O_EXCL semantics)."""
        parent, name = self._resolve_parent(path, uid, gid, check_perms)
        self._check_parent_write(parent, path, uid, gid, check_perms)
        if name in self._children[parent.ino]:
            raise FileExists(path)
        inode = self._alloc(FileType.FILE, mode, uid, gid, now)
        self._children[parent.ino][name] = inode.ino
        parent.mtime = now
        self.mutations += 1
        self._stamps[inode.ino] = (self.mutations, now)
        return inode.copy()

    def unlink(self, path: str, uid: int = 0, gid: int = 0, now: float = 0.0,
               check_perms: bool = True) -> None:
        parent, name = self._resolve_parent(path, uid, gid, check_perms)
        self._check_parent_write(parent, path, uid, gid, check_perms)
        child_ino = self._children[parent.ino].get(name)
        if child_ino is None:
            raise FileNotFound(path)
        child = self._inodes[child_ino]
        if child.is_dir:
            raise IsADirectory(path)
        del self._children[parent.ino][name]
        del self._inodes[child_ino]
        self._stamps.pop(child_ino, None)
        parent.mtime = now
        self.mutations += 1

    def rmdir(self, path: str, uid: int = 0, gid: int = 0, now: float = 0.0,
              check_perms: bool = True, recursive: bool = False) -> int:
        """Remove a directory; returns the number of inodes removed.

        With ``recursive`` the whole subtree is removed (the commit module
        uses this for Pacon's rmdir, whose cache-side semantics are
        recursive; plain DFS clients call it non-recursively).
        """
        parent, name = self._resolve_parent(path, uid, gid, check_perms)
        self._check_parent_write(parent, path, uid, gid, check_perms)
        child_ino = self._children[parent.ino].get(name)
        if child_ino is None:
            raise FileNotFound(path)
        child = self._inodes[child_ino]
        if not child.is_dir:
            raise NotADirectory(path)
        if self._children[child.ino] and not recursive:
            raise DirectoryNotEmpty(path)
        removed = self._drop_subtree(child_ino)
        del self._children[parent.ino][name]
        parent.mtime = now
        self.mutations += 1
        return removed

    def _drop_subtree(self, ino: int) -> int:
        inode = self._inodes[ino]
        removed = 1
        if inode.is_dir:
            for child_ino in list(self._children[ino].values()):
                removed += self._drop_subtree(child_ino)
            del self._children[ino]
        del self._inodes[ino]
        self._stamps.pop(ino, None)
        return removed

    def setattr(self, path: str, uid: int = 0, gid: int = 0,
                now: float = 0.0, check_perms: bool = True,
                mode: Optional[int] = None, size: Optional[int] = None,
                new_uid: Optional[int] = None,
                new_gid: Optional[int] = None) -> Inode:
        inode = self._resolve(path, uid, gid, check_perms)
        if check_perms and uid != 0 and uid != inode.uid:
            raise PermissionDenied(path, "only the owner may setattr")
        if mode is not None:
            inode.mode = mode
        if size is not None:
            if inode.is_dir:
                raise IsADirectory(path)
            inode.size = size
        if new_uid is not None:
            inode.uid = new_uid
        if new_gid is not None:
            inode.gid = new_gid
        inode.mtime = now
        self.mutations += 1
        self._stamps[inode.ino] = (self.mutations, now)
        return inode.copy()

    def rename(self, src: str, dst: str, uid: int = 0, gid: int = 0,
               now: float = 0.0, check_perms: bool = True) -> None:
        """Atomic rename (extension beyond the paper's op table)."""
        if is_within(dst, src):
            raise InvalidPath(dst, "cannot move a directory into itself")
        src_parent, src_name = self._resolve_parent(src, uid, gid, check_perms)
        self._check_parent_write(src_parent, src, uid, gid, check_perms)
        moving_ino = self._children[src_parent.ino].get(src_name)
        if moving_ino is None:
            raise FileNotFound(src)
        dst_parent, dst_name = self._resolve_parent(dst, uid, gid, check_perms)
        self._check_parent_write(dst_parent, dst, uid, gid, check_perms)
        if dst_name in self._children[dst_parent.ino]:
            raise FileExists(dst)
        del self._children[src_parent.ino][src_name]
        self._children[dst_parent.ino][dst_name] = moving_ino
        src_parent.mtime = now
        dst_parent.mtime = now
        self.mutations += 1
        self._stamps[moving_ino] = (self.mutations, now)

    def _check_parent_write(self, parent: Inode, path: str, uid: int,
                            gid: int, check_perms: bool) -> None:
        if check_perms and not parent.permits(
                uid, gid, AccessMode.WRITE | AccessMode.EXECUTE):
            raise PermissionDenied(path, "write permission on parent")

    # -- subtree checkpoint/restore (§III.G) -----------------------------------
    def export_subtree(self, path: str) -> Dict[str, Any]:
        """Serialize the subtree rooted at ``path`` (inclusive)."""
        root = self._resolve(path, 0, 0, check_perms=False)
        if not root.is_dir:
            raise NotADirectory(path)

        def export(ino: int) -> Dict[str, Any]:
            inode = self._inodes[ino]
            node: Dict[str, Any] = {"inode": inode.to_record()}
            if inode.is_dir:
                node["children"] = {
                    name: export(child)
                    for name, child in sorted(self._children[ino].items())
                }
            return node

        return {"path": normalize_path(path), "tree": export(root.ino)}

    def restore_subtree(self, checkpoint: Dict[str, Any],
                        now: float = 0.0) -> int:
        """Replace the subtree at the checkpoint's path with its contents.

        The subtree root's own attributes are restored too.  Returns the
        number of inodes restored (excluding the root directory itself).
        """
        path = checkpoint["path"]
        root = self._resolve(path, 0, 0, check_perms=False)
        if not root.is_dir:
            raise NotADirectory(path)
        # Drop current children.
        for child_ino in list(self._children[root.ino].values()):
            self._drop_subtree(child_ino)
        self._children[root.ino] = {}
        # Restore attributes of the region root (identity/ino unchanged).
        rec = checkpoint["tree"]["inode"]
        root.mode, root.uid, root.gid = rec["mode"], rec["uid"], rec["gid"]

        count = 0

        def restore(parent_ino: int, name: str, node: Dict[str, Any]) -> None:
            nonlocal count
            rec = node["inode"]
            ftype = FileType(rec["ftype"])
            inode = self._alloc(ftype, rec["mode"], rec["uid"], rec["gid"],
                                now)
            inode.size = rec["size"]
            inode.inline_data = rec.get("inline_data")
            self._children[parent_ino][name] = inode.ino
            count += 1
            if ftype is FileType.DIRECTORY:
                for child_name, child in node.get("children", {}).items():
                    restore(inode.ino, child_name, child)

        for name, node in checkpoint["tree"].get("children", {}).items():
            restore(root.ino, name, node)
        self.mutations += 1
        return count
