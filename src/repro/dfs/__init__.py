"""The underlying distributed file system (BeeGFS-equivalent substrate).

Pacon is a library layered *on top of* an existing DFS; this package is
that DFS.  It provides:

* :mod:`repro.dfs.namespace` — a POSIX-like hierarchical namespace with
  inodes, dentries, mode-bit permissions, and layer-by-layer path
  traversal (the thing partial consistency and batch permissions optimize
  around),
* :mod:`repro.dfs.mds` — the centralized metadata server as a
  capacity-limited DES service (the saturation point in Figs. 1/11),
* :mod:`repro.dfs.storage` — striped data servers,
* :mod:`repro.dfs.client` — a DFS client with a strong-consistency
  client-side metadata cache (cached entries are revalidated per use),
* :mod:`repro.dfs.beegfs` — deployment glue that wires the above into a
  BeeGFS-like cluster (1 MDS + N data servers by default).
"""

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FSError,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.dfs.inode import FileType, Inode
from repro.dfs.namespace import Namespace, split_path, normalize_path
from repro.dfs.mds import MetadataServer
from repro.dfs.storage import DataServer
from repro.dfs.client import DFSClient
from repro.dfs.beegfs import BeeGFS

__all__ = [
    "BeeGFS",
    "DataServer",
    "DFSClient",
    "DirectoryNotEmpty",
    "FileExists",
    "FileNotFound",
    "FileType",
    "FSError",
    "Inode",
    "InvalidPath",
    "IsADirectory",
    "MetadataServer",
    "Namespace",
    "NotADirectory",
    "PermissionDenied",
    "normalize_path",
    "split_path",
]
