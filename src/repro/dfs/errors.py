"""File-system error taxonomy (errno-flavoured).

The commit module's correctness argument (§III.E) leans on the DFS
*rejecting* operations that violate the namespace conventions; these
exceptions are those rejections.  Each carries the offending path and an
errno-style symbolic code so tests can assert on semantics rather than
message text.
"""

from __future__ import annotations

__all__ = [
    "FSError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "PermissionDenied",
    "DirectoryNotEmpty",
    "InvalidPath",
    "StaleHandle",
]


class FSError(Exception):
    """Base class for all file-system errors."""

    code = "EIO"

    def __init__(self, path: str, detail: str = ""):
        self.path = path
        self.detail = detail
        msg = f"[{self.code}] {path}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class FileNotFound(FSError):
    """A path component or the target does not exist."""

    code = "ENOENT"


class FileExists(FSError):
    """Exclusive create on an existing name."""

    code = "EEXIST"


class NotADirectory(FSError):
    """A non-final path component is not a directory."""

    code = "ENOTDIR"


class IsADirectory(FSError):
    """File operation applied to a directory."""

    code = "EISDIR"


class PermissionDenied(FSError):
    """Mode bits forbid the requested access."""

    code = "EACCES"


class DirectoryNotEmpty(FSError):
    """rmdir on a directory with children."""

    code = "ENOTEMPTY"


class InvalidPath(FSError):
    """Malformed path (empty, relative, embedded NUL, ...)."""

    code = "EINVAL"


class StaleHandle(FSError):
    """Cached handle refers to a removed object."""

    code = "ESTALE"
