"""Data servers: striped chunk storage with NVMe-class cost modeling.

The paper's BeeGFS cluster has 3 data servers; file contents are striped
across them in fixed-size chunks.  MADbench2 (Fig. 12) is the experiment
that exercises this path — its 4 MB reads/writes dwarf metadata time,
which is why Pacon and BeeGFS tie there.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["DataServer", "stripe_ranges"]


def stripe_ranges(offset: int, length: int,
                  stripe_size: int) -> List[Tuple[int, int, int]]:
    """Split [offset, offset+length) into (chunk_index, chunk_offset, size).

    Chunk ``i`` covers bytes [i*stripe_size, (i+1)*stripe_size).
    """
    if length < 0:
        raise ValueError(f"negative length: {length}")
    out: List[Tuple[int, int, int]] = []
    end = offset + length
    pos = offset
    while pos < end:
        chunk = pos // stripe_size
        chunk_off = pos - chunk * stripe_size
        take = min(stripe_size - chunk_off, end - pos)
        out.append((chunk, chunk_off, take))
        pos += take
    return out


class DataServer(Service):
    """Chunk store: (ino, chunk_index) -> bytes-held count.

    Contents are tracked as sizes (the experiments are I/O-shaped, not
    byte-exact), but offsets and chunk boundaries are honoured so read
    validity can be asserted in tests.
    """

    def __init__(self, cluster: Cluster, node: Node, name: str = "data"):
        super().__init__(cluster, node, name,
                         workers=cluster.costs.dataserver_workers)
        self._chunks: Dict[Tuple[int, int], int] = {}  # -> valid bytes
        self.bytes_written = 0
        self.bytes_read = 0

    def handle_write_chunk(self, ino: int, chunk: int, chunk_off: int,
                           size: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(self.costs.disk_seek +
                               self.costs.disk_transfer_time(size))
        key = (ino, chunk)
        self._chunks[key] = max(self._chunks.get(key, 0), chunk_off + size)
        self.bytes_written += size
        return size

    def handle_read_chunk(self, ino: int, chunk: int, chunk_off: int,
                          size: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(self.costs.disk_seek +
                               self.costs.disk_transfer_time(size))
        valid = self._chunks.get((ino, chunk), 0)
        available = max(0, min(chunk_off + size, valid) - chunk_off)
        self.bytes_read += available
        return available

    def handle_truncate(self, ino: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(self.costs.disk_seek)
        dead = [k for k in self._chunks if k[0] == ino]
        for k in dead:
            del self._chunks[k]
        return len(dead)

    def stored_bytes(self, ino: int) -> int:
        """Total valid bytes held for an inode (test introspection)."""
        return sum(v for (i, _c), v in self._chunks.items() if i == ino)
