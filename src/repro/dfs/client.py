"""The native DFS client: hierarchical traversal, synchronous RPCs.

This is the baseline "strong consistency in the client-side metadata
cache" behaviour the paper argues against (§II.B): every metadata
operation communicates synchronously with the centralized metadata
service, and path resolution issues one lookup RPC per ancestor component
(the client cannot trust any locally cached dentry without revalidating,
and a revalidation is itself an RPC — so the cache saves bytes, not round
trips, and we model it as the round trips).

All methods are DES generators; wrap them with
:func:`repro.sim.core.run_sync` for synchronous library-style use.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.dfs.inode import Inode
from repro.dfs.namespace import parent_of, split_path
from repro.sim.core import Event, Interrupt

__all__ = ["DFSClient"]


class DFSClient:
    """Per-process client handle onto a BeeGFS-like deployment."""

    def __init__(self, deployment, node, uid: int = 1000, gid: int = 1000):
        self.fs = deployment
        self.cluster = deployment.cluster
        self.env = deployment.cluster.env
        self.costs = deployment.cluster.costs
        self.node = node
        self.uid = uid
        self.gid = gid
        # observability
        self.rpcs_sent = 0
        self.lookup_rpcs = 0

    # -- path traversal ---------------------------------------------------
    def _traverse_parents(self, path: str) -> Generator[Event, Any, None]:
        """Resolve every ancestor of ``path`` with per-component lookups.

        Issues ``len(components) - 1`` lookup RPCs (the final component is
        resolved by the operation RPC itself).  This is the depth-
        proportional network cost measured in Figs. 2 and 9.
        """
        parts = split_path(path)
        current = "/"
        for name in parts[:-1]:
            mds = self.fs.mds_for(current)
            self.rpcs_sent += 1
            self.lookup_rpcs += 1
            yield from mds.request(self.node, "lookup", current, name,
                                   self.uid, self.gid)
            current = current.rstrip("/") + "/" + name

    def _op(self, path: str, method: str, *args,
            **kwargs) -> Generator[Event, Any, Any]:
        """Traverse ancestors, then issue the final operation RPC."""
        yield from self._traverse_parents(path)
        if self.costs.client_op_cpu > 0:
            yield self.env.timeout(self.costs.client_op_cpu)
        mds = self.fs.mds_for(parent_of(path) if split_path(path) else "/")
        self.rpcs_sent += 1
        result = yield from mds.request(self.node, method, path, *args,
                                        **kwargs)
        return result

    # -- metadata operations -------------------------------------------------
    # ``token`` (optional) is an idempotency key for at-least-once retry
    # of the mutation; see MetadataServer's commit-dedup token memory.
    def mkdir(self, path: str, mode: int = 0o755,
              token: Any = None) -> Generator[Event, Any, Inode]:
        record = yield from self._op(path, "mkdir", mode, self.uid, self.gid,
                                     token=token)
        return Inode.from_record(record)

    def create(self, path: str, mode: int = 0o644,
               token: Any = None) -> Generator[Event, Any, Inode]:
        record = yield from self._op(path, "create", mode, self.uid, self.gid,
                                     token=token)
        return Inode.from_record(record)

    def unlink(self, path: str,
               token: Any = None) -> Generator[Event, Any, None]:
        yield from self._op(path, "unlink", self.uid, self.gid, token=token)

    rm = unlink  # alias shared with the Pacon/IndexFS client protocols

    def commit_batch(self, ops: List[Tuple[str, str, Dict]],
                     ) -> Generator[Event, Any, List[Tuple[str, Any]]]:
        """Apply several same-parent mutations in one MDS round trip.

        ``ops`` is a list of ``(op, path, kwargs)`` with ``op`` one of
        ``mkdir``/``create``/``unlink``; every path must share one parent
        directory (one ancestor traversal and one owning MDS cover the
        whole batch).  Returns one ``("ok", record_or_None)`` or
        ``("err", exception)`` per op, in order — partial success is the
        point: the commit pipeline resolves each outcome independently
        (resubmit, discard, or committed).
        """
        if not ops:
            return []
        parent = parent_of(ops[0][1])
        for _op, path, _kw in ops[1:]:
            if parent_of(path) != parent:
                raise ValueError("commit_batch requires a shared parent"
                                 f" directory, got {path} outside {parent}")
        yield from self._traverse_parents(ops[0][1])
        if self.costs.client_op_cpu > 0:
            yield self.env.timeout(self.costs.client_op_cpu)
        mds = self.fs.mds_for(parent)
        self.rpcs_sent += 1
        per_op = self.costs.request_header_size
        results = yield from mds.request(
            self.node, "commit_batch", ops, self.uid, self.gid,
            req_size=per_op + self.costs.metadata_record_size * len(ops),
            resp_size=per_op + self.costs.metadata_record_size * len(ops))
        return results

    def rmdir(self, path: str,
              recursive: bool = False) -> Generator[Event, Any, int]:
        removed = yield from self._op(path, "rmdir", self.uid, self.gid,
                                      recursive=recursive)
        return removed

    def getattr(self, path: str) -> Generator[Event, Any, Inode]:
        record = yield from self._op(path, "getattr", self.uid, self.gid)
        return Inode.from_record(record)

    def exists(self, path: str) -> Generator[Event, Any, bool]:
        try:
            yield from self.getattr(path)
            return True
        except Interrupt:
            raise  # caller killed mid-probe (node crash), not "absent"
        except Exception:
            return False

    def readdir(self, path: str) -> Generator[Event, Any, List[str]]:
        names = yield from self._op(path, "readdir", self.uid, self.gid)
        return names

    def setattr(self, path: str, **attrs) -> Generator[Event, Any, Inode]:
        record = yield from self._op(path, "setattr", self.uid, self.gid,
                                     **attrs)
        return Inode.from_record(record)

    def rename(self, src: str, dst: str) -> Generator[Event, Any, None]:
        yield from self._traverse_parents(dst)
        yield from self._op(src, "rename", dst, self.uid, self.gid)

    # -- data operations ---------------------------------------------------------
    def write(self, path: str, offset: int,
              size: int) -> Generator[Event, Any, int]:
        """Striped write of ``size`` bytes at ``offset``."""
        inode = yield from self.getattr(path)
        yield from self._stripe_io("write_chunk", inode.ino, offset, size)
        new_size = offset + size
        if new_size > inode.size:
            yield from self.setattr(path, size=new_size)
        return size

    def read(self, path: str, offset: int,
             size: int) -> Generator[Event, Any, int]:
        """Striped read; returns the number of valid bytes."""
        inode = yield from self.getattr(path)
        got = yield from self._stripe_io("read_chunk", inode.ino, offset, size)
        return got

    def _stripe_io(self, method: str, ino: int, offset: int,
                   size: int) -> Generator[Event, Any, int]:
        from repro.dfs.storage import stripe_ranges

        ranges = stripe_ranges(offset, size, self.costs.stripe_size)
        procs = []
        for chunk, chunk_off, take in ranges:
            server = self.fs.data_server_for(ino, chunk)
            self.rpcs_sent += 1
            payload = take if method == "write_chunk" else 0
            resp = take if method == "read_chunk" else 0
            procs.append(self.env.process(
                server.request(self.node, method, ino, chunk, chunk_off,
                               take, req_size=self.costs.request_header_size
                               + payload,
                               resp_size=self.costs.request_header_size
                               + resp),
                label=f"io:{method}:{ino}:{chunk}"))
        if not procs:
            return 0
        results = yield self.env.all_of(procs)
        return sum(results)
