"""Inodes, file types, and POSIX mode-bit permission checks."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FileType", "Inode", "AccessMode", "check_mode_bits"]


class FileType(enum.Enum):
    FILE = "file"
    DIRECTORY = "dir"


class AccessMode(enum.IntFlag):
    """Requested access, mirroring the r/w/x permission triplet."""

    READ = 4
    WRITE = 2
    EXECUTE = 1


def check_mode_bits(mode: int, uid: int, gid: int, owner_uid: int,
                    owner_gid: int, want: AccessMode) -> bool:
    """Classic owner/group/other mode-bit evaluation.

    uid 0 is root and passes everything, matching POSIX superuser
    semantics (the DFS admin tooling in the paper runs as root).
    """
    if uid == 0:
        return True
    if uid == owner_uid:
        bits = (mode >> 6) & 0o7
    elif gid == owner_gid:
        bits = (mode >> 3) & 0o7
    else:
        bits = mode & 0o7
    return (bits & int(want)) == int(want)


@dataclass
class Inode:
    """File/directory metadata record.

    ``ctime``/``mtime`` are simulated-time floats stamped by the owner of
    the namespace (the MDS actor passes its env clock in).  ``inline_data``
    is used by Pacon's small-file optimization when metadata records are
    stored in the distributed cache; the DFS itself keeps file bytes on
    data servers and only tracks ``size`` here.
    """

    ino: int
    ftype: FileType
    mode: int = 0o755
    uid: int = 0
    gid: int = 0
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    nlink: int = 1
    inline_data: Optional[bytes] = None

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.ftype is FileType.FILE

    def permits(self, uid: int, gid: int, want: AccessMode) -> bool:
        return check_mode_bits(self.mode, uid, gid, self.uid, self.gid, want)

    def to_record(self) -> Dict:
        """Serialize to the plain-dict wire/cache format."""
        return {
            "ino": self.ino,
            "ftype": self.ftype.value,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "size": self.size,
            "ctime": self.ctime,
            "mtime": self.mtime,
            "nlink": self.nlink,
            "inline_data": self.inline_data,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "Inode":
        return cls(
            ino=record["ino"],
            ftype=FileType(record["ftype"]),
            mode=record["mode"],
            uid=record["uid"],
            gid=record["gid"],
            size=record["size"],
            ctime=record["ctime"],
            mtime=record["mtime"],
            nlink=record.get("nlink", 1),
            inline_data=record.get("inline_data"),
        )

    def copy(self) -> "Inode":
        return Inode.from_record(self.to_record())
