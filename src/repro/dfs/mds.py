"""The centralized metadata server as a DES actor.

One :class:`MetadataServer` is a capacity-limited RPC service over the
(possibly shared) :class:`~repro.dfs.namespace.Namespace`.  Its worker pool
and service times are where centralized metadata processing saturates —
Figs. 1 and 11 of the paper are about exactly this queueing point.

A multi-MDS deployment shares one Namespace object between servers (the
namespace is the *logical* metadata state; which server answers for which
directory is a deployment policy in :mod:`repro.dfs.beegfs`).  Sharing the
structure keeps semantics exact while each server charges its own queueing
and service time, mirroring how BeeGFS shards directories over MDS targets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.dfs.namespace import Namespace
from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["MetadataServer"]


class MetadataServer(Service):
    """RPC façade over a Namespace, with BeeGFS-class service times.

    The server keeps an LRU inode/dentry cache: lookups of entries that
    fell out of it pay an extra disk read.  Large namespaces (the deep
    fanout-5 trees of Figs. 2/9) overflow the cache under random access,
    which is what makes BeeGFS's depth penalty superlinear on real
    hardware.
    """

    # Attribution buckets: handler service time vs. MDS worker-pool wait.
    span_queue_category = "mds_queue"
    span_service_category = "mds_service"

    #: Commit-dedup token memory (entries).  Tokens make the mutation RPCs
    #: idempotent under at-least-once retry: a commit process that saw its
    #: response lost (MDS crash after apply) replays the op with the same
    #: token and gets the recorded result instead of a double apply.
    COMMIT_TOKEN_CAPACITY = 65536

    def __init__(self, cluster: Cluster, node: Node, namespace: Namespace,
                 name: str = "mds", workers: Optional[int] = None):
        super().__init__(cluster, node, name,
                         workers=workers or cluster.costs.mds_workers)
        self.namespace = namespace
        self._inode_cache: OrderedDict[str, None] = OrderedDict()
        self.inode_cache_hits = 0
        self.inode_cache_misses = 0
        self._applied_tokens: OrderedDict[Any, Any] = OrderedDict()
        self.token_replays = 0

    def commit_stamp(self, path: str) -> Optional[Tuple[int, float]]:
        """(commit generation, commit sim-time) of the authoritative copy.

        Zero-cost observability peek (no simulated time, no RPC, no
        counter bumps) used by the staleness lens to compare served cache
        records against the MDS copy; None if the path is not committed.
        """
        return self.namespace.commit_stamp(path)

    def _token_hit(self, token: Any) -> bool:
        if token is None or token not in self._applied_tokens:
            return False
        self._applied_tokens.move_to_end(token)
        self.token_replays += 1
        return True

    def _record_token(self, token: Any, result: Any) -> None:
        if token is None:
            return
        self._applied_tokens[token] = result
        while len(self._applied_tokens) > self.COMMIT_TOKEN_CAPACITY:
            self._applied_tokens.popitem(last=False)

    def _touch_inode_cache(self, path: str) -> float:
        """LRU access; returns the extra cost of a miss (0 on hit)."""
        capacity = self.costs.mds_inode_cache_entries
        if capacity <= 0:
            return 0.0
        if path in self._inode_cache:
            self._inode_cache.move_to_end(path)
            self.inode_cache_hits += 1
            return 0.0
        self.inode_cache_misses += 1
        self._inode_cache[path] = None
        while len(self._inode_cache) > capacity:
            self._inode_cache.popitem(last=False)
        return self.costs.mds_inode_cache_miss

    # -- read path -----------------------------------------------------------
    def handle_lookup(self, dir_path: str, name: str, uid: int = 0,
                      gid: int = 0) -> Generator[Event, Any, Dict]:
        """Resolve one dentry: ``dir_path/name`` -> child inode record.

        This is the per-component RPC of hierarchical path traversal; the
        client walks the path issuing one of these per level (§II.C).
        """
        child_path = (dir_path.rstrip("/") + "/" + name) if name else dir_path
        yield self.env.timeout(self.costs.mds_lookup_service +
                               self._touch_inode_cache(child_path))
        inode = self.namespace.getattr(child_path, uid, gid, check_perms=True)
        return inode.to_record()

    def handle_getattr(self, path: str, uid: int = 0,
                       gid: int = 0) -> Generator[Event, Any, Dict]:
        yield self.env.timeout(self.costs.mds_read_service +
                               self._touch_inode_cache(path))
        return self.namespace.getattr(path, uid, gid,
                                      check_perms=True).to_record()

    def handle_readdir(self, path: str, uid: int = 0,
                       gid: int = 0) -> Generator[Event, Any, List[str]]:
        names = self.namespace.readdir(path, uid, gid, check_perms=True)
        yield self.env.timeout(self.costs.mds_readdir_base +
                               self.costs.mds_readdir_per_entry * len(names))
        return names

    def handle_exists(self, path: str) -> Generator[Event, Any, bool]:
        yield self.env.timeout(self.costs.mds_lookup_service)
        return self.namespace.exists(path)

    # -- write path ------------------------------------------------------------
    def handle_mkdir(self, path: str, mode: int = 0o755, uid: int = 0,
                     gid: int = 0, check_perms: bool = True,
                     token: Any = None) -> Generator[Event, Any, Dict]:
        if self._token_hit(token):
            yield self.env.timeout(self.costs.mds_lookup_service)
            return self._applied_tokens[token]
        yield self.env.timeout(self.costs.mds_op_service)
        inode = self.namespace.mkdir(path, mode, uid, gid, now=self.env.now,
                                     check_perms=check_perms)
        record = inode.to_record()
        self._record_token(token, record)
        return record

    def handle_create(self, path: str, mode: int = 0o644, uid: int = 0,
                      gid: int = 0, check_perms: bool = True,
                      token: Any = None) -> Generator[Event, Any, Dict]:
        if self._token_hit(token):
            yield self.env.timeout(self.costs.mds_lookup_service)
            return self._applied_tokens[token]
        yield self.env.timeout(self.costs.mds_op_service)
        inode = self.namespace.create(path, mode, uid, gid, now=self.env.now,
                                      check_perms=check_perms)
        record = inode.to_record()
        self._record_token(token, record)
        return record

    def handle_unlink(self, path: str, uid: int = 0, gid: int = 0,
                      check_perms: bool = True,
                      token: Any = None) -> Generator[Event, Any, None]:
        if self._token_hit(token):
            yield self.env.timeout(self.costs.mds_lookup_service)
            return
        yield self.env.timeout(self.costs.mds_op_service)
        self.namespace.unlink(path, uid, gid, now=self.env.now,
                              check_perms=check_perms)
        self._record_token(token, None)

    def handle_rmdir(self, path: str, uid: int = 0, gid: int = 0,
                     check_perms: bool = True,
                     recursive: bool = False) -> Generator[Event, Any, int]:
        yield self.env.timeout(self.costs.mds_op_service)
        removed = self.namespace.rmdir(path, uid, gid, now=self.env.now,
                                       check_perms=check_perms,
                                       recursive=recursive)
        if removed > 1:
            yield self.env.timeout(self.costs.mds_remove_per_entry *
                                   (removed - 1))
        return removed

    def handle_setattr(self, path: str, uid: int = 0, gid: int = 0,
                       check_perms: bool = True,
                       **attrs) -> Generator[Event, Any, Dict]:
        yield self.env.timeout(self.costs.mds_op_service)
        inode = self.namespace.setattr(path, uid, gid, now=self.env.now,
                                       check_perms=check_perms, **attrs)
        return inode.to_record()

    def handle_rename(self, src: str, dst: str, uid: int = 0, gid: int = 0,
                      check_perms: bool = True) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.costs.mds_op_service)
        self.namespace.rename(src, dst, uid, gid, now=self.env.now,
                              check_perms=check_perms)

    def handle_commit_batch(self, ops: List[Tuple[str, str, Dict]],
                            uid: int = 0, gid: int = 0,
                            ) -> Generator[Event, Any,
                                           List[Tuple[str, Any]]]:
        """Apply a batch of same-parent mutations with amortized lookups.

        The first op pays the full journaled-mutation service time; each
        subsequent op rides the warm dentry/journal state and is
        discounted by ``mds_batch_lookup_discount``.  Domain errors are
        captured *per op* (``("err", exc)``) so one rejected mutation —
        e.g. a child whose parent creation still sits in another node's
        queue — never poisons the rest of the batch.
        """
        discounted = self.costs.mds_op_service * max(
            0.0, 1.0 - self.costs.mds_batch_lookup_discount)
        results: List[Tuple[str, Any]] = []
        first = True
        for op, path, kwargs in ops:
            token = kwargs.get("token")
            if self._token_hit(token):
                yield self.env.timeout(self.costs.mds_lookup_service)
                results.append(("ok", self._applied_tokens[token]))
                continue
            yield self.env.timeout(self.costs.mds_op_service if first
                                   else discounted)
            first = False
            try:
                if op == "mkdir":
                    inode = self.namespace.mkdir(
                        path, kwargs.get("mode", 0o755), uid, gid,
                        now=self.env.now, check_perms=True)
                    record = inode.to_record()
                    self._record_token(token, record)
                    results.append(("ok", record))
                elif op == "create":
                    inode = self.namespace.create(
                        path, kwargs.get("mode", 0o644), uid, gid,
                        now=self.env.now, check_perms=True)
                    record = inode.to_record()
                    self._record_token(token, record)
                    results.append(("ok", record))
                elif op == "unlink":
                    self.namespace.unlink(path, uid, gid, now=self.env.now,
                                          check_perms=True)
                    self._record_token(token, None)
                    results.append(("ok", None))
                else:
                    raise ValueError(f"commit_batch cannot apply {op!r}")
            except Exception as exc:  # domain errors resolve per op
                results.append(("err", exc))
        return results

    # -- checkpoint support (§III.G) --------------------------------------------
    def handle_export_subtree(self, path: str) -> Generator[Event, Any, Dict]:
        snapshot = self.namespace.export_subtree(path)
        entries = _count_tree(snapshot["tree"])
        yield self.env.timeout(self.costs.mds_read_service +
                               self.costs.mds_readdir_per_entry * entries)
        return snapshot

    def handle_restore_subtree(self, checkpoint: Dict) -> Generator[Event, Any, int]:
        entries = _count_tree(checkpoint["tree"])
        yield self.env.timeout(self.costs.mds_op_service +
                               self.costs.mds_remove_per_entry * entries)
        return self.namespace.restore_subtree(checkpoint, now=self.env.now)


def _count_tree(node: Dict) -> int:
    total = 1
    for child in node.get("children", {}).values():
        total += _count_tree(child)
    return total
