"""Comparator systems.

* :mod:`repro.baselines.indexfs` — the paper's main comparator: KV-resident
  metadata on LSM trees, servers co-located with client nodes, stateless
  client caching with leases, optional bulk insertion (the BatchFS/DeltaFS
  approximation the paper uses in §IV).
* :mod:`repro.baselines.shardfs` and :mod:`repro.baselines.locofs` — the
  path-traversal-optimization alternatives discussed in §II.C/§V, built at
  ablation grade for the trade-off benches.

The native-BeeGFS baseline is :mod:`repro.dfs` itself.
"""

from repro.baselines.indexfs import IndexFS, IndexFSClient, IndexFSServer
from repro.baselines.shardfs import ShardFS
from repro.baselines.locofs import LocoFS

__all__ = ["IndexFS", "IndexFSClient", "IndexFSServer", "ShardFS", "LocoFS"]
