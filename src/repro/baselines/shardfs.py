"""ShardFS-style baseline (ablation grade).

ShardFS (Xiao et al., SoCC'15) removes path-traversal RPCs by *replicating
all directory metadata on every metadata server*: any server can resolve
any path locally, so a file operation is a single RPC — but directory
mutations fan out to every server (N× write amplification), which is the
trade-off §II.C calls out.  Used by the path-traversal ablation bench.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.dfs.errors import FileExists, FileNotFound
from repro.dfs.inode import FileType
from repro.dfs.namespace import normalize_path, parent_of, split_path
from repro.kvstore.dht import stable_hash64
from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["ShardFS"]


class _ShardFSServer(Service):
    """One MDS: full directory replica + its shard of file metadata."""

    def __init__(self, cluster: Cluster, node: Node, name: str):
        super().__init__(cluster, node, name,
                         workers=cluster.costs.mds_workers)
        self.dirs: Dict[str, Dict] = {"/": {"mode": 0o777}}
        self.files: Dict[str, Dict] = {}

    def _local_resolve(self, path: str) -> Generator[Event, Any, None]:
        """Path traversal entirely inside this server (no network)."""
        parts = split_path(path)
        current = ""
        # One cheap in-memory step per level — local, not RPCs.
        yield self.env.timeout(1e-6 * max(1, len(parts) - 1))
        for name in parts[:-1]:
            current += "/" + name
            if current not in self.dirs:
                raise FileNotFound(current)

    def handle_mkdir_replica(self, path: str,
                             attrs: Dict) -> Generator[Event, Any, None]:
        """Apply a directory mutation to this replica."""
        yield self.env.timeout(self.costs.mds_op_service)
        if path in self.dirs:
            raise FileExists(path)
        self.dirs[path] = attrs

    def handle_create(self, path: str,
                      attrs: Dict) -> Generator[Event, Any, Dict]:
        yield from self._local_resolve(path)
        yield self.env.timeout(self.costs.mds_op_service)
        if path in self.files or path in self.dirs:
            raise FileExists(path)
        if parent_of(path) not in self.dirs:
            raise FileNotFound(parent_of(path))
        self.files[path] = attrs
        return attrs

    def handle_getattr(self, path: str) -> Generator[Event, Any, Dict]:
        yield from self._local_resolve(path)
        yield self.env.timeout(self.costs.mds_read_service)
        record = self.files.get(path) or self.dirs.get(path)
        if record is None:
            raise FileNotFound(path)
        return record

    def handle_unlink(self, path: str) -> Generator[Event, Any, None]:
        yield from self._local_resolve(path)
        yield self.env.timeout(self.costs.mds_op_service)
        if path not in self.files:
            raise FileNotFound(path)
        del self.files[path]


class ShardFS:
    """Deployment + client in one object (ablation-grade API)."""

    def __init__(self, cluster: Cluster, server_nodes: List[Node]):
        if not server_nodes:
            raise ValueError("need at least one server node")
        self.cluster = cluster
        self.servers = [_ShardFSServer(cluster, node, name=f"shardfs{i}")
                        for i, node in enumerate(server_nodes)]

    def file_server_for(self, path: str) -> _ShardFSServer:
        return self.servers[stable_hash64(normalize_path(path))
                            % len(self.servers)]

    # -- client-side operation generators -----------------------------------
    def mkdir(self, src: Node, path: str,
              mode: int = 0o755) -> Generator[Event, Any, None]:
        """Directory mutation: replicate to every server (the trade-off)."""
        path = normalize_path(path)
        attrs = {"mode": mode, "ftype": FileType.DIRECTORY.value}
        for server in self.servers:
            yield from server.request(src, "mkdir_replica", path, attrs)

    def create(self, src: Node, path: str,
               mode: int = 0o644) -> Generator[Event, Any, Dict]:
        path = normalize_path(path)
        attrs = {"mode": mode, "ftype": FileType.FILE.value}
        record = yield from self.file_server_for(path).request(
            src, "create", path, attrs)
        return record

    def getattr(self, src: Node, path: str) -> Generator[Event, Any, Dict]:
        """Single RPC regardless of depth — ShardFS's selling point."""
        path = normalize_path(path)
        record = yield from self.file_server_for(path).request(
            src, "getattr", path)
        return record

    def unlink(self, src: Node, path: str) -> Generator[Event, Any, None]:
        path = normalize_path(path)
        yield from self.file_server_for(path).request(src, "unlink", path)
