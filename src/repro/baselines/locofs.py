"""LocoFS-style baseline (ablation grade).

LocoFS (Li et al., SC'17) decouples directory metadata from file metadata:
*all* directory metadata lives on a single Directory Metadata Server (DMS)
— so path traversal completes inside one node — while file metadata is
flattened by full-path hash across File Metadata Servers (FMS).  The
trade-off §II.C highlights: the single DMS is a scalability ceiling and a
single point of failure.  Used by the path-traversal ablation bench.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.dfs.errors import FileExists, FileNotFound
from repro.dfs.inode import FileType
from repro.dfs.namespace import normalize_path, parent_of, split_path
from repro.kvstore.dht import stable_hash64
from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["LocoFS"]


class _DirectoryServer(Service):
    """The single DMS: all directory metadata, local traversal."""

    def __init__(self, cluster: Cluster, node: Node):
        super().__init__(cluster, node, "locofs-dms",
                         workers=cluster.costs.mds_workers)
        self.dirs: Dict[str, Dict] = {"/": {"mode": 0o777}}

    def handle_mkdir(self, path: str, attrs: Dict) -> Generator[Event, Any,
                                                                None]:
        yield self.env.timeout(self.costs.mds_op_service)
        if path in self.dirs:
            raise FileExists(path)
        if parent_of(path) not in self.dirs:
            raise FileNotFound(parent_of(path))
        self.dirs[path] = attrs

    def handle_check_path(self, path: str) -> Generator[Event, Any, bool]:
        """Validate every ancestor locally — single-node traversal."""
        parts = split_path(path)
        yield self.env.timeout(self.costs.mds_lookup_service +
                               1e-6 * max(0, len(parts) - 1))
        current = ""
        for name in parts[:-1]:
            current += "/" + name
            if current not in self.dirs:
                raise FileNotFound(current)
        return True


class _FileServer(Service):
    """One FMS: flattened file metadata keyed by full path."""

    def __init__(self, cluster: Cluster, node: Node, name: str):
        super().__init__(cluster, node, name,
                         workers=cluster.costs.mds_workers)
        self.files: Dict[str, Dict] = {}

    def handle_create(self, path: str, attrs: Dict) -> Generator[Event, Any,
                                                                 Dict]:
        yield self.env.timeout(self.costs.mds_op_service)
        if path in self.files:
            raise FileExists(path)
        self.files[path] = attrs
        return attrs

    def handle_getattr(self, path: str) -> Generator[Event, Any, Dict]:
        yield self.env.timeout(self.costs.mds_read_service)
        record = self.files.get(path)
        if record is None:
            raise FileNotFound(path)
        return record

    def handle_unlink(self, path: str) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.costs.mds_op_service)
        if path not in self.files:
            raise FileNotFound(path)
        del self.files[path]


class LocoFS:
    """Deployment + client generators (ablation-grade API)."""

    def __init__(self, cluster: Cluster, dms_node: Node,
                 fms_nodes: List[Node]):
        if not fms_nodes:
            raise ValueError("need at least one file metadata server")
        self.cluster = cluster
        self.dms = _DirectoryServer(cluster, dms_node)
        self.fms = [_FileServer(cluster, node, name=f"locofs-fms{i}")
                    for i, node in enumerate(fms_nodes)]

    def fms_for(self, path: str) -> _FileServer:
        return self.fms[stable_hash64(normalize_path(path)) % len(self.fms)]

    # -- client-side operation generators -----------------------------------
    def mkdir(self, src: Node, path: str,
              mode: int = 0o755) -> Generator[Event, Any, None]:
        path = normalize_path(path)
        yield from self.dms.request(src, "mkdir", path,
                                    {"mode": mode,
                                     "ftype": FileType.DIRECTORY.value})

    def create(self, src: Node, path: str,
               mode: int = 0o644) -> Generator[Event, Any, Dict]:
        """Two RPCs: one DMS path check + one FMS insert."""
        path = normalize_path(path)
        yield from self.dms.request(src, "check_path", path)
        record = yield from self.fms_for(path).request(
            src, "create", path, {"mode": mode,
                                  "ftype": FileType.FILE.value})
        return record

    def getattr(self, src: Node, path: str,
                check_path: bool = True) -> Generator[Event, Any, Dict]:
        """File stat: DMS validates the chain in one hop, FMS serves attrs."""
        path = normalize_path(path)
        if check_path:
            yield from self.dms.request(src, "check_path", path)
        record = yield from self.fms_for(path).request(src, "getattr", path)
        return record

    def unlink(self, src: Node, path: str) -> Generator[Event, Any, None]:
        path = normalize_path(path)
        yield from self.fms_for(path).request(src, "unlink", path)
