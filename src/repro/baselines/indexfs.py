"""IndexFS-equivalent metadata service (design-level reproduction).

IndexFS (Ren et al., SC'14) scales file-system metadata by flattening it
into LSM-tree KV stores partitioned across metadata servers, with
*stateless* client caching of directory entries under short leases, and
*bulk insertion* for N-N workloads (the mechanism BatchFS/DeltaFS build
on).  The paper under reproduction deploys IndexFS servers co-located with
the client nodes and stores the LevelDB tables on BeeGFS.

This module reproduces those design elements on this repo's substrates:

* each server owns an :class:`~repro.kvstore.lsm.LSMTree`; every operation
  charges simulated time from the tree's physical receipts (memtable vs.
  WAL vs. SSTable probes), so LSM read amplification and flush/compaction
  costs shape the results exactly as LevelDB shapes IndexFS's,
* metadata is partitioned by *parent directory* with GIGA+-style
  incremental splitting: a directory starts on one server and doubles its
  partition count whenever its entry count crosses a threshold, spreading
  hot directories over servers; lookups that miss the newest partition
  probe older partition generations (halving the partition count each
  probe) exactly as GIGA+ clients chase a stale mapping,
* clients resolve paths component-by-component against a lease-scoped
  dentry cache: a fresh lease costs nothing, an expired or missing entry
  costs a lookup RPC — deeper namespaces mean more entries to keep fresh,
  which is where Figs. 2/9's depth effect comes from,
* strong consistency at the servers: attributes are never served from the
  client cache (only dentry existence for traversal), matching §IV.A's
  observation that IndexFS "cannot fully utilize the memory on the client
  nodes".

Bulk insertion buffers creates client-side and ships them per-server in
batches (one WAL sync per batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    NotADirectory,
    PermissionDenied,
)
from repro.dfs.inode import AccessMode, FileType, Inode, check_mode_bits
from repro.dfs.namespace import normalize_path, parent_of, split_path
from repro.kvstore.dht import stable_hash64
from repro.kvstore.lsm import LSMTree, ReadReceipt, WriteReceipt
from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["IndexFS", "IndexFSServer", "IndexFSClient"]


def _record(ftype: FileType, mode: int, uid: int, gid: int, ino: int,
            now: float, size: int = 0) -> Dict[str, Any]:
    return {"ino": ino, "ftype": ftype.value, "mode": mode, "uid": uid,
            "gid": gid, "size": size, "ctime": now, "mtime": now,
            "nlink": 1, "inline_data": None}


class IndexFSServer(Service):
    """One metadata server: an LSM tree plus request handlers."""

    def __init__(self, cluster: Cluster, node: Node, name: str = "ifs",
                 memtable_limit: int = 4096, l0_limit: int = 4):
        super().__init__(cluster, node, name,
                         workers=cluster.costs.indexfs_workers)
        self.lsm = LSMTree(memtable_limit=memtable_limit, l0_limit=l0_limit,
                           name=name)
        self._next_ino = 1

    def alloc_ino(self) -> int:
        self._next_ino += 1
        return self._next_ino

    # -- cost charging ---------------------------------------------------
    def _charge_read(self, receipt: ReadReceipt) -> Generator[Event, Any, None]:
        c = self.costs
        cost = c.indexfs_op_cpu + c.lsm_memtable_op
        cost += c.lsm_bloom_check * receipt.bloom_checks
        cost += c.lsm_sstable_read * receipt.tables_probed
        yield self.env.timeout(cost)

    def _charge_write(self, receipt: WriteReceipt,
                      synced: bool = True) -> Generator[Event, Any, None]:
        c = self.costs
        cost = c.indexfs_op_cpu + c.lsm_memtable_op
        if synced:
            cost += c.lsm_wal_append
        cost += c.lsm_flush_per_entry * receipt.flushed_entries
        cost += c.lsm_compact_per_entry * receipt.compacted_entries
        yield self.env.timeout(cost)

    # -- internal helpers -------------------------------------------------------
    def _get(self, path: str) -> Generator[Event, Any, Optional[Dict]]:
        receipt = self.lsm.get(path)
        yield from self._charge_read(receipt)
        return receipt.value if receipt.found else None

    def _require_parent_dir(self, path: str) -> Dict:
        """Parent existence check against the shared directory map (the
        GIGA+-style index every server keeps a copy of)."""
        parent = parent_of(path)
        parent_record = self.deployment.dirmap.get(parent)
        if parent_record is None:
            raise FileNotFound(parent)
        if parent_record["ftype"] != FileType.DIRECTORY.value:
            raise NotADirectory(parent)
        return parent_record

    # -- handlers ---------------------------------------------------------------
    def handle_lookup(self, path: str) -> Generator[Event, Any, Dict]:
        record = yield from self._get(path)
        if record is None:
            raise FileNotFound(path)
        return record

    def handle_getattr(self, path: str, uid: int,
                       gid: int) -> Generator[Event, Any, Dict]:
        record = yield from self._get(path)
        if record is None:
            raise FileNotFound(path)
        return record

    def handle_create(self, path: str, ftype_value: str, mode: int, uid: int,
                      gid: int,
                      check_parent: bool = True) -> Generator[Event, Any,
                                                              Dict]:
        if check_parent:
            parent_record = self._require_parent_dir(path)
            if not check_mode_bits(parent_record["mode"], uid, gid,
                                   parent_record["uid"],
                                   parent_record["gid"],
                                   AccessMode.WRITE | AccessMode.EXECUTE):
                raise PermissionDenied(path, "parent write")
        existing = yield from self._get(path)
        if existing is not None:
            raise FileExists(path)
        record = _record(FileType(ftype_value), mode, uid, gid,
                         self.alloc_ino(), self.env.now)
        receipt = self.lsm.put(path, record)
        yield from self._charge_write(receipt)
        if FileType(ftype_value) is FileType.DIRECTORY:
            self.deployment.dirmap[path] = record
        self.deployment.note_insert(parent_of(path))
        return record

    def handle_bulk_insert(self, items: List[Tuple[str, Dict]]
                           ) -> Generator[Event, Any, int]:
        """Bulk insertion: one batch, one WAL sync (§II.B)."""
        receipt = self.lsm.put_batch(items)
        c = self.costs
        cost = c.indexfs_op_cpu + c.lsm_memtable_op * len(items)
        cost += c.lsm_wal_append  # single group sync
        cost += c.lsm_flush_per_entry * receipt.flushed_entries
        cost += c.lsm_compact_per_entry * receipt.compacted_entries
        yield self.env.timeout(cost)
        for path, record in items:
            if record["ftype"] == FileType.DIRECTORY.value:
                self.deployment.dirmap[path] = record
            self.deployment.note_insert(parent_of(path))
        return len(items)

    def handle_unlink(self, path: str, uid: int,
                      gid: int) -> Generator[Event, Any, None]:
        record = yield from self._get(path)
        if record is None:
            raise FileNotFound(path)
        if record["ftype"] == FileType.DIRECTORY.value:
            from repro.dfs.errors import IsADirectory
            raise IsADirectory(path)
        receipt = self.lsm.delete(path)
        yield from self._charge_write(receipt)
        self.deployment.note_remove(parent_of(path))

    def handle_rmdir_local(self, path: str) -> Generator[Event, Any, int]:
        """Remove every record in this partition under ``path``."""
        doomed = [k for k, _ in self.lsm.scan_prefix(path.rstrip("/") + "/")]
        own = self.lsm.get(path)
        yield from self._charge_read(own)
        removed = 0
        for key in doomed:
            receipt = self.lsm.delete(key)
            yield from self._charge_write(receipt, synced=False)
            removed += 1
        if own.found:
            receipt = self.lsm.delete(path)
            yield from self._charge_write(receipt)
            removed += 1
        self.deployment.dirmap.pop(path, None)
        return removed

    def handle_readdir(self, path: str) -> Generator[Event, Any, List[str]]:
        entries = list(self.lsm.scan_prefix(path.rstrip("/") + "/"))
        c = self.costs
        yield self.env.timeout(c.indexfs_op_cpu + c.lsm_memtable_op +
                               c.lsm_sstable_read +
                               c.lsm_bloom_check * len(entries))
        names = []
        prefix_len = len(path.rstrip("/")) + 1
        for key, _record in entries:
            rest = key[prefix_len:]
            if "/" not in rest:
                names.append(rest)
        return sorted(names)


@dataclass
class _LeaseEntry:
    record: Dict
    expires_at: float


class IndexFSClient:
    """Client with stateless (lease-based) directory-entry caching."""

    def __init__(self, deployment: "IndexFS", node: Node,
                 uid: int = 1000, gid: int = 1000):
        self.fs = deployment
        self.node = node
        self.env = deployment.cluster.env
        self.costs = deployment.cluster.costs
        self.uid = uid
        self.gid = gid
        self._dentry_cache: Dict[str, _LeaseEntry] = {}
        self._bulk_buffer: List[Tuple[str, Dict]] = []
        self.bulk_mode = False
        self.bulk_batch_size = 128
        # stats
        self.rpcs_sent = 0
        self.lease_hits = 0
        self.lease_renewals = 0

    # -- traversal with leases ------------------------------------------------
    def _resolve_dirs(self, path: str) -> Generator[Event, Any, None]:
        """Validate every ancestor directory, using leases when fresh."""
        parts = split_path(path)
        current = ""
        for name in parts[:-1]:
            current += "/" + name
            entry = self._dentry_cache.get(current)
            if entry is not None and entry.expires_at > self.env.now:
                self.lease_hits += 1
                record = entry.record
            else:
                record = yield from self._probe_lookup(current)
                self.lease_renewals += 1
                self._dentry_cache[current] = _LeaseEntry(
                    record, self.env.now + self.fs.lease_ttl)
            if record["ftype"] != FileType.DIRECTORY.value:
                raise NotADirectory(current)
            if not check_mode_bits(record["mode"], self.uid, self.gid,
                                   record["uid"], record["gid"],
                                   AccessMode.EXECUTE):
                raise PermissionDenied(current, "search permission")

    def _probe_lookup(self, path: str) -> Generator[Event, Any, Dict]:
        """GIGA+ lookup: probe partition generations newest-first."""
        chain = self.fs.probe_chain(path)
        for i, server in enumerate(chain):
            self.rpcs_sent += 1
            try:
                record = yield from server.request(self.node, "lookup", path)
                return record
            except FileNotFound:
                if i == len(chain) - 1:
                    raise
        raise FileNotFound(path)  # pragma: no cover - chain never empty

    # -- operations ----------------------------------------------------------------
    def mkdir(self, path: str,
              mode: int = 0o755) -> Generator[Event, Any, Inode]:
        path = normalize_path(path)
        yield from self._resolve_dirs(path)
        server = self.fs.server_for(path)
        self.rpcs_sent += 1
        record = yield from server.request(
            self.node, "create", path, FileType.DIRECTORY.value, mode,
            self.uid, self.gid)
        return Inode.from_record(record)

    def create(self, path: str,
               mode: int = 0o644) -> Generator[Event, Any, Inode]:
        path = normalize_path(path)
        if self.bulk_mode:
            record = yield from self._bulk_create(path, mode)
            return Inode.from_record(record)
        yield from self._resolve_dirs(path)
        server = self.fs.server_for(path)
        self.rpcs_sent += 1
        record = yield from server.request(
            self.node, "create", path, FileType.FILE.value, mode,
            self.uid, self.gid)
        return Inode.from_record(record)

    def _bulk_create(self, path: str,
                     mode: int) -> Generator[Event, Any, Dict]:
        record = _record(FileType.FILE, mode, self.uid, self.gid,
                         ino=-1, now=self.env.now)
        self._bulk_buffer.append((path, record))
        if self.costs.client_op_cpu > 0:
            yield self.env.timeout(self.costs.client_op_cpu)
        if len(self._bulk_buffer) >= self.bulk_batch_size:
            yield from self.flush_bulk()
        return record

    def flush_bulk(self) -> Generator[Event, Any, int]:
        """Ship buffered creates to their servers, one batch per server."""
        if not self._bulk_buffer:
            return 0
        by_server: Dict[Any, List[Tuple[str, Dict]]] = {}
        for path, record in self._bulk_buffer:
            by_server.setdefault(self.fs.server_for(path), []).append(
                (path, record))
        self._bulk_buffer = []
        total = 0
        for server, items in by_server.items():
            self.rpcs_sent += 1
            n = yield from server.request(self.node, "bulk_insert", items)
            total += n
        return total

    def getattr(self, path: str) -> Generator[Event, Any, Inode]:
        path = normalize_path(path)
        yield from self._resolve_dirs(path)
        record = yield from self._probe_lookup(path)
        return Inode.from_record(record)

    stat = getattr

    def exists(self, path: str) -> Generator[Event, Any, bool]:
        try:
            yield from self.getattr(path)
            return True
        except FileNotFound:
            return False

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        path = normalize_path(path)
        yield from self._resolve_dirs(path)
        chain = self.fs.probe_chain(path)
        for i, server in enumerate(chain):
            self.rpcs_sent += 1
            try:
                yield from server.request(self.node, "unlink", path,
                                          self.uid, self.gid)
                return
            except FileNotFound:
                if i == len(chain) - 1:
                    raise

    rm = unlink

    def rmdir(self, path: str) -> Generator[Event, Any, int]:
        """Recursive removal: every server drops its partition's slice."""
        path = normalize_path(path)
        yield from self._resolve_dirs(path)
        total = 0
        for server in self.fs.servers:
            self.rpcs_sent += 1
            n = yield from server.request(self.node, "rmdir_local", path)
            total += n
        self._dentry_cache.pop(path, None)
        self.fs.dir_partitions.pop(path, None)
        self.fs.dir_entry_counts.pop(path, None)
        return total

    def readdir(self, path: str) -> Generator[Event, Any, List[str]]:
        """Directory listing: gather from every partition of the directory
        (a split directory spreads its entries over several servers)."""
        path = normalize_path(path)
        yield from self._resolve_dirs(path + "/x")  # validate chain incl. path
        names: List[str] = []
        for server in self.fs.servers_of_dir(path):
            self.rpcs_sent += 1
            part = yield from server.request(self.node, "readdir", path)
            names.extend(part)
        return sorted(set(names))


class IndexFS:
    """Deployment: servers co-located with client nodes (paper §IV)."""

    def __init__(self, cluster: Cluster, server_nodes: List[Node],
                 lease_ttl: float = 200e-3, memtable_limit: int = 4096,
                 split_threshold: int = 2000):
        if not server_nodes:
            raise ValueError("need at least one server node")
        self.cluster = cluster
        self.lease_ttl = lease_ttl
        self.split_threshold = split_threshold
        self.servers = [
            IndexFSServer(cluster, node, name=f"ifs{i}",
                          memtable_limit=memtable_limit)
            for i, node in enumerate(server_nodes)
        ]
        for server in self.servers:
            server.deployment = self
        # Shared directory map = the cluster-wide GIGA+-style directory
        # index (every server learns new directories; root pre-exists).
        self.dirmap: Dict[str, Dict] = {
            "/": _record(FileType.DIRECTORY, 0o777, 0, 0, 1, 0.0)
        }
        # GIGA+ state: per-directory partition count (power of two) and
        # entry counter driving splits.
        self.dir_partitions: Dict[str, int] = {}
        self.dir_entry_counts: Dict[str, int] = {}
        self.splits = 0

    # -- GIGA+-style placement ---------------------------------------------
    def partitions_of(self, dir_path: str) -> int:
        return self.dir_partitions.get(normalize_path(dir_path), 1)

    def server_for_entry(self, dir_path: str, name: str,
                         nparts: Optional[int] = None) -> IndexFSServer:
        """Owner of entry ``name`` in ``dir_path`` at partition count
        ``nparts`` (defaults to the directory's current count)."""
        dir_path = normalize_path(dir_path)
        if nparts is None:
            nparts = self.partitions_of(dir_path)
        bucket = stable_hash64(name) % nparts
        idx = (stable_hash64(dir_path) + bucket) % len(self.servers)
        return self.servers[idx]

    def server_for(self, path: str) -> IndexFSServer:
        """Current-generation owner of ``path``."""
        path = normalize_path(path)
        parts = split_path(path)
        if not parts:
            return self.servers[0]
        return self.server_for_entry(parent_of(path), parts[-1])

    def probe_chain(self, path: str) -> List[IndexFSServer]:
        """Servers to probe for ``path``, newest partition generation
        first, halving the partition count each step (GIGA+ lookup)."""
        path = normalize_path(path)
        parts = split_path(path)
        if not parts:
            return [self.servers[0]]
        parent = parent_of(path)
        name = parts[-1]
        chain: List[IndexFSServer] = []
        nparts = self.partitions_of(parent)
        while True:
            server = self.server_for_entry(parent, name, nparts)
            if server not in chain:
                chain.append(server)
            if nparts == 1:
                break
            nparts //= 2
        return chain

    def note_insert(self, dir_path: str) -> None:
        """Count an insert; double the directory's partitions on overflow."""
        dir_path = normalize_path(dir_path)
        count = self.dir_entry_counts.get(dir_path, 0) + 1
        self.dir_entry_counts[dir_path] = count
        nparts = self.partitions_of(dir_path)
        if (count > self.split_threshold * nparts
                and nparts < len(self.servers)):
            self.dir_partitions[dir_path] = nparts * 2
            self.splits += 1

    def note_remove(self, dir_path: str) -> None:
        dir_path = normalize_path(dir_path)
        if dir_path in self.dir_entry_counts:
            self.dir_entry_counts[dir_path] = max(
                0, self.dir_entry_counts[dir_path] - 1)

    def servers_of_dir(self, dir_path: str) -> List[IndexFSServer]:
        """Every server that may hold entries of ``dir_path`` (for scans)."""
        dir_path = normalize_path(dir_path)
        out: List[IndexFSServer] = []
        nparts = self.partitions_of(dir_path)
        for bucket in range(nparts):
            server = self.servers[(stable_hash64(dir_path) + bucket)
                                  % len(self.servers)]
            if server not in out:
                out.append(server)
        return out

    def client(self, node: Node, uid: int = 1000,
               gid: int = 1000) -> IndexFSClient:
        return IndexFSClient(self, node, uid=uid, gid=gid)

    def admin_mkdir(self, path: str, mode: int = 0o777, uid: int = 0,
                    gid: int = 0) -> None:
        """Zero-cost administrative directory creation (experiment setup)."""
        path = normalize_path(path)
        record = _record(FileType.DIRECTORY, mode, uid, gid,
                         self.servers[0].alloc_ino(), 0.0)
        self.server_for(path).lsm.put(path, record)
        self.dirmap[path] = record
        self.note_insert(parent_of(path) if split_path(path) else "/")

    def total_entries(self) -> int:
        return sum(s.lsm.total_live_keys() for s in self.servers)
