"""Latency-attribution and resource-profile reports (``pacon-bench profile``).

Turns one observed run's tracer + hub state into two human-readable
tables and a top-N list:

* per-op-class mean latency decomposed into the attribution buckets
  (cache, network, queue_wait, barrier, publish_stall, mds_service,
  mds_queue) plus the explicit residual — the sum of the printed columns
  reconstructs the mean end-to-end latency exactly;
* the top-N slowest individual operations with their own breakdowns and
  span trees' worth of context (op, path, outcome);
* per-resource utilization and queueing: lifetime utilization, busy
  time, acquires, total/mean wait, and the peak queue length.

All numbers come from :func:`repro.obs.hub.attribution_rollup` and
:meth:`MetricsHub.resource_snapshot`, so the report always agrees with
the exported ``pacon.metrics/v2`` document.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.hub import attribution_rollup
from repro.sim.trace import ATTRIBUTION_BUCKETS, Tracer

__all__ = ["slowest_ops", "render_attribution_table",
           "render_slowest_ops", "render_resource_table", "render_report"]


def slowest_ops(tracer: Tracer, top: int = 10) -> List[Dict[str, Any]]:
    """The ``top`` highest-latency completed ops with their attributions.

    Ties break on op_id so the ordering (and any file written from it)
    is deterministic for same-seed runs.
    """
    attributions = tracer.attributions() if tracer.enabled else {}
    ranked = sorted(attributions.items(),
                    key=lambda kv: (-kv[1]["duration"], kv[0]))
    return [dict(att, op_id=op_id) for op_id, att in ranked[:top]]


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}"


def render_attribution_table(tracer: Tracer) -> str:
    """Per-op-class mean latency decomposition (all times in µs)."""
    rollup = attribution_rollup(tracer)
    if not rollup["ops"]:
        return "no completed operations traced"
    headers = (["op", "count", "mean_us"] + list(ATTRIBUTION_BUCKETS)
               + ["residual"])
    rows = []
    for op_class in sorted(rollup["ops"]):
        entry = rollup["ops"][op_class]
        rows.append([op_class, str(entry["count"]),
                     _us(entry["mean_latency"])]
                    + [_us(entry["buckets"][b]) for b in ATTRIBUTION_BUCKETS]
                    + [_us(entry["residual"])])
    return _table(headers, rows)


def render_slowest_ops(tracer: Tracer, top: int = 10) -> str:
    """Top-N slowest ops, one line each, with bucket breakdowns in µs."""
    ops = slowest_ops(tracer, top=top)
    if not ops:
        return "no completed operations traced"
    headers = (["op_id", "op", "dur_us"] + list(ATTRIBUTION_BUCKETS)
               + ["residual", "detail"])
    rows = []
    for att in ops:
        rows.append([str(att["op_id"]), att["op"], _us(att["duration"])]
                    + [_us(att["buckets"][b]) for b in ATTRIBUTION_BUCKETS]
                    + [_us(att["residual"]), att["detail"]])
    return _table(headers, rows)


def render_resource_table(hub) -> str:
    """Per-resource utilization/queueing table (waits in µs)."""
    snapshot = hub.resource_snapshot()
    if not snapshot:
        return "no resources registered"
    headers = ["resource", "cap", "util", "busy_us", "acquires",
               "wait_us", "mean_wait_us", "peak_q"]
    rows = []
    for name in sorted(snapshot):
        res = snapshot[name]
        acquires = res["total_acquires"]
        mean_wait = res["total_wait_time"] / acquires if acquires else 0.0
        rows.append([
            name, str(res["capacity"]), f"{res['utilization']:.3f}",
            _us(res["busy_time"]), str(acquires),
            _us(res["total_wait_time"]), _us(mean_wait),
            str(res["peak_queue"]),
        ])
    return _table(headers, rows)


def render_report(hub, tracer: Optional[Tracer] = None,
                  top: int = 10) -> str:
    """The full ``pacon-bench profile`` report."""
    tracer = tracer if tracer is not None else hub.tracer
    parts = [
        "== Latency attribution by op class (mean, us) ==",
        render_attribution_table(tracer),
        "",
        f"== Top {top} slowest operations ==",
        render_slowest_ops(tracer, top=top),
        "",
        "== Resource utilization and queueing ==",
        render_resource_table(hub),
    ]
    open_spans = tracer.open_span_count()
    if open_spans:
        parts.append(f"\n... {open_spans} spans still open")
    return "\n".join(parts)


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
