"""Constant-memory streaming quantile sketch (HDR-style log buckets).

:class:`~repro.sim.stats.Histogram` keeps every raw sample, which is fine
for the paper-scale experiments but grows without bound once
``AggregateClient`` sweeps push 20-100x the faithful client count through
one hub.  The sketch replaces the sample list with log-spaced buckets:

* bucket ``i`` covers the value range ``[growth**i, growth**(i+1))``, so
  memory is O(log(max/min)) regardless of sample count and every
  percentile query carries a bounded *relative* error of at most
  ``growth - 1`` (5% at the default growth of 1.05);
* ``count``/``sum``/``min``/``max`` are tracked exactly, so means and
  extrema never degrade;
* values ``<= 0`` land in a dedicated zero bucket (simulated latencies
  are non-negative; a zero is a same-instant observation, not an error);
* sketches with the same growth merge by bucket-count addition, which is
  associative and commutative — region-level sketches roll up into
  fleet-level ones without reordering error.

Observations accept an integer ``weight`` so one :class:`AggregateClient`
observation can stand for ``multiplier`` logical clients without looping.

Everything is pure Python over a plain dict; exports use string bucket
keys so ``json.dumps(..., sort_keys=True)`` stays byte-stable run to run.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

__all__ = ["QuantileSketch", "DEFAULT_GROWTH"]

#: Default bucket growth factor; relative quantile error <= growth - 1.
DEFAULT_GROWTH = 1.05


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch with exact count/sum/min/max."""

    __slots__ = ("name", "growth", "_inv_log_growth", "count", "total",
                 "zero_count", "_min", "_max", "_buckets")

    def __init__(self, name: str = "", growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.name = name
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        self.count = 0
        self.total = 0.0
        self.zero_count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: bucket index -> observation count (indices may be negative).
        self._buckets: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------
    def observe(self, value: float, weight: int = 1) -> None:
        """Record ``value`` as ``weight`` identical observations."""
        if weight <= 0:
            return
        self.count += weight
        self.total += value * weight
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= 0.0:
            self.zero_count += weight
            return
        idx = int(math.floor(math.log(value) * self._inv_log_growth))
        # Float rounding can land an exact power of growth one bucket low;
        # nudge up so the bucket invariant low <= value < high holds.
        if self.growth ** (idx + 1) <= value:
            idx += 1
        self._buckets[idx] = self._buckets.get(idx, 0) + weight

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (bucket-count addition)."""
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge sketches with growth {other.growth} into"
                f" {self.growth}")
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        return self

    # -- queries -------------------------------------------------------------
    @property
    def min(self) -> float:
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100), within ``growth - 1`` relative
        error; exact at the extremes (min/max are tracked exactly)."""
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        seen = self.zero_count
        if rank <= seen:
            return max(0.0, self.min)
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank <= seen:
                # Geometric midpoint of the bucket, clamped to the exact
                # observed range so p0/p100 never overshoot min/max.
                mid = self.growth ** (idx + 0.5)
                return min(self.max, max(self.min, mid))
        return self.max

    def summary(self) -> Dict[str, float]:
        """Same keys as :meth:`repro.sim.stats.Histogram.summary`."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    # -- (de)serialization ---------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """JSON-stable full state (string bucket keys sort bytewise)."""
        return {
            "growth": self.growth,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "zero": self.zero_count,
            "buckets": {str(idx): n
                        for idx, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_export(cls, doc: Dict[str, Any],
                    name: str = "") -> "QuantileSketch":
        sketch = cls(name, growth=doc.get("growth", DEFAULT_GROWTH))
        sketch.count = int(doc.get("count", 0))
        sketch.total = float(doc.get("sum", 0.0))
        sketch.zero_count = int(doc.get("zero", 0))
        if sketch.count:
            sketch._min = float(doc.get("min", 0.0))
            sketch._max = float(doc.get("max", 0.0))
        sketch._buckets = {int(idx): int(n)
                           for idx, n in doc.get("buckets", {}).items()}
        return sketch

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (f"QuantileSketch({self.name}: count={self.count}"
                f" buckets={len(self._buckets)})")
