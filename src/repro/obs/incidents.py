"""Incident detection and causal blame attribution over v4 exports.

The SLO engine (:mod:`repro.obs.slo`) answers "did the run pass?"; this
module answers "*when* did it degrade and *what caused it*?".  It is the
analysis half of the incident flight recorder: the control-plane
:class:`~repro.obs.timeline.Timeline` records what the operators (chaos
engine, autoscaler, membership, backpressure) *did*, and this module
lines those events up against what the gauges *saw*.

Everything is pure arithmetic over one already-exported metrics document
— the same dict :meth:`MetricsHub.export` builds, or the same JSON
loaded back from disk — so detection works identically online (stamped
into the export as the ``incidents`` section) and offline
(``pacon-bench incidents`` re-reading a file), and same-seed runs
produce byte-identical sections.

Detection
---------
Each :class:`IncidentRule` watches one gauge-series family (e.g. every
``queue.depth[...]`` merged, per-tick max across queues).  The breach
bound is *adaptive* by default: ``max(floor, adapt_factor × pXX of the
run's own samples, floor_frac × peak, span_frac × sampled span)`` — so
a chaos run whose baseline stall-age is microseconds still flags a
millisecond freeze, while a run that lives at milliseconds is not
spammed.  An incident opens
after ``open_after`` consecutive breaching ticks (hysteresis against
single-sample blips) and closes after ``close_after`` consecutive clean
ticks (hysteresis against flapping), then gets a real
:class:`~repro.obs.slo.SeriesThresholdObjective` verdict evaluated over
exactly its own window.

Blame
-----
Every timeline event becomes a *cause interval*: a fault spans
injection→recovery (paired by ``ref``), a scaling action or stall spans
its duration, membership changes are points.  A suspect's score against
an incident is ``weight × (1.5 × overlap + precedence)`` where
``overlap`` is the fraction of the incident covered by the cause and
``precedence`` rewards causes that began shortly before the incident
opened.  Weights (:data:`CAUSE_WEIGHTS`) encode the causal prior:
injected faults outrank failed scaling actions outrank planned scaling
outrank their own membership side-effects outrank backpressure stalls
(which are usually symptoms).  Each suspect carries an evidence string::

    mds_crash[0]@t=12.4 → queue.depth ↑ peak 38 (bound 6) →
        commit-backlog breach 12.6–19.1

Resource saturation (PR-3 ``resource.util[*]`` profiles) corroborates:
resources whose utilization exceeded 90% inside the incident window are
listed under ``saturated``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.slo import SeriesThresholdObjective, _series_points

__all__ = [
    "IncidentRule",
    "DEFAULT_RULES",
    "CAUSE_WEIGHTS",
    "detect_incidents",
    "fault_attribution",
    "format_report",
]

#: Causal prior per timeline-event kind.  Faults are the strongest
#: explanation; membership changes rank below the scaling/chaos actions
#: that produced them so a churn fault beats its own side-effects;
#: backpressure stalls are usually symptoms, not causes.
CAUSE_WEIGHTS: Dict[str, float] = {
    "fault.injected": 1.0,
    "scale.failed": 0.9,
    "scale.rejected": 0.7,
    "scale.grow": 0.6,
    "scale.retire": 0.6,
    "node.joined": 0.45,
    "node.departed": 0.45,
    "backpressure.stall": 0.3,
}

#: Utilization above this inside an incident window marks the resource
#: as saturated (corroborating evidence, not a suspect).
SATURATION_UTIL = 0.9

#: Suspects reported per incident.
MAX_SUSPECTS = 5


@dataclass(frozen=True)
class IncidentRule:
    """One watched gauge-series family and its breach policy.

    ``bound`` fixes an absolute threshold; when None the bound adapts to
    the run: ``max(floor, adapt_factor × pXX(samples), floor_frac ×
    peak, span_frac × sampled-span)``.  ``span_frac`` expresses
    age-style bounds as a fraction of the run (mirroring the chaos SLO
    policy, which sizes staleness bounds off the horizon).
    ``open_after``/``close_after`` are breach/clean tick streaks
    required to open/close an incident.
    """

    name: str
    series: str
    bound: Optional[float] = None
    adapt_factor: float = 8.0
    adapt_percentile: float = 50.0
    floor: float = 0.0
    floor_frac: float = 0.0
    span_frac: float = 0.0
    open_after: int = 2
    close_after: int = 3

    def resolve_bound(self, values: List[float], span: float = 0.0,
                      ) -> float:
        if self.bound is not None:
            return self.bound
        if not values:
            return self.floor
        ordered = sorted(values)
        idx = int(round(self.adapt_percentile / 100.0
                        * (len(ordered) - 1)))
        baseline = ordered[min(idx, len(ordered) - 1)]
        return max(self.floor, self.adapt_factor * baseline,
                   self.floor_frac * ordered[-1],
                   self.span_frac * span)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "series": self.series,
            "bound": self.bound,
            "adapt_factor": self.adapt_factor,
            "adapt_percentile": self.adapt_percentile,
            "floor": self.floor,
            "floor_frac": self.floor_frac,
            "span_frac": self.span_frac,
            "open_after": self.open_after,
            "close_after": self.close_after,
        }


#: The rules every v4 export is stamped with, one per degradation lens.
#:
#: * ``commit-stall`` — the pipeline froze: ``commit.stall_age`` tracks
#:   how long resolution has made zero progress while work is
#:   outstanding.  Healthy epoch batching pauses for a few sample
#:   intervals at a time; the adaptive bound (2 × its own p90, floored
#:   well above one interval) only trips on the long freezes an MDS
#:   outage, partition, or wedged barrier produces.
#: * ``client-errors`` — availability: any failed client op breaches
#:   (``bound=0.5`` against an integer-count gauge).  Retries arrive
#:   sparser than the sampling tick, so the rule opens on a single
#:   breaching tick and rides out gaps with a long close streak.
#: * ``staleness-burn`` — the staleness lens, sized like the chaos SLO
#:   policy's horizon-relative bounds: pending metadata older than a
#:   quarter of the sampled span is burning the staleness budget no
#:   matter what caused it (an incident with no suspects means the
#:   workload itself oversubscribed the pipeline).
#: * ``commit-backlog`` — queue depth beyond 4 × its own p90: a
#:   defensive lens for flash-crowd pile-ups that never translate into
#:   stalls or staleness.
DEFAULT_RULES: Tuple[IncidentRule, ...] = (
    IncidentRule("commit-stall", "commit.stall_age",
                 adapt_factor=2.0, adapt_percentile=90.0,
                 floor=1.5e-3, open_after=2, close_after=3),
    IncidentRule("client-errors", "client.error_rate",
                 bound=0.5, open_after=1, close_after=8),
    IncidentRule("staleness-burn", "consistency.pending_age",
                 adapt_factor=0.0, span_frac=0.25,
                 open_after=2, close_after=3),
    IncidentRule("commit-backlog", "queue.depth",
                 adapt_factor=4.0, adapt_percentile=90.0,
                 floor=6.0),
)


def _ticks(points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Collapse merged multi-source points to per-timestamp maxima.

    ``_series_points`` interleaves every ``series[...]`` instance; streak
    hysteresis needs one value per sampling instant, and the pessimistic
    (max) reading is the one that should open incidents.
    """
    out: List[Tuple[float, float]] = []
    for t, v in points:  # points arrive (t, v)-sorted
        if out and out[-1][0] == t:
            if v > out[-1][1]:
                out[-1] = (t, v)
        else:
            out.append((t, v))
    return out


def _detect_windows(rule: IncidentRule,
                    ticks: List[Tuple[float, float]],
                    bound: float) -> List[Tuple[float, float, float]]:
    """Streak-hysteresis scan → ``(start, end, peak)`` windows."""
    windows: List[Tuple[float, float, float]] = []
    breach_start: Optional[float] = None   # first tick of breach streak
    open_start: Optional[float] = None     # confirmed incident start
    last_breach: Optional[float] = None
    peak = 0.0          # incident-wide peak (once confirmed)
    streak_peak = 0.0   # current unconfirmed streak's peak
    breaching = 0
    clean = 0
    for t, v in ticks:
        if v > bound:
            breaching += 1
            clean = 0
            if breach_start is None:
                breach_start = t
                streak_peak = v
            else:
                streak_peak = max(streak_peak, v)
            last_breach = t
            if open_start is not None:
                peak = max(peak, v)
            elif breaching >= rule.open_after:
                open_start = breach_start
                peak = streak_peak
        else:
            breaching = 0
            breach_start = None
            if open_start is not None:
                clean += 1
                if clean >= rule.close_after:
                    windows.append((open_start, last_breach, peak))
                    open_start = None
                    clean = 0
                    peak = 0.0
    if open_start is not None and last_breach is not None:
        windows.append((open_start, last_breach, peak))
    return windows


def _cause_intervals(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Timeline events → scored cause intervals.

    Faults span injection→recovery (recovery events reference the
    injection's ``seq`` and are folded in, not causes themselves);
    events with a duration span it; the rest are points.  Unrecovered
    faults stay open-ended (``end`` None, clamped per incident).
    """
    events = ((doc.get("timeline") or {}).get("events")) or []
    causes: List[Dict[str, Any]] = []
    by_seq: Dict[int, Dict[str, Any]] = {}
    for ev in events:
        kind = ev.get("kind", "")
        if kind == "fault.recovered":
            opener = by_seq.get(ev.get("ref", -1))
            if opener is not None:
                opener["end"] = ev["t"]
            continue
        if kind not in CAUSE_WEIGHTS:
            continue
        cause = {
            "seq": ev["seq"],
            "kind": kind,
            "label": ev.get("label", ""),
            "start": ev["t"],
            "end": (None if kind == "fault.injected"
                    else ev["t"] + ev.get("duration", 0.0)),
            "weight": CAUSE_WEIGHTS[kind],
        }
        by_seq[ev["seq"]] = cause
        causes.append(cause)
    return causes


def _blame(causes: List[Dict[str, Any]], start: float, end: float,
           span: float, rule: IncidentRule, bound: float, peak: float,
           ) -> List[Dict[str, Any]]:
    """Rank cause intervals against one incident window."""
    duration = max(end - start, 1e-12)
    lookback = max(2.0 * duration, 0.05 * span)
    suspects: List[Tuple[float, int, Dict[str, Any]]] = []
    for cause in causes:
        c0 = cause["start"]
        c1 = cause["end"] if cause["end"] is not None else end
        if c0 > end:
            continue  # cause began after the incident was over
        overlap = max(0.0, min(end, c1) - max(start, c0)) / duration
        gap = start - c0
        if gap >= 0:
            precedence = max(0.0, 1.0 - gap / lookback)
        else:
            precedence = 0.75  # emerged mid-incident: cascade suspect
        score = cause["weight"] * (1.5 * overlap + precedence)
        if score <= 0.0:
            continue
        suspects.append((score, cause["seq"], cause))
    suspects.sort(key=lambda item: (-item[0], item[1]))
    out: List[Dict[str, Any]] = []
    for rank, (score, seq, cause) in enumerate(
            suspects[:MAX_SUSPECTS], start=1):
        out.append({
            "rank": rank,
            "seq": seq,
            "kind": cause["kind"],
            "label": cause["label"],
            "t": cause["start"],
            "score": round(score, 6),
            "evidence": (
                f"{cause['label']}@t={cause['start']:.4g}"
                f" → {rule.series} ↑ peak {peak:.4g}"
                f" (bound {bound:.4g})"
                f" → {rule.name} breach {start:.4g}–{end:.4g}"),
        })
    return out


def _saturated(doc: Dict[str, Any], start: float, end: float) -> List[str]:
    """Resources whose ``resource.util`` exceeded the saturation bar
    inside the window (corroborating evidence for blame)."""
    names: List[str] = []
    for name, series in sorted((doc.get("series") or {}).items()):
        if not name.startswith("resource.util["):
            continue
        for t, v in zip(series.get("t", []), series.get("v", [])):
            if start <= t <= end and v > SATURATION_UTIL:
                names.append(name[len("resource.util["):-1])
                break
    return names


def detect_incidents(doc: Dict[str, Any],
                     rules: Optional[Tuple[IncidentRule, ...]] = None,
                     ) -> Dict[str, Any]:
    """The v4 ``incidents`` section for one exported document.

    Pure and deterministic: same document → byte-identical section.
    Usable online (inside :meth:`MetricsHub.export`) and offline
    (``pacon-bench incidents`` over a saved v4 JSON).
    """
    rules = DEFAULT_RULES if rules is None else rules
    causes = _cause_intervals(doc)
    found: List[Dict[str, Any]] = []
    for rule in rules:
        points = _series_points(doc, rule.series)
        if not points:
            continue
        ticks = _ticks(points)
        span = max(ticks[-1][0] - ticks[0][0], 1e-12)
        bound = rule.resolve_bound([v for _, v in ticks], span)
        for start, end, peak in _detect_windows(rule, ticks, bound):
            verdict = SeriesThresholdObjective(
                f"{rule.name}@incident", rule.series, bound,
                mode="max").evaluate(doc, window=(start, end))
            found.append({
                "rule": rule.name,
                "series": rule.series,
                "start": start,
                "end": end,
                "duration": end - start,
                "peak": peak,
                "bound": bound,
                "verdict": verdict.to_doc(),
                "suspects": _blame(causes, start, end, span, rule,
                                   bound, peak),
                "saturated": _saturated(doc, start, end),
            })
    found.sort(key=lambda inc: (inc["start"], inc["rule"]))
    for idx, inc in enumerate(found, start=1):
        inc["id"] = f"INC-{idx:03d}"
    return {
        "policy": "incident-default",
        "rules": [rule.to_doc() for rule in rules],
        "count": len(found),
        "incidents": found,
    }


def fault_attribution(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per injected fault: which incidents blamed it, and was it ever the
    top suspect?  This is the CI gate's payload — every chaos scenario
    must attribute every injected fault to at least one incident with
    the fault ranked first.
    """
    events = ((doc.get("timeline") or {}).get("events")) or []
    incidents = ((doc.get("incidents") or {}).get("incidents")) or []
    out: List[Dict[str, Any]] = []
    for ev in events:
        if ev.get("kind") != "fault.injected":
            continue
        blamed: List[str] = []
        top: List[str] = []
        for inc in incidents:
            for suspect in inc.get("suspects", []):
                if suspect["seq"] == ev["seq"]:
                    blamed.append(inc["id"])
                    if suspect["rank"] == 1:
                        top.append(inc["id"])
                    break
        out.append({
            "seq": ev["seq"],
            "fault": ev.get("label", ""),
            "t": ev["t"],
            "incidents": blamed,
            "top_suspect_of": top,
            "attributed": bool(top),
        })
    return out


def format_report(doc: Dict[str, Any]) -> str:
    """Human-readable incident report (CLI + CI logs)."""
    section = doc.get("incidents") or {}
    incidents = section.get("incidents") or []
    lines = [f"incidents: {len(incidents)}"
             f" (policy {section.get('policy', '?')})"]
    for inc in incidents:
        verdict = inc.get("verdict") or {}
        lines.append(
            f"  {inc['id']} [{inc['rule']}] {inc['start']:.6g}"
            f"–{inc['end']:.6g}  peak {inc['peak']:.4g}"
            f" > bound {inc['bound']:.4g}"
            f"  slo:{'ok' if verdict.get('ok') else 'BREACH'}")
        for suspect in inc.get("suspects", []):
            lines.append(f"    #{suspect['rank']}"
                         f" score {suspect['score']:.3f}"
                         f"  {suspect['evidence']}")
        if inc.get("saturated"):
            lines.append("    saturated: "
                         + ", ".join(inc["saturated"]))
    attribution = fault_attribution(doc)
    if attribution:
        lines.append("fault attribution:")
        for row in attribution:
            status = "ok  " if row["attributed"] else "MISS"
            targets = ", ".join(row["top_suspect_of"]) or "-"
            lines.append(f"  [{status}] {row['fault']:<28}"
                         f" t={row['t']:.6g}  top suspect of: {targets}")
    return "\n".join(lines)
