"""The MetricsHub: region-wide metric aggregation and stable JSON export.

One hub serves a whole experiment.  Regions and clients are *attached* to
it (attaching a region also installs the hub and its tracer onto the
region, which is what turns the client/commit hot-path instrumentation
on); at export time the hub combines

* its own :class:`~repro.sim.stats.StatsRegistry` (latency histograms,
  commit counters, sampled gauge series), and
* a snapshot of every attached region (cache, queue, commit-process, and
  barrier state) and client (op/hit/miss/redirect counts)

into one JSON document with fully sorted keys, so two same-seed runs
produce byte-identical exports and ``diff`` localizes any divergence.

The shared :data:`NULL_HUB` is the disabled instance every region starts
with; its ``enabled`` flag is the only thing hot paths ever read from it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.sampler import GaugeSampler
from repro.obs.timeline import NULL_TIMELINE, Timeline
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = ["MetricsHub", "NULL_HUB", "attribution_rollup"]

SCHEMA = "pacon.metrics/v4"

#: Previous schema versions; each bump is additive (v3 added
#: ``consistency`` + ``slo``, v4 adds ``timeline`` + ``incidents``), so
#: older consumers can read a newer document unchanged.
SCHEMA_V3 = "pacon.metrics/v3"
SCHEMA_V2 = "pacon.metrics/v2"


class MetricsHub:
    """Aggregates client + commit + cache + queue statistics region-wide."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 sample_interval: Optional[float] = None,
                 enabled: bool = True):
        self.enabled = enabled
        self.stats = StatsRegistry()
        #: Tracer shared with every attached region; NULL_TRACER unless the
        #: caller wants span/commit events collected too.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Simulated-seconds between gauge samples; None disables sampling.
        self.sample_interval = sample_interval
        #: Control-plane event log (chaos faults, scaling actions,
        #: membership changes, backpressure stalls).  Only allocated when
        #: the hub is live — the NULL path shares one no-op timeline, and
        #: the zero-cost tests monkeypatch Timeline.__init__ to prove no
        #: disabled run ever constructs one.
        self.timeline = Timeline() if enabled else NULL_TIMELINE
        self._regions: List[Any] = []
        self._clients: List[Any] = []
        self._samplers: List[GaugeSampler] = []
        #: Registered contention resources, dedup'd by identity so shared
        #: infrastructure (one DFS under many regions) is profiled once.
        self._resources: List[Tuple[str, Any]] = []
        self._resource_ids: set = set()
        self._resource_names: set = set()
        #: Running hub-wide failed-op total (weight-summed).  Samplers
        #: poll it per tick to derive the ``client.error_rate[*]``
        #: series without scanning the counter registry on the hot path.
        self.error_count = 0

    # -- recording (hot paths guard on .enabled before calling) ------------
    def observe_op(self, op: str, latency: float, ok: bool = True,
                   weight: int = 1) -> None:
        """One completed client operation with its simulated latency.

        ``weight`` is the number of logical clients the observation stands
        for (``AggregateClient.multiplier``), so op counters and latency
        distributions agree between faithful and aggregate runs at
        matched scale.
        """
        self.stats.sketch(f"client.op.{op}.latency").observe(latency,
                                                             weight)
        self.stats.counter("client.ops").inc(weight)
        if not ok:
            self.stats.counter(f"client.op.{op}.errors").inc(weight)
            self.error_count += weight

    def observe_commit(self, op: str, latency: float) -> None:
        """One committed operation; latency is publish→commit."""
        self.stats.sketch("commit.latency").observe(latency)
        self.stats.sketch(f"commit.op.{op}.latency").observe(latency)
        self.stats.counter("commit.committed").inc()

    def observe(self, name: str, value: float, weight: int = 1) -> None:
        self.stats.sketch(name).observe(value, weight)

    def observe_staleness(self, tier: str, op: str, age: float, lag: int,
                          weight: int = 1) -> None:
        """One metadata read served from ``tier`` with its staleness.

        ``age`` is sim-time since the served value last changed while the
        authoritative MDS copy still lags it; ``lag`` is the number of
        pending (published, not yet committed) mutations for the path.
        Reads served by the MDS itself are authoritative by definition
        (age 0, lag 0) and still recorded, so tier distributions compare.
        """
        self.stats.counter(f"consistency.reads[{tier}]").inc(weight)
        self.stats.sketch(
            f"consistency.staleness.age[{tier}:{op}]").observe(age, weight)
        self.stats.sketch(
            f"consistency.staleness.lag[{tier}:{op}]").observe(
                float(lag), weight)

    def observe_visibility(self, stage: str, op: str, latency: float,
                           weight: int = 1) -> None:
        """Submit-to-``stage`` visibility latency of one committed op.

        ``stage`` is ``committed`` (MDS applied the mutation) or
        ``global`` (the cached copy flipped to committed too, i.e. both
        copies converged and every tier serves fresh metadata).
        ``weight`` is the logical-op weight the message was published
        with (:attr:`OpMessage.weight`).
        """
        self.stats.sketch(
            f"consistency.visibility.{stage}[{op}]").observe(latency,
                                                             weight)

    def count(self, name: str, n: int = 1) -> None:
        self.stats.counter(name).inc(n)

    def record_sample(self, name: str, time: float, value: float) -> None:
        self.stats.series(name).append(time, value)

    def series_recorder(self, name: str) -> Any:
        """Bound ``append`` for one gauge series.

        Samplers resolve each gauge's recorder once and skip the
        per-sample registry lookup and key formatting on every wakeup.
        """
        return self.stats.series(name).append

    # -- wiring ------------------------------------------------------------
    def register_resource(self, resource, name: str = "") -> Optional[str]:
        """Track a :class:`~repro.sim.resources.Resource` for profiling.

        Installs the wait-time observer (feeding the
        ``resource.wait[<name>]`` histogram) and includes the resource in
        the export's ``resources`` section.  Identity-deduplicated:
        re-registering returns None so shared infrastructure sampled by
        one region's sampler is not sampled again by another's.
        """
        if id(resource) in self._resource_ids:
            return None
        label = name or resource.name or f"resource{len(self._resources)}"
        if label in self._resource_names:
            label = f"{label}#{len(self._resources)}"
        self._resource_ids.add(id(resource))
        self._resource_names.add(label)
        self._resources.append((label, resource))
        if self.enabled:
            resource._wait_observe = (
                lambda waited, _n=label:
                self.observe(f"resource.wait[{_n}]", waited))
        return label

    def attach_region(self, region, start_sampler: bool = True):
        """Install this hub (and its tracer) on ``region``.

        Installs the tracer on the region's cluster and network too (span
        propagation into services and transfers), registers the region's
        contention resources — node CPUs/NICs, cache-shard worker pools,
        and the DFS's MDS/data-server pools and nodes — and starts a
        :class:`GaugeSampler` for the region when the hub has a
        ``sample_interval`` and ``start_sampler`` is left on.  The sampler
        covers only the resources first registered here, so shared DFS
        resources produce one utilization series, not one per region.
        """
        region.hub = self
        region.tracer = self.tracer
        region.cluster.tracer = self.tracer
        region.cluster.network.tracer = self.tracer
        # The network counts delivery-time drops (`net.dropped`) here.
        region.cluster.network.hub = self
        self._regions.append(region)
        # Per-shard read attribution for the consistency lens (zero-cost
        # until enabled; the ring counts owner lookups from then on).
        ring = getattr(region.cache, "ring", None)
        if ring is not None:
            ring.enable_lookup_stats()
        fresh: List[Tuple[str, Any]] = []

        def reg(resource, name: str = "") -> None:
            if resource is None:
                return
            label = self.register_resource(resource, name)
            if label is not None:
                fresh.append((label, resource))

        for node in region.nodes:
            reg(node.cpu)
            reg(node.nic)
        for shard in region.shards:
            reg(shard.workers)
        dfs = region.dfs
        for server in (list(getattr(dfs, "mds_servers", []) or []) +
                       list(getattr(dfs, "data_servers", []) or [])):
            reg(server.workers)
            node = getattr(server, "node", None)
            if node is not None:
                reg(node.cpu)
                reg(node.nic)
        if start_sampler and self.sample_interval:
            sampler = GaugeSampler(self, region, self.sample_interval,
                                   resources=fresh)
            sampler.start()
            self._samplers.append(sampler)
        return region

    def track_resource(self, region, resource, name: str = "") -> None:
        """Register a resource that joined ``region`` after attachment.

        Elastic growth adds nodes (CPU/NIC) and cache shards mid-run;
        this registers them for the contention snapshot and, when the
        region has a running sampler, extends that sampler so the new
        resources get ``resource.util[*]`` series from now on.  Identity
        deduplication applies as usual, so re-growing onto a previously
        retired node does not double-sample it.
        """
        label = self.register_resource(resource, name)
        if label is None:
            return
        for sampler in self._samplers:
            if sampler.region is region:
                sampler.track(label, resource)

    def attach_client(self, client) -> None:
        self._clients.append(client)

    @property
    def samplers(self) -> List[GaugeSampler]:
        return list(self._samplers)

    def stop_samplers(self) -> None:
        for sampler in self._samplers:
            sampler.stop()

    # -- export ------------------------------------------------------------
    def consistency_snapshot(self) -> Dict[str, Any]:
        """Cross-tier staleness/visibility rollup (v3 ``consistency``).

        Merges the per-``tier:op`` staleness sketches into headline
        distributions (sketch buckets add exactly, so the merge is
        lossless at sketch resolution) and attributes reads to cache
        shards via the hash ring's lookup counters.
        """
        from repro.obs.sketch import QuantileSketch

        sketches = self.stats.sketches()

        def merged(prefix: str, label: str) -> "QuantileSketch":
            out = QuantileSketch(label)
            for name in sorted(sketches):
                if name.startswith(prefix):
                    out.merge(sketches[name])
            return out

        counters = self.stats.counters()
        reads = {name[len("consistency.reads["):-1]: value
                 for name, value in counters.items()
                 if name.startswith("consistency.reads[")}
        age = merged("consistency.staleness.age[",
                     "consistency.staleness.age")
        lag = merged("consistency.staleness.lag[",
                     "consistency.staleness.lag")
        visibility = {
            stage: merged(f"consistency.visibility.{stage}[",
                          f"consistency.visibility.{stage}").summary()
            for stage in ("committed", "global")}
        shard_reads: Dict[str, int] = {}
        pending = 0
        for region in self._regions:
            pending += region.total_pending_mutations()
            ring = getattr(region.cache, "ring", None)
            counts = ring.lookup_counts() if ring is not None else None
            if counts:
                for member, n in counts.items():
                    shard_reads[member] = shard_reads.get(member, 0) + n
        return {
            "reads": reads,
            "orphan_reads": counters.get("consistency.orphan_reads", 0),
            "staleness": {"age": age.summary(), "lag": lag.summary()},
            "staleness_p99": age.percentile(99),
            "visibility": visibility,
            "pending_mutations": pending,
            "shard_reads": {k: shard_reads[k] for k in sorted(shard_reads)},
            "sketches": {name: sk.export()
                         for name, sk in sorted(sketches.items())
                         if name.startswith("consistency.")},
        }

    def export(self) -> Dict[str, Any]:
        """One aggregated document; keys sort stably for run-to-run diffs."""
        regions: Dict[str, Any] = {}
        for idx, region in enumerate(self._regions):
            regions[f"{idx:02d}:{region.name}"] = _region_snapshot(region)
        doc = {
            "schema": SCHEMA,
            "enabled": self.enabled,
            "counters": self.stats.counters(),
            "histograms": self.stats.histograms(),
            "meters": self.stats.meters(),
            "series": self.stats.series_export(),
            "regions": regions,
            "clients": _client_snapshot(self._clients),
            "attribution": attribution_rollup(self.tracer),
            "resources": self.resource_snapshot(),
            "consistency": self.consistency_snapshot(),
            "trace": {"events": len(self.tracer),
                      "dropped": self.tracer.dropped,
                      "open_spans": self.tracer.open_span_count()},
        }
        # Lazy: the SLO engine evaluates finished documents, so it lives
        # above the hub and must not be imported at module init.
        from repro.obs.slo import default_policy
        doc["slo"] = default_policy().evaluate(doc).to_doc()
        doc["timeline"] = self.timeline.export()
        # Incident detection reads the finished document (series +
        # timeline), so it runs last and stays lazily imported too.
        from repro.obs.incidents import detect_incidents
        doc["incidents"] = detect_incidents(doc)
        return doc

    def resource_snapshot(self) -> Dict[str, Any]:
        """Lifetime contention figures for every registered resource."""
        out: Dict[str, Any] = {}
        for name, res in self._resources:
            out[name] = {
                "capacity": res.capacity,
                "utilization": res.utilization(),
                "busy_time": res.busy_time(),
                "total_acquires": res.total_acquires,
                "total_wait_time": res.total_wait_time,
                "peak_queue": res.peak_queue,
            }
        return out

    def to_json(self, indent: Optional[int] = None,
                doc: Optional[Dict[str, Any]] = None) -> str:
        """Serialize ``doc`` (or a fresh :meth:`export`) deterministically.

        Passing an already-exported document avoids re-running the SLO
        and incident passes when the caller needs both the dict and the
        JSON (the CLI does).
        """
        if doc is None:
            doc = self.export()
        return json.dumps(doc, sort_keys=True, indent=indent)


def attribution_rollup(tracer) -> Dict[str, Any]:
    """Aggregate per-op latency attributions by op class.

    For each op class (mkdir, create, getattr, ...): completed-op count,
    mean end-to-end latency, mean time per attribution bucket, and the
    mean residual — ``mean_latency == sum(buckets) + residual`` exactly,
    by construction, so the decomposition can never silently lose time.
    """
    from repro.sim.trace import ATTRIBUTION_BUCKETS

    per_class: Dict[str, Dict[str, Any]] = {}
    attributions = tracer.attributions() if tracer.enabled else {}
    for op_id in sorted(attributions):
        att = attributions[op_id]
        agg = per_class.setdefault(att["op"] or "?", {
            "count": 0,
            "total_latency": 0.0,
            "buckets": {name: 0.0 for name in ATTRIBUTION_BUCKETS},
            "residual": 0.0,
        })
        agg["count"] += 1
        agg["total_latency"] += att["duration"]
        for name, value in att["buckets"].items():
            agg["buckets"][name] += value
        agg["residual"] += att["residual"]
    ops: Dict[str, Any] = {}
    for op_class, agg in per_class.items():
        n = agg["count"]
        ops[op_class] = {
            "count": n,
            "mean_latency": agg["total_latency"] / n,
            "buckets": {name: total / n
                        for name, total in agg["buckets"].items()},
            "residual": agg["residual"] / n,
        }
    return {"ops": ops, "total_ops": len(attributions),
            "buckets": list(ATTRIBUTION_BUCKETS)}


def _region_snapshot(region) -> Dict[str, Any]:
    commit = {"committed": 0, "discarded": 0, "resubmissions": 0,
              "coalesced": 0, "barriers_passed": 0, "replays": 0,
              "aborts": 0}
    for cp in region.commit_processes:
        commit["committed"] += cp.committed
        commit["discarded"] += cp.discarded
        commit["resubmissions"] += cp.resubmissions
        commit["coalesced"] += cp.coalesced
        commit["barriers_passed"] += cp.barriers_passed
        commit["replays"] += cp.replays
        commit["aborts"] += cp.aborts
    queues = {}
    for queue in region.queues.queues():
        queues[queue.name] = {"depth": len(queue),
                              "peak_depth": queue.peak_depth,
                              "published": queue.published,
                              "delivered": queue.delivered,
                              "wait_time": queue.total_wait_time}
    hits, misses = region.cache.hit_miss_counts()
    return {
        "workspace": region.workspace,
        "nodes": len(region.nodes),
        "clients": region.total_clients(),
        "ops_submitted": region.ops_submitted,
        "ops_committed": region.ops_committed,
        "barrier_epochs_completed": region.barrier_epochs_completed,
        "cache": {
            "items": region.cache.total_items(),
            "used_bytes": region.cache.used_bytes(),
            "hits": hits,
            "misses": misses,
            "hit_rate": region.cache.hit_rate(),
            "cas_retries": region.cache.cas_retries,
        },
        "queues": queues,
        "commit": commit,
    }


def _client_snapshot(clients) -> Dict[str, int]:
    snap = {"count": len(clients), "ops": 0, "cache_hits": 0,
            "cache_misses": 0, "redirects": 0}
    for client in clients:
        snap["ops"] += client.ops
        snap["cache_hits"] += client.cache_hits
        snap["cache_misses"] += client.cache_misses
        snap["redirects"] += client.redirects
    return snap


class _NullHub(MetricsHub):
    """Shared disabled hub; recording methods discard everything."""

    def __init__(self):
        super().__init__(enabled=False)

    def observe_op(self, *a, **kw) -> None:  # pragma: no cover - trivial
        return

    def observe_commit(self, *a, **kw) -> None:  # pragma: no cover
        return

    def observe(self, *a, **kw) -> None:  # pragma: no cover - trivial
        return

    def observe_staleness(self, *a, **kw) -> None:  # pragma: no cover
        return

    def observe_visibility(self, *a, **kw) -> None:  # pragma: no cover
        return

    def count(self, *a, **kw) -> None:  # pragma: no cover - trivial
        return

    def record_sample(self, *a, **kw) -> None:  # pragma: no cover
        return

    def series_recorder(self, name: str) -> Any:  # pragma: no cover
        return lambda time, value: None

    def attach_region(self, region, start_sampler: bool = True):
        raise RuntimeError("NULL_HUB is shared and read-only; create a"
                           " MetricsHub() to attach regions")


NULL_HUB = _NullHub()
