"""Periodic gauge sampling as a simulation process.

A :class:`GaugeSampler` wakes every ``interval`` simulated seconds and
records point-in-time gauges for one region into the hub's registry:

* ``queue.depth[<queue>]`` — per-node commit-queue backlog,
* ``queue.backlog[<region>]`` — region-wide backlog total,
* ``cache.used_bytes[<region>]`` — bytes held by the distributed cache,
* ``cache.hit_rate[<region>]`` — cumulative cache hit rate,
* ``resource.util[<name>]`` — *windowed* time-weighted utilization of
  each resource handed to the sampler (node CPUs/NICs, worker pools):
  busy slot-seconds accumulated since the previous sample divided by
  window × capacity, so bursts show up instead of being averaged away.

The sampler only *reads* state and never yields anything but its own
timeout, so it cannot perturb the simulated timing of the system under
test.  It exits on its own once the region's commit queues close (end of
run) or when interrupted via :meth:`stop`, so a drained event heap stays
drainable.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.core import Event, Interrupt

__all__ = ["GaugeSampler"]


class GaugeSampler:
    """DES process recording one region's gauges each simulated interval."""

    def __init__(self, hub, region, interval: float,
                 resources: Optional[List[Tuple[str, Any]]] = None):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.hub = hub
        self.region = region
        self.interval = interval
        self.env = region.env
        self.samples = 0
        #: ``(name, Resource)`` pairs whose windowed utilization this
        #: sampler records (the hub hands each sampler only the resources
        #: it registered first, so shared ones are sampled exactly once).
        self.resources = list(resources or [])
        self._last_busy: Dict[str, Tuple[float, float]] = {}
        self._process = None

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Spawn the sampling loop; returns the Process."""
        if self._process is not None and self._process.is_alive:
            return self._process
        self._process = self.env.process(
            self.run(), label=f"sampler:{self.region.name}")
        return self._process

    def stop(self) -> None:
        """Interrupt the sampling loop (it takes one more sim step)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sampler stopped")

    # -- the loop ----------------------------------------------------------
    def run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                self.sample_once()
                if all(q.closed for q in self.region.queues.queues()):
                    return  # end of run: let the event heap drain
                yield self.env.timeout(self.interval)
        except Interrupt:
            return

    def sample_once(self) -> None:
        """Record one point per gauge at the current simulated time."""
        t = self.env.now
        region = self.region
        record = self.hub.record_sample
        for queue in region.queues.queues():
            record(f"queue.depth[{queue.name}]", t, len(queue))
        record(f"queue.backlog[{region.name}]", t,
               region.queues.total_backlog())
        record(f"cache.used_bytes[{region.name}]", t,
               region.cache.used_bytes())
        record(f"cache.hit_rate[{region.name}]", t, region.cache.hit_rate())
        for name, resource in self.resources:
            busy = resource.busy_time()
            prev_busy, prev_t = self._last_busy.get(
                name, (0.0, resource.created_at))
            window = t - prev_t
            util = ((busy - prev_busy) / (window * resource.capacity)
                    if window > 0 else 0.0)
            record(f"resource.util[{name}]", t, util)
            self._last_busy[name] = (busy, t)
        self.samples += 1
