"""Periodic gauge sampling as a simulation process.

A :class:`GaugeSampler` wakes every ``interval`` simulated seconds and
records point-in-time gauges for one region into the hub's registry:

* ``queue.depth[<queue>]`` — per-node commit-queue backlog,
* ``queue.backlog[<region>]`` — region-wide backlog total,
* ``cache.used_bytes[<region>]`` — bytes held by the distributed cache,
* ``cache.hit_rate[<region>]`` — cumulative cache hit rate,
* ``consistency.pending_age[<region>]`` — age of the region's oldest
  published-but-unresolved mutation (0 when fully converged): the
  instantaneous staleness exposure the SLO engine windows over
  fault/recovery phases,
* ``commit.stall_age[<region>]`` — how long the region's commit
  pipeline has made *zero* resolution progress (no op committed,
  discarded, or coalesced) while published work is outstanding; 0
  whenever the pipeline is idle or advancing.  A loaded-but-frozen
  pipeline is the signature of an MDS outage, a partition, or a stuck
  barrier, and is what the incident detector keys on,
* ``client.error_rate[<region>]`` — failed client ops since the
  previous sample (hub-wide total, weight-summed): the availability
  lens that surfaces crashed nodes and partitions clients actually hit,
* ``resource.util[<name>]`` — *windowed* time-weighted utilization of
  each resource handed to the sampler (node CPUs/NICs, worker pools):
  busy slot-seconds accumulated since the previous sample divided by
  window × capacity, so bursts show up instead of being averaged away.

Sampling is batched: every gauge key string and its series-append
recorder are resolved once (at construction, or on first sight of a
queue), so a wakeup is a single pass over the region's queues and
resources with no per-sample f-string formatting or registry lookups.

The sampler only *reads* state and never yields anything but its own
timeout, so it cannot perturb the simulated timing of the system under
test.  It exits on its own once the region's commit queues close (end of
run) or when interrupted via :meth:`stop`, so a drained event heap stays
drainable.  A region with *zero* commit queues (cache-only) never
self-exits — it samples until :meth:`stop` — since "all queues closed"
is vacuously true from the first wakeup and would otherwise end sampling
after one point.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.core import Event, Interrupt

__all__ = ["GaugeSampler"]


class GaugeSampler:
    """DES process recording one region's gauges each simulated interval."""

    def __init__(self, hub, region, interval: float,
                 resources: Optional[List[Tuple[str, Any]]] = None):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.hub = hub
        self.region = region
        self.interval = interval
        self.env = region.env
        self.samples = 0
        #: ``(name, Resource)`` pairs whose windowed utilization this
        #: sampler records (the hub hands each sampler only the resources
        #: it registered first, so shared ones are sampled exactly once).
        self.resources = list(resources or [])
        self._process = None
        # Preresolved recorders: one bound ``series.append`` per gauge.
        recorder = hub.series_recorder
        self._record_backlog = recorder(f"queue.backlog[{region.name}]")
        self._record_used = recorder(f"cache.used_bytes[{region.name}]")
        self._record_hit_rate = recorder(f"cache.hit_rate[{region.name}]")
        self._record_pending_age = recorder(
            f"consistency.pending_age[{region.name}]")
        self._record_stall_age = recorder(
            f"commit.stall_age[{region.name}]")
        self._record_error_rate = recorder(
            f"client.error_rate[{region.name}]")
        # Commit-progress and error-rate deltas need a previous tick.
        self._prev_resolved = self._resolved_total()
        self._last_progress_t = region.env.now
        self._prev_errors = hub.error_count
        self._queue_recorders: Dict[str, Callable[[float, float], None]] = {
            q.name: recorder(f"queue.depth[{q.name}]")
            for q in region.queues.queues()}
        #: Mutable per-resource state: [resource, recorder, capacity,
        #: last_busy, last_t] — one flat pass per wakeup, no dict lookups.
        self._resource_state: List[list] = [
            [res, recorder(f"resource.util[{name}]"), res.capacity,
             0.0, res.created_at]
            for name, res in self.resources]

    def _resolved_total(self) -> int:
        """Ops the region's commit pipeline has retired so far (committed,
        discarded, or coalesced) — the progress signal behind stall age."""
        total = 0
        # Queue-less (cache-only) regions have no commit pipeline at all.
        for cp in getattr(self.region, "commit_processes", ()):
            total += cp.committed + cp.discarded + cp.coalesced
        return total

    def track(self, name: str, resource: Any) -> None:
        """Start sampling one more resource mid-run (elastic growth).

        The utilization window is seeded from the resource's *current*
        busy time, so a node that did work before joining this region
        (or a re-tracked one) does not show a spurious first-sample
        spike."""
        self.resources.append((name, resource))
        self._resource_state.append(
            [resource, self.hub.series_recorder(f"resource.util[{name}]"),
             resource.capacity, resource.busy_time(), self.env.now])

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Spawn the sampling loop; returns the Process."""
        if self._process is not None and self._process.is_alive:
            return self._process
        self._process = self.env.process(
            self.run(), label=f"sampler:{self.region.name}")
        return self._process

    def stop(self) -> None:
        """Interrupt the sampling loop (it takes one more sim step)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sampler stopped")

    # -- the loop ----------------------------------------------------------
    def run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                all_closed = self.sample_once()
                if all_closed:
                    return  # end of run: let the event heap drain
                yield self.env.timeout(self.interval)
        except Interrupt:
            return

    def sample_once(self) -> bool:
        """Record one point per gauge at the current simulated time.

        Returns True when the region has commit queues and every one has
        closed (the sampler's natural exit).  Vacuous truth is excluded
        deliberately: a queue-less region reports False forever and is
        sampled until :meth:`stop`.
        """
        t = self.env.now
        region = self.region
        queues = region.queues.queues()
        queue_recorders = self._queue_recorders
        backlog = 0
        all_closed = True
        saw_queue = False
        for queue in queues:
            saw_queue = True
            depth = len(queue)
            backlog += depth
            rec = queue_recorders.get(queue.name)
            if rec is None:  # queue appeared after construction
                rec = self.hub.series_recorder(f"queue.depth[{queue.name}]")
                queue_recorders[queue.name] = rec
            rec(t, depth)
            if not queue.closed:
                all_closed = False
        self._record_backlog(t, backlog)
        self._record_used(t, region.cache.used_bytes())
        self._record_hit_rate(t, region.cache.hit_rate())
        oldest = region.oldest_outstanding_op_timestamp()
        self._record_pending_age(t, 0.0 if oldest is None else t - oldest)
        # Stall age: outstanding work + zero resolution progress since the
        # last tick that saw either progress or an empty pipeline.
        resolved = self._resolved_total()
        if resolved != self._prev_resolved or oldest is None:
            self._prev_resolved = resolved
            self._last_progress_t = t
            self._record_stall_age(t, 0.0)
        else:
            self._record_stall_age(t, t - self._last_progress_t)
        errors = self.hub.error_count
        self._record_error_rate(t, float(errors - self._prev_errors))
        self._prev_errors = errors
        for state in self._resource_state:
            resource, rec, capacity, prev_busy, prev_t = state
            busy = resource.busy_time()
            window = t - prev_t
            util = ((busy - prev_busy) / (window * capacity)
                    if window > 0 else 0.0)
            rec(t, util)
            state[3] = busy
            state[4] = t
        self.samples += 1
        return saw_queue and all_closed
