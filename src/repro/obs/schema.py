"""Schema guards for the JSON documents this repo publishes.

Two contracts live here:

* ``pacon.metrics/v4`` (:func:`validate`) — the MetricsHub export.  CI
  runs an instrumented fig. 7 smoke pass and feeds the ``--metrics-out``
  JSON through it — renaming a metric, dropping a top-level section, or
  bumping the schema string without updating this contract fails the
  build instead of silently breaking downstream dashboards.  Each bump
  is additive: v3 added ``consistency`` + ``slo`` over v2, v4 adds
  ``timeline`` + ``incidents`` (the incident flight recorder); archived
  v3/v2 documents still validate, minus the newer requirements.
* ``pacon.bench/v1`` (:func:`validate_bench`) — the benchmark snapshot
  (``BENCH_<label>.json``) written by ``repro.bench.runner``.  The CI
  perf gate and ``pacon-bench compare``/``history`` refuse documents
  that drift from it.

The required-name lists are the metrics an instrumented Pacon run is
*guaranteed* to produce (counters and histograms are created lazily, so
conditionally emitted series — discards, publish stalls — are not
required, only structurally checked when present).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

from repro.obs.hub import SCHEMA, SCHEMA_V2, SCHEMA_V3

__all__ = ["SCHEMA", "SCHEMA_V2", "SCHEMA_V3", "BENCH_SCHEMA", "validate",
           "validate_bench", "validate_chaos", "validate_any", "main",
           "REQUIRED_TOP_LEVEL", "REQUIRED_COUNTERS",
           "REQUIRED_HISTOGRAMS", "REQUIRED_REGION_COMMIT_FIELDS",
           "REQUIRED_ATTRIBUTION_FIELDS",
           "REQUIRED_CONSISTENCY_FIELDS", "REQUIRED_SLO_FIELDS",
           "REQUIRED_TIMELINE_FIELDS", "REQUIRED_INCIDENTS_FIELDS",
           "REQUIRED_INCIDENT_FIELDS", "REQUIRED_SUSPECT_FIELDS",
           "REQUIRED_CHAOS_COUNTERS", "REQUIRED_CHAOS_HISTOGRAMS",
           "REQUIRED_BENCH_TOP_LEVEL", "REQUIRED_BENCH_EXPERIMENT_FIELDS"]

#: Version string of the benchmark snapshot document.
BENCH_SCHEMA = "pacon.bench/v1"

#: Top-level sections of a ``pacon.bench/v1`` snapshot.
REQUIRED_BENCH_TOP_LEVEL = ("schema", "label", "scale", "seed",
                            "experiments", "host")

#: Fields every per-experiment record must carry.  ``rows``/``derived``
#: are the simulated (deterministic) payload; ``host`` holds harness
#: wall-clock facts and is excluded from byte-identity guarantees.
REQUIRED_BENCH_EXPERIMENT_FIELDS = ("title", "scale", "seed", "params",
                                    "rows", "derived", "notes", "host")

#: v2 = v1 plus the additive ``attribution`` and ``resources`` sections
#: (latency decomposition and the resource profiler).
REQUIRED_TOP_LEVEL = ("schema", "enabled", "counters", "histograms",
                      "meters", "series", "regions", "clients",
                      "attribution", "resources", "trace")

#: v3-only top-level sections (the consistency observatory).
REQUIRED_TOP_LEVEL_V3 = REQUIRED_TOP_LEVEL + ("consistency", "slo")

#: v4-only top-level sections (the incident flight recorder).
REQUIRED_TOP_LEVEL_V4 = REQUIRED_TOP_LEVEL_V3 + ("timeline", "incidents")

#: Fields of the v4 ``timeline`` section (the control-plane event log).
REQUIRED_TIMELINE_FIELDS = ("count", "dropped", "events")

#: Fields every timeline event must carry.
REQUIRED_TIMELINE_EVENT_FIELDS = ("seq", "t", "source", "kind", "label",
                                  "detail", "duration", "ref")

#: Fields of the v4 ``incidents`` section.
REQUIRED_INCIDENTS_FIELDS = ("policy", "count", "incidents")

#: Fields every detected incident must carry.
REQUIRED_INCIDENT_FIELDS = ("id", "rule", "series", "start", "end",
                            "duration", "peak", "bound", "verdict",
                            "suspects", "saturated")

#: Fields every blamed suspect must carry.
REQUIRED_SUSPECT_FIELDS = ("rank", "seq", "kind", "label", "t", "score",
                           "evidence")

#: Fields of the v3 ``consistency`` section.
REQUIRED_CONSISTENCY_FIELDS = ("reads", "orphan_reads", "staleness",
                               "staleness_p99", "visibility",
                               "pending_mutations", "shard_reads",
                               "sketches")

#: Fields of the v3 ``slo`` section (one evaluated PolicyResult).
REQUIRED_SLO_FIELDS = ("policy", "verdict", "objectives")

#: Fields of the ``attribution`` section (`attribution.ops.*` entries
#: additionally carry count/mean_latency/buckets/residual, checked below).
REQUIRED_ATTRIBUTION_FIELDS = ("ops", "total_ops", "buckets")

#: Counters every instrumented Pacon workload run must have produced.
REQUIRED_COUNTERS = ("client.ops", "commit.published", "commit.committed")

#: Histograms likewise (commit.batch_size appears whenever the batched
#: drain path runs, i.e. any config with commit_batch_size > 1 — the
#: default).
REQUIRED_HISTOGRAMS = ("commit.latency", "commit.batch_size")

#: Per-region commit snapshot fields (``regions.*.commit``).
REQUIRED_REGION_COMMIT_FIELDS = ("committed", "discarded", "resubmissions",
                                 "coalesced", "barriers_passed", "replays",
                                 "aborts")

#: Counters a hub-instrumented chaos run (``pacon-bench chaos``) must
#: have produced: every fault emits inject/recover, and the
#: delivery-time network semantics drop at least the crashed/partitioned
#: round trips.  ``net.dropped`` is required structurally but may be 0
#: for planned churn.
REQUIRED_CHAOS_COUNTERS = ("chaos.injected", "chaos.recovered")

#: Histograms a chaos run must have produced (one downtime observation
#: per recovered fault).
REQUIRED_CHAOS_HISTOGRAMS = ("chaos.downtime",)


def validate(doc: Dict[str, Any]) -> List[str]:
    """Return a list of schema-drift problems (empty means conformant).

    Dispatches on the document's own schema string: ``pacon.metrics/v4``
    documents must carry the ``timeline`` and ``incidents`` sections on
    top of the v3 ``consistency``/``slo`` requirements; archived
    ``pacon.metrics/v3`` and ``v2`` documents validate against their own
    contracts unchanged (each bump is additive).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    schema = doc.get("schema")
    if schema not in (SCHEMA, SCHEMA_V3, SCHEMA_V2):
        problems.append(f"schema is {schema!r}, expected {SCHEMA!r}"
                        f" (or legacy {SCHEMA_V3!r} / {SCHEMA_V2!r})")
    if schema == SCHEMA:
        required = REQUIRED_TOP_LEVEL_V4
    elif schema == SCHEMA_V3:
        required = REQUIRED_TOP_LEVEL_V3
    else:
        required = REQUIRED_TOP_LEVEL
    for key in required:
        if key not in doc:
            problems.append(f"missing top-level section {key!r}")
    if schema in (SCHEMA, SCHEMA_V3):
        problems.extend(_validate_v3_sections(doc))
    if schema == SCHEMA:
        problems.extend(_validate_v4_sections(doc))
    counters = doc.get("counters", {})
    if isinstance(counters, dict):
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                problems.append(f"missing counter {name!r}")
    else:
        problems.append("'counters' is not an object")
    histograms = doc.get("histograms", {})
    if isinstance(histograms, dict):
        for name in REQUIRED_HISTOGRAMS:
            if name not in histograms:
                problems.append(f"missing histogram {name!r}")
    else:
        problems.append("'histograms' is not an object")
    attribution = doc.get("attribution")
    if isinstance(attribution, dict):
        for field in REQUIRED_ATTRIBUTION_FIELDS:
            if field not in attribution:
                problems.append(f"attribution missing field {field!r}")
        for op_class, entry in (attribution.get("ops") or {}).items():
            if not isinstance(entry, dict):
                problems.append(f"attribution.ops[{op_class!r}] is not"
                                " an object")
                continue
            for field in ("count", "mean_latency", "buckets", "residual"):
                if field not in entry:
                    problems.append(f"attribution.ops[{op_class!r}]"
                                    f" missing {field!r}")
    elif "attribution" in doc:
        problems.append("'attribution' is not an object")
    resources = doc.get("resources")
    if resources is not None and not isinstance(resources, dict):
        problems.append("'resources' is not an object")
    regions = doc.get("regions", {})
    if isinstance(regions, dict):
        if not regions:
            problems.append("no regions in export (hub never attached?)")
        for rname, snapshot in regions.items():
            commit = snapshot.get("commit") if isinstance(snapshot, dict) \
                else None
            if not isinstance(commit, dict):
                problems.append(f"region {rname!r} has no commit snapshot")
                continue
            for field in REQUIRED_REGION_COMMIT_FIELDS:
                if field not in commit:
                    problems.append(
                        f"region {rname!r} commit snapshot missing"
                        f" {field!r}")
    else:
        problems.append("'regions' is not an object")
    return problems


def _validate_v3_sections(doc: Dict[str, Any]) -> List[str]:
    """Structural checks of the v3-only ``consistency``/``slo`` sections."""
    problems: List[str] = []
    consistency = doc.get("consistency")
    if isinstance(consistency, dict):
        for field in REQUIRED_CONSISTENCY_FIELDS:
            if field not in consistency:
                problems.append(f"consistency missing field {field!r}")
        staleness = consistency.get("staleness")
        if isinstance(staleness, dict):
            for dist in ("age", "lag"):
                if dist not in staleness:
                    problems.append(f"consistency.staleness missing"
                                    f" {dist!r}")
        elif staleness is not None:
            problems.append("'consistency.staleness' is not an object")
        for name, sketch in (consistency.get("sketches") or {}).items():
            if not isinstance(sketch, dict) or "buckets" not in sketch:
                problems.append(f"consistency.sketches[{name!r}] has no"
                                " bucket export")
    elif "consistency" in doc:
        problems.append("'consistency' is not an object")
    slo = doc.get("slo")
    if isinstance(slo, dict):
        for field in REQUIRED_SLO_FIELDS:
            if field not in slo:
                problems.append(f"slo missing field {field!r}")
        if slo.get("verdict") not in ("pass", "fail", None):
            problems.append(f"slo verdict is {slo.get('verdict')!r},"
                            " expected 'pass' or 'fail'")
        objectives = slo.get("objectives")
        if isinstance(objectives, list):
            for entry in objectives:
                if not isinstance(entry, dict):
                    problems.append("slo objective entry is not an object")
                    continue
                for field in ("name", "kind", "metric", "measured",
                              "target", "ok"):
                    if field not in entry:
                        problems.append(
                            f"slo objective {entry.get('name')!r}"
                            f" missing {field!r}")
        elif objectives is not None:
            problems.append("'slo.objectives' is not a list")
    elif "slo" in doc:
        problems.append("'slo' is not an object")
    return problems


def _validate_v4_sections(doc: Dict[str, Any]) -> List[str]:
    """Structural checks of the v4-only ``timeline``/``incidents``
    sections (the incident flight recorder)."""
    problems: List[str] = []
    timeline = doc.get("timeline")
    if isinstance(timeline, dict):
        for field in REQUIRED_TIMELINE_FIELDS:
            if field not in timeline:
                problems.append(f"timeline missing field {field!r}")
        events = timeline.get("events")
        if isinstance(events, list):
            for ev in events:
                if not isinstance(ev, dict):
                    problems.append("timeline event is not an object")
                    continue
                for field in REQUIRED_TIMELINE_EVENT_FIELDS:
                    if field not in ev:
                        problems.append(
                            f"timeline event seq={ev.get('seq')!r}"
                            f" missing {field!r}")
        elif events is not None:
            problems.append("'timeline.events' is not a list")
    elif "timeline" in doc:
        problems.append("'timeline' is not an object")
    incidents = doc.get("incidents")
    if isinstance(incidents, dict):
        for field in REQUIRED_INCIDENTS_FIELDS:
            if field not in incidents:
                problems.append(f"incidents missing field {field!r}")
        entries = incidents.get("incidents")
        if isinstance(entries, list):
            for inc in entries:
                if not isinstance(inc, dict):
                    problems.append("incident entry is not an object")
                    continue
                for field in REQUIRED_INCIDENT_FIELDS:
                    if field not in inc:
                        problems.append(
                            f"incident {inc.get('id')!r} missing"
                            f" {field!r}")
                for suspect in (inc.get("suspects") or []):
                    if not isinstance(suspect, dict):
                        problems.append(
                            f"incident {inc.get('id')!r} suspect is"
                            " not an object")
                        continue
                    for field in REQUIRED_SUSPECT_FIELDS:
                        if field not in suspect:
                            problems.append(
                                f"incident {inc.get('id')!r} suspect"
                                f" missing {field!r}")
        elif entries is not None:
            problems.append("'incidents.incidents' is not a list")
    elif "incidents" in doc:
        problems.append("'incidents' is not an object")
    return problems


def validate_chaos(doc: Dict[str, Any]) -> List[str]:
    """Extended contract for fault-injection runs (``pacon-bench chaos``).

    Everything :func:`validate` requires, plus the ``chaos.*`` fault
    lifecycle metrics: each injected fault must have recovered (the
    engine drove the matching heal/restart), and every recovery recorded
    a downtime observation.
    """
    problems = validate(doc)
    counters = doc.get("counters", {})
    if isinstance(counters, dict):
        for name in REQUIRED_CHAOS_COUNTERS:
            if name not in counters:
                problems.append(f"missing chaos counter {name!r}")
        injected = counters.get("chaos.injected")
        recovered = counters.get("chaos.recovered")
        if _is_number(injected) and not injected > 0:
            problems.append("chaos.injected is 0 (no fault ever fired)")
        if _is_number(injected) and _is_number(recovered) \
                and injected != recovered:
            problems.append(f"chaos.injected ({injected}) !="
                            f" chaos.recovered ({recovered}):"
                            " some fault never recovered")
    histograms = doc.get("histograms", {})
    if isinstance(histograms, dict):
        for name in REQUIRED_CHAOS_HISTOGRAMS:
            if name not in histograms:
                problems.append(f"missing chaos histogram {name!r}")
    return problems


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench(doc: Dict[str, Any]) -> List[str]:
    """Return schema problems of a ``pacon.bench/v1`` snapshot document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {BENCH_SCHEMA!r}")
    for key in REQUIRED_BENCH_TOP_LEVEL:
        if key not in doc:
            problems.append(f"missing top-level field {key!r}")
    if "seed" in doc and not isinstance(doc.get("seed"), int):
        problems.append("'seed' is not an integer")
    host = doc.get("host")
    if host is not None and not isinstance(host, dict):
        problems.append("'host' is not an object")
    experiments = doc.get("experiments")
    if not isinstance(experiments, dict):
        if "experiments" in doc:
            problems.append("'experiments' is not an object")
        return problems
    if not experiments:
        problems.append("no experiments in snapshot (runner never ran?)")
    for name, record in experiments.items():
        if not isinstance(record, dict):
            problems.append(f"experiment {name!r} is not an object")
            continue
        for field in REQUIRED_BENCH_EXPERIMENT_FIELDS:
            if field not in record:
                problems.append(f"experiment {name!r} missing {field!r}")
        rows = record.get("rows")
        if rows is not None:
            if not isinstance(rows, list) or any(
                    not isinstance(row, dict) for row in rows):
                problems.append(f"experiment {name!r} rows are not a list"
                                " of objects")
            elif not rows:
                problems.append(f"experiment {name!r} has no rows")
        derived = record.get("derived")
        if derived is not None:
            if not isinstance(derived, dict):
                problems.append(f"experiment {name!r} 'derived' is not"
                                " an object")
            else:
                for key, value in derived.items():
                    if not _is_number(value):
                        problems.append(
                            f"experiment {name!r} derived metric {key!r}"
                            f" is not numeric ({value!r})")
        exp_host = record.get("host")
        if exp_host is not None and not isinstance(exp_host, dict):
            problems.append(f"experiment {name!r} 'host' is not an object")
        if "seed" in record and record.get("seed") is not None \
                and not isinstance(record.get("seed"), int):
            problems.append(f"experiment {name!r} 'seed' is not an integer")
    return problems


def validate_any(doc: Any) -> List[str]:
    """Dispatch on the document's schema family (metrics vs bench)."""
    if isinstance(doc, dict) and \
            str(doc.get("schema", "")).startswith("pacon.bench/"):
        return validate_bench(doc)
    return validate(doc)


def main(argv: List[str] = None) -> int:
    """``python -m repro.obs.schema [--chaos] FILE [...]`` — exit 1 on drift.

    Accepts both ``pacon.metrics/v2`` exports and ``pacon.bench/v1``
    snapshots, picking the contract from each file's ``schema`` field.
    ``--chaos`` additionally holds metrics exports to the fault-injection
    contract (:func:`validate_chaos`).
    """
    argv = sys.argv[1:] if argv is None else argv
    chaos = "--chaos" in argv
    argv = [a for a in argv if a != "--chaos"]
    if not argv:
        print("usage: python -m repro.obs.schema [--chaos]"
              " METRICS_OR_BENCH_JSON [...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        with open(path) as fh:
            doc = json.load(fh)
        if chaos and not (isinstance(doc, dict) and str(
                doc.get("schema", "")).startswith("pacon.bench/")):
            problems = validate_chaos(doc)
        else:
            problems = validate_any(doc)
        if problems:
            status = 1
            print(f"{path}: {len(problems)} schema problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            schema = doc.get("schema") if isinstance(doc, dict) else SCHEMA
            print(f"{path}: conforms to {schema}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
