"""Schema guard for the ``pacon.metrics/v2`` export document.

CI runs an instrumented fig. 7 smoke pass and feeds the ``--metrics-out``
JSON through :func:`validate` — renaming a metric, dropping a top-level
section, or bumping the schema string without updating this contract
fails the build instead of silently breaking downstream dashboards.

The required-name lists are the metrics an instrumented Pacon run is
*guaranteed* to produce (counters and histograms are created lazily, so
conditionally emitted series — discards, publish stalls — are not
required, only structurally checked when present).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

from repro.obs.hub import SCHEMA

__all__ = ["SCHEMA", "validate", "main",
           "REQUIRED_TOP_LEVEL", "REQUIRED_COUNTERS",
           "REQUIRED_HISTOGRAMS", "REQUIRED_REGION_COMMIT_FIELDS",
           "REQUIRED_ATTRIBUTION_FIELDS"]

#: v2 = v1 plus the additive ``attribution`` and ``resources`` sections
#: (latency decomposition and the resource profiler).
REQUIRED_TOP_LEVEL = ("schema", "enabled", "counters", "histograms",
                      "meters", "series", "regions", "clients",
                      "attribution", "resources", "trace")

#: Fields of the ``attribution`` section (`attribution.ops.*` entries
#: additionally carry count/mean_latency/buckets/residual, checked below).
REQUIRED_ATTRIBUTION_FIELDS = ("ops", "total_ops", "buckets")

#: Counters every instrumented Pacon workload run must have produced.
REQUIRED_COUNTERS = ("client.ops", "commit.published", "commit.committed")

#: Histograms likewise (commit.batch_size appears whenever the batched
#: drain path runs, i.e. any config with commit_batch_size > 1 — the
#: default).
REQUIRED_HISTOGRAMS = ("commit.latency", "commit.batch_size")

#: Per-region commit snapshot fields (``regions.*.commit``).
REQUIRED_REGION_COMMIT_FIELDS = ("committed", "discarded", "resubmissions",
                                 "coalesced", "barriers_passed")


def validate(doc: Dict[str, Any]) -> List[str]:
    """Return a list of schema-drift problems (empty means conformant)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    schema = doc.get("schema")
    if schema != SCHEMA:
        problems.append(f"schema is {schema!r}, expected {SCHEMA!r}")
    for key in REQUIRED_TOP_LEVEL:
        if key not in doc:
            problems.append(f"missing top-level section {key!r}")
    counters = doc.get("counters", {})
    if isinstance(counters, dict):
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                problems.append(f"missing counter {name!r}")
    else:
        problems.append("'counters' is not an object")
    histograms = doc.get("histograms", {})
    if isinstance(histograms, dict):
        for name in REQUIRED_HISTOGRAMS:
            if name not in histograms:
                problems.append(f"missing histogram {name!r}")
    else:
        problems.append("'histograms' is not an object")
    attribution = doc.get("attribution")
    if isinstance(attribution, dict):
        for field in REQUIRED_ATTRIBUTION_FIELDS:
            if field not in attribution:
                problems.append(f"attribution missing field {field!r}")
        for op_class, entry in (attribution.get("ops") or {}).items():
            if not isinstance(entry, dict):
                problems.append(f"attribution.ops[{op_class!r}] is not"
                                " an object")
                continue
            for field in ("count", "mean_latency", "buckets", "residual"):
                if field not in entry:
                    problems.append(f"attribution.ops[{op_class!r}]"
                                    f" missing {field!r}")
    elif "attribution" in doc:
        problems.append("'attribution' is not an object")
    resources = doc.get("resources")
    if resources is not None and not isinstance(resources, dict):
        problems.append("'resources' is not an object")
    regions = doc.get("regions", {})
    if isinstance(regions, dict):
        if not regions:
            problems.append("no regions in export (hub never attached?)")
        for rname, snapshot in regions.items():
            commit = snapshot.get("commit") if isinstance(snapshot, dict) \
                else None
            if not isinstance(commit, dict):
                problems.append(f"region {rname!r} has no commit snapshot")
                continue
            for field in REQUIRED_REGION_COMMIT_FIELDS:
                if field not in commit:
                    problems.append(
                        f"region {rname!r} commit snapshot missing"
                        f" {field!r}")
    else:
        problems.append("'regions' is not an object")
    return problems


def main(argv: List[str] = None) -> int:
    """``python -m repro.obs.schema FILE [FILE...]`` — exit 1 on drift."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.schema METRICS_JSON [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        with open(path) as fh:
            doc = json.load(fh)
        problems = validate(doc)
        if problems:
            status = 1
            print(f"{path}: {len(problems)} schema problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: conforms to {SCHEMA}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
