"""Observability: spans, metrics aggregation, sampling, and exports.

The subsystem has five pieces:

* per-operation **span trees** — :class:`repro.core.client.PaconClient`
  opens a root span per op and every downstream stage (cache shard,
  network transfer, commit queue, MDS RPC) attaches a child span carrying
  the parent's :class:`repro.sim.trace.SpanContext`, so each op
  reassembles into a causal tree with a critical-path latency
  attribution (see ``Tracer.span_tree`` / ``Tracer.attribution``),
* a :class:`MetricsHub` — the region-wide aggregation point for client,
  commit, cache, queue, and contention-resource statistics, exporting one
  stable-ordered ``pacon.metrics/v2`` JSON document,
* a :class:`GaugeSampler` — a DES process that records queue-depth,
  cache, and windowed resource-utilization gauges at a configurable
  simulated-time interval,
* :mod:`repro.obs.chrome` — Chrome trace-event JSON export of the span
  trees and counter series, loadable in Perfetto / ``chrome://tracing``,
* :mod:`repro.obs.profile` — the ``pacon-bench profile`` report: latency
  attribution per op class, top-N slowest ops, and the per-resource
  utilization/queueing table.

Everything is off by default: regions carry :data:`NULL_HUB` (and
``NULL_TRACER``), whose ``enabled`` flag short-circuits every hot-path
call site, so a run without observability spends zero simulated time and
negligible wall time on it.
"""

from repro.obs.hub import MetricsHub, NULL_HUB, attribution_rollup
from repro.obs.sampler import GaugeSampler

__all__ = ["MetricsHub", "NULL_HUB", "GaugeSampler", "attribution_rollup"]
