"""Observability: spans, metrics aggregation, sampling, and exports.

The subsystem has five pieces:

* per-operation **span trees** — :class:`repro.core.client.PaconClient`
  opens a root span per op and every downstream stage (cache shard,
  network transfer, commit queue, MDS RPC) attaches a child span carrying
  the parent's :class:`repro.sim.trace.SpanContext`, so each op
  reassembles into a causal tree with a critical-path latency
  attribution (see ``Tracer.span_tree`` / ``Tracer.attribution``),
* a :class:`MetricsHub` — the region-wide aggregation point for client,
  commit, cache, queue, and contention-resource statistics, exporting one
  stable-ordered ``pacon.metrics/v4`` JSON document,
* a :class:`GaugeSampler` — a DES process that records queue-depth,
  cache, and windowed resource-utilization gauges at a configurable
  simulated-time interval,
* :mod:`repro.obs.chrome` — Chrome trace-event JSON export of the span
  trees and counter series, loadable in Perfetto / ``chrome://tracing``,
* :mod:`repro.obs.profile` — the ``pacon-bench profile`` report: latency
  attribution per op class, top-N slowest ops, and the per-resource
  utilization/queueing table,
* the **incident flight recorder** — :mod:`repro.obs.timeline` (the
  sim-time-ordered control-plane event log every chaos/autoscale/
  membership/backpressure hook records into) and
  :mod:`repro.obs.incidents` (SLO-burn incident detection with causal
  blame attribution over that log), surfaced as the ``timeline`` and
  ``incidents`` sections of the v4 export and the ``pacon-bench
  incidents`` verb.

Everything is off by default: regions carry :data:`NULL_HUB` (and
``NULL_TRACER``), whose ``enabled`` flag short-circuits every hot-path
call site, so a run without observability spends zero simulated time and
negligible wall time on it.
"""

from repro.obs.hub import MetricsHub, NULL_HUB, attribution_rollup
from repro.obs.sampler import GaugeSampler
from repro.obs.timeline import NULL_TIMELINE, ControlEvent, Timeline

__all__ = ["MetricsHub", "NULL_HUB", "GaugeSampler", "attribution_rollup",
           "Timeline", "ControlEvent", "NULL_TIMELINE"]
