"""Observability: spans, metrics aggregation, and gauge sampling.

The subsystem has three pieces:

* per-operation **spans** — emitted by :class:`repro.core.client.PaconClient`
  into the region's :class:`repro.sim.trace.Tracer` (``op.start``/``op.end``
  pairs that close even when the operation raises),
* a :class:`MetricsHub` — the region-wide aggregation point for client,
  commit, cache, and queue statistics, exporting one stable-ordered JSON
  document,
* a :class:`GaugeSampler` — a DES process that records queue-depth and
  cache gauges at a configurable simulated-time interval.

Everything is off by default: regions carry :data:`NULL_HUB` (and
``NULL_TRACER``), whose ``enabled`` flag short-circuits every hot-path
call site, so a run without observability spends zero simulated time and
negligible wall time on it.
"""

from repro.obs.hub import MetricsHub, NULL_HUB
from repro.obs.sampler import GaugeSampler

__all__ = ["MetricsHub", "NULL_HUB", "GaugeSampler"]
