"""The control-plane timeline: one sim-time-ordered event log per run.

Pacon's partial-consistency design makes *explaining* a degradation
window as important as detecting it: a staleness or backlog breach is
almost always downstream of some control-plane action — a chaos fault,
an autoscale grow/retire (or its failure), a membership change, a
backpressure stall.  Those layers each kept private records
(``FaultRecord``, ``AutoscaleAction``, ``membership_log``) and disjoint
``chaos.*``/``autoscale.*`` counters; nothing lined them up on one time
axis.

A :class:`Timeline` is that axis: an append-only, capacity-bounded log
of :class:`ControlEvent` records fed by instrumentation hooks in the
chaos engine, the autoscaler, region membership, and the client publish
path.  Every hook is guarded by ``hub.enabled``, and the hub only
allocates a Timeline when it is enabled — the shared
:data:`NULL_TIMELINE` discards everything — so the zero-cost-when-off
guarantee of the rest of ``repro.obs`` holds here too (the tests prove
it by monkeypatching allocation to raise).

Events are recorded *when their outcome is known* but stamped with
their *start* time (a scale-up is recorded after the migration lands,
timestamped at the decision; a backpressure stall is recorded when it
drains, timestamped at its onset), so :meth:`Timeline.export` sorts by
``(time, seq)`` to restore simulation order.  Everything downstream —
the v4 ``timeline`` export section, the incident blame attributor
(:mod:`repro.obs.incidents`), the Perfetto control-plane tracks — reads
that sorted order, and same-seed runs produce byte-identical sections.

Event vocabulary (``source`` / ``kind``):

========== ==================== =========================================
source     kind                 meaning
========== ==================== =========================================
chaos      fault.injected       a scheduled fault fired (``ref`` pairs
                                the matching recovery)
chaos      fault.recovered      the fault's recovery completed
autoscale  scale.grow           controller grew the region (ok)
autoscale  scale.retire         controller retired a node (ok)
autoscale  scale.failed         a grow/retire raised; error in detail
autoscale  scale.rejected       decision suppressed (bounds, candidates)
membership node.joined          region membership grew (any path)
membership node.departed        region membership shrank (any path)
commit     backpressure.stall   a bounded commit queue stalled a client
========== ==================== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["ControlEvent", "Timeline", "NULL_TIMELINE"]


@dataclass(frozen=True)
class ControlEvent:
    """One control-plane event.

    ``duration`` is the event's own extent where it has one (a stall's
    length, a scaling action's latency); interval faults instead pair a
    point ``fault.injected`` with a ``fault.recovered`` whose ``ref``
    names the injection's ``seq``.
    """

    seq: int
    time: float
    source: str        # chaos | autoscale | membership | commit
    kind: str          # see module docstring vocabulary
    label: str         # target label, e.g. "mds_crash[0]" or a node name
    detail: str = ""
    duration: float = 0.0
    ref: int = -1      # seq of the paired opening event; -1 = none

    def to_doc(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.time,
            "source": self.source,
            "kind": self.kind,
            "label": self.label,
            "detail": self.detail,
            "duration": self.duration,
            "ref": self.ref,
        }


class Timeline:
    """Append-only control-plane event log with a capacity backstop."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self._events: List[ControlEvent] = []
        self.dropped = 0
        self._next_seq = 0

    # -- recording (call sites guard on hub.enabled) -----------------------
    def record(self, time: float, source: str, kind: str, label: str,
               detail: str = "", duration: float = 0.0,
               ref: int = -1) -> int:
        """Append one event; returns its ``seq`` (for pairing), -1 if
        dropped at capacity."""
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return -1
        self._next_seq += 1
        self._events.append(ControlEvent(
            seq=self._next_seq, time=time, source=source, kind=kind,
            label=label, detail=detail, duration=duration, ref=ref))
        return self._next_seq

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[ControlEvent]:
        """All events in simulation order (``(time, seq)``-sorted)."""
        return sorted(self._events, key=lambda ev: (ev.time, ev.seq))

    def export(self) -> Dict[str, Any]:
        """The v4 ``timeline`` section: stable-ordered event dicts."""
        return {
            "count": len(self._events),
            "dropped": self.dropped,
            "events": [ev.to_doc() for ev in self.events()],
        }

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class _NullTimeline(Timeline):
    """Shared disabled timeline; ``record`` discards everything."""

    def __init__(self):
        super().__init__(capacity=0)

    def record(self, *a, **kw) -> int:  # pragma: no cover - trivial
        return -1


NULL_TIMELINE = _NullTimeline()
