"""Declarative SLO engine over ``pacon.metrics`` documents.

A :class:`Policy` is a named list of objectives; each objective evaluates
one exported metrics document (the dict :meth:`MetricsHub.export`
returns, or the same JSON loaded back from disk) into a :class:`Verdict`.
Four objective kinds cover the paper's service-level story:

* :class:`LatencyObjective` — a percentile of an exported latency
  distribution (``histograms`` section) must not exceed a target.
* :class:`StalenessObjective` — the staleness lens must stay inside a
  bound: whole-run, the merged staleness-age distribution
  (``consistency`` section); windowed, the ``consistency.pending_age``
  gauge series (the only staleness signal with a time axis).
* :class:`ErrorRatioObjective` — failed client ops over total ops.
* :class:`BurnRateObjective` — multi-window burn rate over a gauge
  series: the fraction of samples above a threshold, divided by the
  error budget, computed over several trailing windows.  The objective
  fails only when *every* window has burned through its budget — the
  standard multi-window rule that ignores short blips (long window
  clean) and long-faded incidents (short window clean).
* :class:`SeriesThresholdObjective` — any gauge series bounded by
  max/final/mean aggregation inside a window; the incident detector
  uses it to stamp a per-incident verdict over the incident's own span.

Evaluation is windowable for chaos scenarios: ``window=(t0, t1)``
restricts series-based objectives to the fault or recovery phase, and
objectives that only exist as whole-run aggregates (histograms,
counters) abstain rather than report a misleading cumulative value.

Everything here is pure arithmetic over an already-exported document —
no simulation state, no wall clock — so same-seed runs produce
byte-identical SLO sections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Verdict",
    "PolicyResult",
    "LatencyObjective",
    "StalenessObjective",
    "ErrorRatioObjective",
    "BurnRateObjective",
    "SeriesThresholdObjective",
    "Policy",
    "default_policy",
    "chaos_policy",
    "get_policy",
    "POLICIES",
    "evaluate_file",
]


@dataclass
class Verdict:
    """One objective's outcome against one document (or window of it)."""

    name: str
    kind: str
    metric: str
    measured: float
    target: float
    ok: bool
    detail: str = ""

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "measured": self.measured,
            "target": self.target,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class PolicyResult:
    """All verdicts of one policy evaluation."""

    policy: str
    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def failed_verdicts(self) -> List[Verdict]:
        return [v for v in self.verdicts if not v.ok]

    def to_doc(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "verdict": "pass" if self.passed else "fail",
            "objectives": [v.to_doc() for v in
                           sorted(self.verdicts, key=lambda v: v.name)],
        }


def _series_points(doc: Dict[str, Any], prefix: str,
                   window: Optional[Tuple[float, float]] = None,
                   ) -> List[Tuple[float, float]]:
    """All ``(t, v)`` points of series named ``prefix`` or ``prefix[...]``,
    merged across regions, time-sorted, clipped to ``window``."""
    out: List[Tuple[float, float]] = []
    for name, series in (doc.get("series") or {}).items():
        if name == prefix or name.startswith(prefix + "["):
            for t, v in zip(series.get("t", []), series.get("v", [])):
                if window is None or window[0] <= t <= window[1]:
                    out.append((t, v))
    out.sort()
    return out


@dataclass(frozen=True)
class LatencyObjective:
    """``histograms[metric][percentile] <= target`` (whole-run only)."""

    name: str
    metric: str
    percentile: str  # summary key: p50 | p95 | p99 | mean | max
    target: float
    kind = "latency"
    windowable = False

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> Optional[Verdict]:
        if window is not None:
            return None  # cumulative distribution: cannot be windowed
        hist = (doc.get("histograms") or {}).get(self.metric)
        if not hist or not hist.get("count"):
            return Verdict(self.name, self.kind, self.metric, 0.0,
                           self.target, True, "no samples")
        measured = float(hist.get(self.percentile, 0.0))
        return Verdict(self.name, self.kind,
                       f"{self.metric}.{self.percentile}", measured,
                       self.target, measured <= self.target)


@dataclass(frozen=True)
class StalenessObjective:
    """Staleness stays inside ``bound``.

    Whole-run: the merged staleness-age percentile from the
    ``consistency`` section.  Windowed: the ``consistency.pending_age``
    gauge inside the window — ``mode="max"`` bounds the worst
    instantaneous exposure (how stale did reads *get*), ``mode="final"``
    bounds the last sample (did staleness *return* below the bound by
    the end of the window, the post-recovery question).
    """

    name: str
    bound: float
    percentile: str = "p99"
    mode: str = "max"  # windowed aggregation: max | final
    kind = "staleness"
    windowable = True

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> Optional[Verdict]:
        if window is None:
            age = ((doc.get("consistency") or {})
                   .get("staleness", {}).get("age", {}))
            measured = float(age.get(self.percentile, 0.0))
            metric = f"consistency.staleness.age.{self.percentile}"
            detail = "" if age.get("count") else "no samples"
        else:
            pts = _series_points(doc, "consistency.pending_age", window)
            if self.mode == "final":
                measured = pts[-1][1] if pts else 0.0
            else:
                measured = max((v for _, v in pts), default=0.0)
            metric = f"consistency.pending_age.{self.mode}"
            detail = "" if pts else "no samples in window"
        return Verdict(self.name, self.kind, metric, measured, self.bound,
                       measured <= self.bound, detail)


@dataclass(frozen=True)
class ErrorRatioObjective:
    """Failed client ops / total client ops ``<= max_ratio``."""

    name: str
    max_ratio: float
    total_metric: str = "client.ops"
    kind = "error_ratio"
    windowable = False

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> Optional[Verdict]:
        if window is not None:
            return None
        counters = doc.get("counters") or {}
        errors = sum(v for k, v in counters.items()
                     if k.startswith("client.op.") and k.endswith(".errors"))
        total = counters.get(self.total_metric, 0)
        ratio = (errors / total) if total else 0.0
        return Verdict(self.name, self.kind, "client.error_ratio", ratio,
                       self.max_ratio, ratio <= self.max_ratio,
                       f"{errors}/{total} ops failed")


@dataclass(frozen=True)
class BurnRateObjective:
    """Multi-window burn rate over a gauge series.

    For each trailing window (a fraction of the evaluated span ending at
    its last sample) the burn rate is ``bad_fraction / budget`` where
    ``bad_fraction`` is the share of samples above ``threshold``.  The
    objective fails only when every window's burn rate exceeds 1.0 —
    i.e. the violation is both current *and* sustained.  ``measured`` is
    the minimum burn across windows (the one that saves or condemns).
    """

    name: str
    series: str
    threshold: float
    budget: float
    windows: Tuple[float, ...] = (0.1, 1.0)
    kind = "burn_rate"
    windowable = True

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> Optional[Verdict]:
        pts = _series_points(doc, self.series, window)
        if not pts or self.budget <= 0:
            return Verdict(self.name, self.kind, self.series, 0.0, 1.0,
                           True, "no samples")
        t0, t1 = pts[0][0], pts[-1][0]
        span = t1 - t0
        burns: List[Tuple[float, float]] = []
        for frac in self.windows:
            w0 = t1 - span * frac
            wvals = [v for t, v in pts if t >= w0]
            bad = sum(1 for v in wvals if v > self.threshold) / len(wvals)
            burns.append((frac, bad / self.budget))
        measured = min(b for _, b in burns)
        detail = ", ".join(f"w={frac:g}: {burn:.3f}x"
                           for frac, burn in burns)
        return Verdict(self.name, self.kind, self.series, measured, 1.0,
                       measured <= 1.0, detail)


@dataclass(frozen=True)
class SeriesThresholdObjective:
    """Any gauge series stays inside ``bound`` (windowable).

    The generic cousin of :class:`StalenessObjective`'s windowed path:
    aggregates the merged ``series``/``series[...]`` points inside the
    window with ``mode`` — ``max`` (worst excursion), ``final`` (did it
    drain by the end), or ``mean`` — and compares against ``bound``.
    The incident detector attaches one of these per incident, so every
    detected incident carries a real SLO verdict over its own window
    rather than a bespoke number.
    """

    name: str
    series: str
    bound: float
    mode: str = "max"  # max | final | mean
    kind = "series_threshold"
    windowable = True

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> Optional[Verdict]:
        pts = _series_points(doc, self.series, window)
        if not pts:
            return Verdict(self.name, self.kind,
                           f"{self.series}.{self.mode}", 0.0, self.bound,
                           True, "no samples")
        if self.mode == "final":
            measured = pts[-1][1]
        elif self.mode == "mean":
            measured = sum(v for _, v in pts) / len(pts)
        else:
            measured = max(v for _, v in pts)
        return Verdict(self.name, self.kind,
                       f"{self.series}.{self.mode}", measured, self.bound,
                       measured <= self.bound)


@dataclass
class Policy:
    """A named set of objectives evaluated together."""

    name: str
    objectives: List[Any] = field(default_factory=list)

    def evaluate(self, doc: Dict[str, Any],
                 window: Optional[Tuple[float, float]] = None,
                 ) -> PolicyResult:
        result = PolicyResult(self.name)
        for objective in self.objectives:
            verdict = objective.evaluate(doc, window)
            if verdict is not None:  # abstained (not windowable)
                result.verdicts.append(verdict)
        return result


def default_policy() -> Policy:
    """The policy the hub stamps into every v3 export.

    Bounds are deliberately loose — they assert the *machinery* (commit
    pipeline drains, staleness bounded, errors rare), not a particular
    hardware envelope; experiments wanting tight envelopes build their
    own Policy.
    """
    return Policy("default", [
        LatencyObjective("commit-latency-p99", "commit.latency",
                         "p99", 1.0),
        StalenessObjective("staleness-age-p99", bound=1.0),
        ErrorRatioObjective("client-error-ratio", max_ratio=0.01),
        BurnRateObjective("pending-age-burn", "consistency.pending_age",
                          threshold=1.0, budget=0.05),
    ])


def chaos_policy() -> Policy:
    """Windowed policy for fault phases: only objectives with a time
    axis, with bounds sized to 'recovered means converged'."""
    return Policy("chaos", [
        StalenessObjective("staleness-exposure", bound=2.0),
        BurnRateObjective("pending-age-burn", "consistency.pending_age",
                          threshold=2.0, budget=0.25),
    ])


POLICIES = {
    "default": default_policy,
    "chaos": chaos_policy,
}


def get_policy(name: str) -> Policy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown SLO policy {name!r}; have"
                         f" {sorted(POLICIES)}") from None


def evaluate_file(path: str, policy: Optional[Policy] = None,
                  window: Optional[Tuple[float, float]] = None,
                  ) -> PolicyResult:
    """Offline evaluation of an exported metrics JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return (policy or default_policy()).evaluate(doc, window)


def format_result(result: PolicyResult) -> str:
    """Human-readable table of one policy result (CLI + CI logs)."""
    lines = [f"policy {result.policy}:"
             f" {'PASS' if result.passed else 'FAIL'}"]
    for v in sorted(result.verdicts, key=lambda v: v.name):
        status = "ok  " if v.ok else "FAIL"
        line = (f"  [{status}] {v.name:<24} {v.metric:<38}"
                f" {v.measured:.6g} <= {v.target:.6g}")
        if v.detail:
            line += f"  ({v.detail})"
        lines.append(line)
    return "\n".join(lines)
