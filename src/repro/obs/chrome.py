"""Chrome trace-event JSON export for spans, instants, and gauges.

Converts a :class:`~repro.sim.trace.Tracer`'s causal span trees (and,
optionally, a :class:`~repro.obs.hub.MetricsHub`'s sampled gauge series)
into the Trace Event Format consumed by Perfetto and ``chrome://tracing``:

* every actor becomes a pid/tid pair — actors sharing a prefix group
  (``client``, ``commit``, ``commitq``, services, ``net``) share a pid so
  the viewer stacks related tracks together, with ``M`` metadata events
  naming each process and thread;
* closed spans become complete ``X`` events (ts + dur, microseconds),
  still-open spans become ``B`` begin events so hung work is visible as
  an unterminated slice rather than dropped;
* point events (commit, discard, coalesce, barrier) become instant
  ``i`` events;
* sampled gauge series become counter ``C`` events on a dedicated
  counters process;
* the hub's control-plane :class:`~repro.obs.timeline.Timeline` becomes
  a dedicated ``control-plane`` process with one stably-named thread
  per source (``autoscale``, ``chaos``, ``commit``, ``membership``):
  ``fault.injected``/``fault.recovered`` pairs and duration-carrying
  events render as complete ``X`` slices, the rest as instants — so an
  outage is a visible bar above the data-plane spans it explains;
* detected incidents (the v4 ``incidents`` section, passed explicitly)
  become ``X`` slices on an ``incidents`` process, carrying their rule,
  peak/bound, and top suspect in ``args``.

Everything is emitted in a deterministic order (ops by id, series by
name, timeline by seq, incidents by id), so two same-seed runs produce
byte-identical trace files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import Span, Tracer

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Event kinds already represented as spans or structural markers; every
#: other tracer event kind is exported as an instant.
_NON_INSTANT_KINDS = ("op.start", "op.end", "span.start", "span.end")

#: pid reserved for counter tracks (gauge series).
_COUNTERS_PID = 1

#: pids reserved for the control-plane timeline and incident tracks.
#: High and fixed so dynamically assigned actor pids (which start right
#: after :data:`_COUNTERS_PID`) can never collide with them.
_CONTROL_PID = 1_000_000
_INCIDENTS_PID = 1_000_001


def _actor_group(actor: str) -> str:
    """Process-level grouping for an actor name.

    ``client:/app#0`` → ``client``; ``commit:node0`` → ``commit``;
    service and network actors (no colon) group under their own name.
    """
    return actor.split(":", 1)[0] if ":" in actor else actor


def _assign_ids(actors: List[str]) -> Tuple[Dict[str, Tuple[int, int]],
                                            Dict[str, int]]:
    """Deterministic actor → (pid, tid) assignment, sorted for stability."""
    groups: Dict[str, List[str]] = {}
    for actor in sorted(set(actors)):
        groups.setdefault(_actor_group(actor), []).append(actor)
    ids: Dict[str, Tuple[int, int]] = {}
    group_pids: Dict[str, int] = {}
    pid = _COUNTERS_PID + 1
    for group in sorted(groups):
        group_pids[group] = pid
        for tid, actor in enumerate(groups[group], start=1):
            ids[actor] = (pid, tid)
        pid += 1
    return ids, group_pids


def _span_events(root: Span, ids: Dict[str, Tuple[int, int]],
                 out: List[Dict[str, Any]]) -> None:
    for span in root.walk():
        pid, tid = ids[span.actor]
        name = (span.name or span.category) if span.category == "op" \
            else f"{span.category}:{span.name}" if span.name \
            else span.category
        common = {
            "name": name,
            "cat": span.category,
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
            "args": {"op_id": span.op_id, "span_id": span.span_id},
        }
        if span.end is None:
            out.append({**common, "ph": "B"})
        else:
            out.append({**common, "ph": "X",
                        "dur": (span.end - span.start) * 1e6})


def _timeline_events(timeline: Any, since: float, until: float,
                     out: List[Dict[str, Any]]) -> None:
    """Control-plane timeline → stable per-source tracks.

    ``fault.recovered`` events that reference their injection's ``seq``
    fold into one complete slice spanning the outage; events carrying a
    duration become slices too; everything else is an instant.
    """
    events = [ev for ev in timeline.events() if since <= ev.time <= until]
    if not events:
        return
    sources = sorted({ev.source for ev in events})
    tids = {source: tid for tid, source in enumerate(sources, start=1)}
    out.append({"ph": "M", "name": "process_name", "pid": _CONTROL_PID,
                "tid": 0, "args": {"name": "control-plane"}})
    for source in sources:
        out.append({"ph": "M", "name": "thread_name", "pid": _CONTROL_PID,
                    "tid": tids[source], "args": {"name": source}})
    recovered_at = {ev.ref: ev.time for ev in events
                    if ev.kind == "fault.recovered" and ev.ref >= 0}
    for ev in events:
        if ev.kind == "fault.recovered" and ev.ref in recovered_at:
            continue  # folded into its injection's slice
        end = recovered_at.get(ev.seq)
        if end is None and ev.duration > 0.0:
            end = ev.time + ev.duration
        common = {
            "name": f"{ev.kind} {ev.label}".strip(),
            "cat": ev.kind,
            "pid": _CONTROL_PID,
            "tid": tids[ev.source],
            "ts": ev.time * 1e6,
            "args": {"seq": ev.seq, "detail": ev.detail},
        }
        if end is not None:
            out.append({**common, "ph": "X",
                        "dur": (end - ev.time) * 1e6})
        else:
            out.append({**common, "ph": "i", "s": "t"})


def _incident_events(incidents: List[Dict[str, Any]], since: float,
                     until: float, out: List[Dict[str, Any]]) -> None:
    """Detected incidents → one slice each on the ``incidents`` process."""
    kept = [inc for inc in incidents if since <= inc["start"] <= until]
    if not kept:
        return
    out.append({"ph": "M", "name": "process_name", "pid": _INCIDENTS_PID,
                "tid": 0, "args": {"name": "incidents"}})
    out.append({"ph": "M", "name": "thread_name", "pid": _INCIDENTS_PID,
                "tid": 1, "args": {"name": "slo-breaches"}})
    for inc in kept:
        suspects = inc.get("suspects") or []
        top = suspects[0]["label"] if suspects else ""
        out.append({
            "ph": "X",
            "name": f"{inc['id']} {inc['rule']}",
            "cat": "incident",
            "pid": _INCIDENTS_PID,
            "tid": 1,
            "ts": inc["start"] * 1e6,
            "dur": (inc["end"] - inc["start"]) * 1e6,
            "args": {"series": inc["series"], "peak": inc["peak"],
                     "bound": inc["bound"], "top_suspect": top},
        })


def chrome_trace(tracer: Tracer, hub: Optional[Any] = None,
                 since: float = 0.0,
                 until: float = float("inf"),
                 incidents: Optional[List[Dict[str, Any]]] = None,
                 ) -> Dict[str, Any]:
    """Build the Chrome trace document (a JSON-serializable dict).

    ``since``/``until`` clip by *root-span start time*: an op is included
    iff it starts inside the window (its children ride along), and
    instants/counters are clipped to the window directly.  ``incidents``
    takes the v4 ``incidents`` section's list (detection needs the full
    export, so the caller hands it in rather than this module rerunning
    it).
    """
    events: List[Dict[str, Any]] = []
    trees = tracer.span_trees()
    instants = [ev for ev in tracer.events(since=since, until=until)
                if ev.kind not in _NON_INSTANT_KINDS]
    actors: List[str] = [ev.actor for ev in instants]
    kept_roots = []
    for op_id in sorted(trees):
        root = trees[op_id]
        if not (since <= root.start <= until):
            continue
        kept_roots.append(root)
        actors.extend(span.actor for span in root.walk())
    ids, group_pids = _assign_ids(actors)

    # Metadata: name every process and thread (sorted by pid/tid).
    for group, pid in sorted(group_pids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": group}})
    for actor, (pid, tid) in sorted(ids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": actor}})
    if hub is not None and hub.enabled:
        events.append({"ph": "M", "name": "process_name",
                       "pid": _COUNTERS_PID, "tid": 0,
                       "args": {"name": "counters"}})

    for root in kept_roots:
        _span_events(root, ids, events)
    for ev in instants:
        pid, tid = ids[ev.actor]
        events.append({
            "ph": "i",
            "name": f"{ev.kind} {ev.detail}".strip(),
            "cat": ev.kind,
            "pid": pid,
            "tid": tid,
            "ts": ev.time * 1e6,
            "s": "t",  # thread-scoped instant
        })
    if hub is not None and hub.enabled:
        series = hub.stats.series_export()
        for name in sorted(series):
            points = series[name]
            for t, v in zip(points["t"], points["v"]):
                if not (since <= t <= until):
                    continue
                events.append({
                    "ph": "C",
                    "name": name,
                    "pid": _COUNTERS_PID,
                    "tid": 0,
                    "ts": t * 1e6,
                    "args": {"value": v},
                })
    if hub is not None and hub.enabled:
        _timeline_events(hub.timeline, since, until, events)
    if incidents:
        _incident_events(incidents, since, until, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer,
                       hub: Optional[Any] = None, since: float = 0.0,
                       until: float = float("inf"),
                       incidents: Optional[List[Dict[str, Any]]] = None,
                       ) -> int:
    """Write the trace to ``path``; returns the number of trace events.

    ``sort_keys`` keeps the bytes identical across same-seed runs.
    """
    doc = chrome_trace(tracer, hub, since=since, until=until,
                       incidents=incidents)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
    return len(doc["traceEvents"])
