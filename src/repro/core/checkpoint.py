"""Failure recovery: region checkpointing and rollback (§III.G).

Client-node failure loses uncommitted operations, but only for the failed
node's own consistent region.  Pacon recovers by rolling the region's
subtree on the DFS back to the most recent checkpoint and rebuilding the
distributed cache from it.  Checkpoints cover the *workspace subtree
only*, never the whole namespace, and the interface is exposed to the
application so it can choose its own cadence (checkpointing is optional:
without it the DFS still guarantees crash consistency of everything that
committed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.core.cache import new_record
from repro.sim.core import Event

__all__ = ["Checkpoint", "CheckpointManager"]


@dataclass
class Checkpoint:
    """One subtree snapshot (stored on the DFS in the real system)."""

    region_name: str
    workspace: str
    taken_at: float
    snapshot: Dict[str, Any]
    entries: int


class CheckpointManager:
    """Takes, keeps, and restores checkpoints for one region."""

    def __init__(self, region, node, dfs_client, keep: int = 4):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.region = region
        self.node = node
        self.env = region.env
        self.dfs_client = dfs_client
        self.keep = keep
        self.checkpoints: List[Checkpoint] = []
        # stats
        self.taken = 0
        self.restored = 0

    # -- taking --------------------------------------------------------------
    def checkpoint(self) -> Generator[Event, Any, Checkpoint]:
        """Snapshot the region subtree as it stands on the DFS.

        The cost equals a subtree copy on the DFS (charged at the MDS).
        Note the snapshot captures *committed* state; callers that need
        all in-flight operations included should quiesce first (see
        :meth:`repro.core.deploy.PaconDeployment.quiesce`).
        """
        ws = self.region.workspace
        mds = self.region.dfs.mds_for(ws)
        snapshot = yield from mds.request(self.node, "export_subtree", ws)
        cp = Checkpoint(
            region_name=self.region.name,
            workspace=ws,
            taken_at=self.env.now,
            snapshot=snapshot,
            # The workspace root itself is not an entry; clamp so an empty
            # (or degenerate) subtree snapshot reports 0, never -1.
            entries=max(0, _count_entries(snapshot["tree"]) - 1),
        )
        self.checkpoints.append(cp)
        if len(self.checkpoints) > self.keep:
            self.checkpoints.pop(0)
        self.taken += 1
        return cp

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    # -- restoring ----------------------------------------------------------------
    def restore(self, checkpoint: Optional[Checkpoint] = None,
                rebuild_cache: bool = True) -> Generator[Event, Any, int]:
        """Roll the DFS subtree back and rebuild the distributed cache.

        Returns the number of entries restored.  With ``rebuild_cache``
        the region's cache is flushed and re-primed from the checkpoint
        (every record marked committed — the checkpoint *is* the DFS
        state).
        """
        cp = checkpoint or self.latest
        if cp is None:
            raise RuntimeError(f"region {self.region.name} has no checkpoint")
        mds = self.region.dfs.mds_for(cp.workspace)
        restored = yield from mds.request(self.node, "restore_subtree",
                                          cp.snapshot)
        if rebuild_cache:
            yield from self._rebuild_cache(cp)
        self.restored += 1
        return restored

    def _rebuild_cache(self, cp: Checkpoint) -> Generator[Event, Any, None]:
        cache = self.region.cache
        # Drop whatever survived (possibly inconsistent) cache state.
        yield from cache.delete_subtree(self.node, cp.workspace)
        for shard in self.region.shards:
            shard.kv.flush_all()
        # Prime from the snapshot.
        for path, inode_record in _iter_snapshot(cp.snapshot):
            if path == cp.workspace:
                continue
            record = new_record(inode_record, committed=True)
            yield from cache.set(self.node, path, record)

    # -- periodic loop -----------------------------------------------------------------
    def run(self, interval: float) -> Generator[Event, Any, None]:
        """Optional background process for periodic checkpointing."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        while True:
            yield self.env.timeout(interval)
            yield from self.checkpoint()


def _count_entries(node: Dict) -> int:
    total = 1
    for child in node.get("children", {}).values():
        total += _count_entries(child)
    return total


def _iter_snapshot(snapshot: Dict):
    """Yield (path, inode_record) for every entry in a snapshot."""
    base = snapshot["path"]

    def walk(prefix: str, node: Dict):
        yield prefix, node["inode"]
        for name, child in node.get("children", {}).items():
            yield from walk(f"{prefix.rstrip('/')}/{name}", child)

    yield from walk(base, snapshot["tree"])
