"""Load-driven elasticity: the region autoscaling control loop.

The paper fixes region membership at initialization (§III.B); λFS-style
elastic metadata serving shows the alternative — provision for the load
you have, not the load you fear.  :class:`Autoscaler` is a DES-native
controller that watches two signals every tick:

* **utilization** — windowed busy-fraction of the hottest region
  resource (node CPU, node NIC, or cache-shard worker pool), the same
  busy-time deltas the observability sampler exports as
  ``resource.util[*]``.  The *max* across resources (not the mean)
  governs: tail latency is set by the hottest node, and a freshly grown
  empty shard must not dilute the signal into premature shrink;
* **commit backlog** — queued commit messages per region node
  (``queue.backlog`` divided by membership).

and drives :meth:`PaconDeployment.grow_region_async` /
:meth:`retire_node_async` with three dampers so membership does not
flap:

* **hysteresis** — separate high/low watermarks per signal plus a
  required streak of consecutive over/under ticks
  (``autoscale_up_consecutive`` / ``autoscale_down_consecutive``);
* **cooldown** — a minimum gap between scaling actions, covering the
  migration settle time;
* **bounds** — the pool never leaves
  ``[autoscale_min_nodes, autoscale_max_nodes]``.

An optional SLO hook (``autoscale_burn_threshold``) evaluates a
burn-rate objective over the region's ``consistency.pending_age`` gauge
series and forces a scale-up when the error budget is burning on every
window, regardless of the utilization streak (still cooldown- and
max-bounded).  Scaling actions emit ``autoscale.*`` counters/series into
the attached hub and ``autoscale.grow``/``autoscale.retire`` trace
events, and every action is recorded as an :class:`AutoscaleAction` for
tests and the bench driver.

The controller composes with the chaos engine: a grow that races a node
crash either completes (crashed peers are skipped by the migration) or
fails with the node partially joined — both outcomes are recorded, never
raised out of the control loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.deploy import PaconDeployment
from repro.core.region import ConsistentRegion
from repro.sim.core import Event, Interrupt
from repro.sim.network import Node, NodeDownError

__all__ = ["Autoscaler", "AutoscaleAction"]


@dataclass
class AutoscaleAction:
    """One attempted scaling action, successful or not."""

    time: float
    kind: str            # "grow" | "retire"
    node: str            # node name
    reason: str          # "util" | "backlog" | "burn_rate" | ...
    ok: bool
    latency: float = 0.0
    moved: int = 0       # records migrated (grow/retire)
    error: str = ""


class Autoscaler:
    """Elastic membership controller for one consistent region."""

    def __init__(self, deployment: PaconDeployment,
                 region: ConsistentRegion,
                 node_factory: Optional[Callable[[], Node]] = None):
        self.deployment = deployment
        self.region = region
        self.env = region.env
        self.config = region.config
        #: Called to provision a fresh node for each scale-up.  The
        #: default asks the cluster for one; benches hand in a factory
        #: that pops from a pre-built warm pool so every provisioning
        #: mode shares an identical cluster topology.
        self.node_factory = node_factory or self._default_factory
        self.actions: List[AutoscaleAction] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self.rejected = 0
        self.failed = 0
        self._added: List[Node] = []     # retirement candidates, LIFO
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at: Optional[float] = None
        self._next_node_seq = 0
        # Windowed-utilization state per resource: id -> [busy, t].
        self._util_state: Dict[int, List[float]] = {}
        self._process = None

    # -- wiring ------------------------------------------------------------
    def _default_factory(self) -> Node:
        safe = self.region.name.strip("/").replace("/", "_") or "region"
        name = f"{safe}.as{self._next_node_seq}"
        self._next_node_seq += 1
        return self.deployment.cluster.add_node(name)

    @property
    def hub(self):
        return self.region.hub

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Spawn the control loop; returns the Process (idempotent)."""
        if self._process is not None and self._process.is_alive:
            return self._process
        self._process = self.env.process(
            self.run(), label=f"autoscale:{self.region.name}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("autoscaler stopped")

    def run(self) -> Generator[Event, Any, None]:
        """The control loop: sense, decide, (maybe) act, sleep.

        Exits on its own once the region's commit queues close (end of
        run), mirroring the gauge sampler, so a drained event heap stays
        drainable.
        """
        try:
            while True:
                queues = self.region.queues.queues()
                if queues and all(q.closed for q in queues):
                    return
                yield from self._tick()
                yield self.env.timeout(self.config.autoscale_interval)
        except Interrupt:
            return

    # -- sensing -----------------------------------------------------------
    def _sense_utilization(self) -> float:
        """Max windowed busy-fraction across the region's resources.

        First sight of a resource seeds its window from the current busy
        time and reports it as 0.0 — a node that worked before joining
        must not fake a spike.
        """
        t = self.env.now
        peak = 0.0
        for resource in self._resources():
            state = self._util_state.get(id(resource))
            busy = resource.busy_time()
            if state is None:
                self._util_state[id(resource)] = [busy, t]
                continue
            prev_busy, prev_t = state
            window = t - prev_t
            if window > 0:
                util = (busy - prev_busy) / (window * resource.capacity)
                if util > peak:
                    peak = util
            state[0] = busy
            state[1] = t
        return peak

    def _resources(self):
        for node in self.region.nodes:
            yield node.cpu
            yield node.nic
        for shard in self.region.shards:
            yield shard.workers

    def _burn_rate_breached(self) -> bool:
        """SLO hook: is the staleness error budget burning everywhere?"""
        threshold = self.config.autoscale_burn_threshold
        hub = self.hub
        if threshold is None or not hub.enabled:
            return False
        series = hub.stats.series(
            f"consistency.pending_age[{self.region.name}]")
        if len(series) < 4:
            return False  # not enough signal to window over yet
        from repro.obs.slo import BurnRateObjective
        objective = BurnRateObjective(
            "autoscale-burn", "consistency.pending_age",
            threshold=threshold, budget=self.config.autoscale_burn_budget)
        doc = {"series": {series.name: series.export()}}
        return not objective.evaluate(doc).ok

    # -- deciding ----------------------------------------------------------
    def _tick(self) -> Generator[Event, Any, None]:
        cfg = self.config
        region = self.region
        t = self.env.now
        util = self._sense_utilization()
        n_nodes = len(region.nodes)
        backlog = region.queues.total_backlog() / max(1, n_nodes)
        hub = self.hub
        if hub.enabled:
            hub.record_sample(f"autoscale.nodes[{region.name}]", t,
                              float(n_nodes))
            hub.record_sample(f"autoscale.util[{region.name}]", t, util)
            hub.record_sample(f"autoscale.backlog[{region.name}]", t,
                              backlog)
        overloaded = (util >= cfg.autoscale_util_high
                      or backlog >= cfg.autoscale_backlog_high)
        underloaded = (util <= cfg.autoscale_util_low
                       and backlog <= cfg.autoscale_backlog_low)
        self._up_streak = self._up_streak + 1 if overloaded else 0
        self._down_streak = self._down_streak + 1 if underloaded else 0
        burning = self._burn_rate_breached()
        if self._last_action_at is not None and \
                t - self._last_action_at < cfg.autoscale_cooldown:
            return
        if burning or self._up_streak >= cfg.autoscale_up_consecutive:
            reason = ("burn_rate" if burning
                      else ("util" if util >= cfg.autoscale_util_high
                            else "backlog"))
            self._up_streak = 0
            if len(region.nodes) >= cfg.autoscale_max_nodes:
                self._reject("grow", reason)
                return
            yield from self._scale_up(reason)
        elif self._down_streak >= cfg.autoscale_down_consecutive:
            self._down_streak = 0
            if len(region.nodes) <= cfg.autoscale_min_nodes:
                return  # idle at the floor is steady state, not a fault
            candidate = self._retire_candidate()
            if candidate is None:
                self._reject("retire", "no_candidate")
                return
            yield from self._scale_down(candidate, "idle")

    def _retire_candidate(self) -> Optional[Node]:
        """Newest autoscaler-added node that can leave right now.

        Only nodes this controller added are ever retired — base nodes
        host clients and belong to the operator.  LIFO keeps churn on
        the youngest (emptiest) shard.
        """
        for node in reversed(self._added):
            if node in self.region.nodes and node.alive \
                    and self.region.clients_on_node.get(node.node_id,
                                                        0) == 0:
                return node
        return None

    def _reject(self, kind: str, reason: str) -> None:
        self.rejected += 1
        hub = self.hub
        if hub.enabled:
            hub.count("autoscale.rejected")
            hub.timeline.record(self.env.now, "autoscale",
                                "scale.rejected", kind, detail=reason)
        self.region.tracer.emit(self.env.now, "autoscaler",
                                "autoscale.rejected", f"{kind} {reason}")

    # -- acting ------------------------------------------------------------
    def _scale_up(self, reason: str) -> Generator[Event, Any, None]:
        region = self.region
        t0 = self.env.now
        node = self.node_factory()
        region.tracer.emit(t0, "autoscaler", "autoscale.grow",
                           f"{node.name} reason={reason}")
        action = AutoscaleAction(time=t0, kind="grow", node=node.name,
                                 reason=reason, ok=False)
        self.actions.append(action)
        self._last_action_at = t0
        try:
            moved = yield from self.deployment.grow_region_async(region,
                                                                 node)
        except NodeDownError as exc:
            # A crash raced the growth.  If the node joined before the
            # failure, keep it: its (partially migrated) shard refills
            # from the DFS on demand.  If it never joined, drop it.
            self.failed += 1
            action.error = str(exc) or type(exc).__name__
            action.ok = node in region.nodes
            action.latency = self.env.now - t0
            if self.hub.enabled:
                # Failed attempts cost time too: record their latency and
                # a structured reason so incident blame can rank them.
                self.hub.count("autoscale.action_failed")
                self.hub.count("autoscale.action_failed"
                               f"[grow:{type(exc).__name__}]")
                self.hub.observe("autoscale.action_latency",
                                 action.latency)
                self.hub.timeline.record(
                    t0, "autoscale", "scale.failed", node.name,
                    detail=f"grow reason={reason} error={action.error}",
                    duration=action.latency)
        else:
            action.ok = True
            action.moved = moved
            action.latency = self.env.now - t0
        if action.ok:
            self.scale_ups += 1
            self._added.append(node)
            hub = self.hub
            if hub.enabled:
                hub.count("autoscale.scale_up")
                # A crash-raced grow that still landed already observed
                # its latency (and a scale.failed event) above.
                if not action.error:
                    hub.observe("autoscale.action_latency",
                                action.latency)
                    hub.timeline.record(
                        t0, "autoscale", "scale.grow", node.name,
                        detail=f"reason={reason} moved={action.moved}",
                        duration=action.latency)
                # New node + shard join the contention snapshot and the
                # running sampler's resource.util[*] series.
                hub.track_resource(region, node.cpu)
                hub.track_resource(region, node.nic)
                shard = next((s for s in region.shards if s.node is node),
                             None)
                if shard is not None:
                    hub.track_resource(region, shard.workers,
                                       name=shard.name)

    def _scale_down(self, node: Node,
                    reason: str) -> Generator[Event, Any, None]:
        region = self.region
        t0 = self.env.now
        region.tracer.emit(t0, "autoscaler", "autoscale.retire",
                           f"{node.name} reason={reason}")
        action = AutoscaleAction(time=t0, kind="retire", node=node.name,
                                 reason=reason, ok=False)
        self.actions.append(action)
        self._last_action_at = t0
        try:
            moved = yield from self.deployment.retire_node_async(region,
                                                                 node)
        except (NodeDownError, ValueError, RuntimeError) as exc:
            self.failed += 1
            action.error = str(exc) or type(exc).__name__
            action.latency = self.env.now - t0
            if self.hub.enabled:
                # Symmetric with the success path: failed retires record
                # their latency and a structured reason too.
                self.hub.count("autoscale.action_failed")
                self.hub.count("autoscale.action_failed"
                               f"[retire:{type(exc).__name__}]")
                self.hub.observe("autoscale.action_latency",
                                 action.latency)
                self.hub.timeline.record(
                    t0, "autoscale", "scale.failed", node.name,
                    detail=f"retire reason={reason}"
                           f" error={action.error}",
                    duration=action.latency)
        else:
            action.ok = True
            action.moved = moved
            action.latency = self.env.now - t0
            self.scale_downs += 1
            if node in self._added:
                self._added.remove(node)
            if self.hub.enabled:
                self.hub.count("autoscale.scale_down")
                self.hub.observe("autoscale.action_latency",
                                 action.latency)
                self.hub.timeline.record(
                    t0, "autoscale", "scale.retire", node.name,
                    detail=f"reason={reason} moved={moved}",
                    duration=action.latency)
