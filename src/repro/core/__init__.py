"""Pacon: partial-consistency metadata management (the paper's contribution).

The library splits the global namespace into **consistent regions** — one
per HPC application workspace — and gives each region:

* a distributed in-memory metadata cache sharded over the application's own
  client nodes (:mod:`repro.core.cache`), strongly consistent inside the
  region via CAS,
* asynchronous commit of metadata mutations to the underlying DFS through
  per-node commit queues, with *independent* commit (+resubmission) for
  non-dependent operations and *barrier* commit for dependent ones
  (:mod:`repro.core.commit`),
* batch permission management that replaces layer-by-layer path traversal
  with a region-wide permission match (:mod:`repro.core.permissions`),
* small-file inlining, round-robin cache eviction, checkpoint-based
  failure recovery, and read-only region merging.

Entry points: :class:`repro.core.deploy.PaconDeployment` builds a deployment
on a simulated cluster; :class:`repro.core.client.PaconClient` is the
per-process handle; :class:`repro.core.deploy.PaconFS` is a synchronous
facade for library-style use.
"""

from repro.core.autoscale import Autoscaler, AutoscaleAction
from repro.core.config import PaconConfig
from repro.core.permissions import PermissionSpec, RegionPermissions
from repro.core.region import ConsistentRegion, RegionManager, ReadOnlyRegion
from repro.core.cache import CacheShard, DistributedCache
from repro.core.commit import BarrierMessage, CommitProcess, OpMessage
from repro.core.client import PaconClient
from repro.core.deploy import PaconDeployment, PaconFS
from repro.core.eviction import EvictionManager
from repro.core.checkpoint import CheckpointManager

__all__ = [
    "AutoscaleAction",
    "Autoscaler",
    "BarrierMessage",
    "CacheShard",
    "CheckpointManager",
    "CommitProcess",
    "ConsistentRegion",
    "DistributedCache",
    "EvictionManager",
    "OpMessage",
    "PaconClient",
    "PaconConfig",
    "PaconDeployment",
    "PaconFS",
    "PermissionSpec",
    "ReadOnlyRegion",
    "RegionManager",
    "RegionPermissions",
]
