"""Distributed cache space management (§III.F).

Metadata is small, so cache pressure is rare; the paper deliberately uses a
*simple* policy rather than LRU bookkeeping: when usage crosses a
threshold, pick one entry (file or directory) directly under the region
root — round-robin, so consecutive evictions pick different entries — and
evict the cached metadata of/under it.

Two safety rules the paper implies and we enforce explicitly:

* only entries whose operations have **committed** to the DFS may be
  dropped (the DFS backup copy must exist before the primary copy goes),
* inline small-file data that is not yet on the DFS is flushed before its
  record is evicted.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.dfs.errors import FileExists
from repro.sim.core import Event

__all__ = ["EvictionManager"]


class EvictionManager:
    """Round-robin evictor for one consistent region."""

    def __init__(self, region, node, dfs_client):
        self.region = region
        self.node = node
        self.env = region.env
        self.config = region.config
        self.dfs_client = dfs_client
        self._rr_index = 0  # next top-level entry to consider
        # stats
        self.evictions = 0
        self.entries_evicted = 0
        self.flushes = 0
        self.skipped_uncommitted = 0

    # -- pressure detection ------------------------------------------------
    def pressured_shards(self) -> List:
        hw = self.config.eviction_high_watermark
        return [s for s in self.region.shards
                if s.kv.usage_fraction() >= hw]

    def under_pressure(self) -> bool:
        return bool(self.pressured_shards())

    # -- policy ----------------------------------------------------------------
    def _top_level_entries(self) -> Generator[Event, Any, List[str]]:
        """Current entries directly under the region root (cache view)."""
        ws = self.region.workspace
        found = yield from self.region.cache.scan_subtree(self.node, ws)
        tops = sorted({self._top_of(path) for path, _ in found})
        return tops

    def _top_of(self, path: str) -> str:
        ws = self.region.workspace
        rest = path[len(ws):].lstrip("/")
        first = rest.split("/", 1)[0]
        return f"{ws.rstrip('/')}/{first}"

    def evict_once(self) -> Generator[Event, Any, int]:
        """One eviction round: drop the metadata under the next RR entry.

        Returns the number of cache entries removed.  Entries that are not
        yet committed are skipped (and counted), which also rotates the RR
        cursor past them — mitigating thrash, as §III.F intends.
        """
        tops = yield from self._top_level_entries()
        if not tops:
            return 0
        for attempt in range(len(tops)):
            victim = tops[self._rr_index % len(tops)]
            self._rr_index += 1
            removed = yield from self._evict_entry(victim)
            if removed > 0:
                self.evictions += 1
                self.entries_evicted += removed
                return removed
        return 0

    def _evict_entry(self, top_path: str) -> Generator[Event, Any, int]:
        """Evict ``top_path`` and everything cached under it, if safe."""
        cache = self.region.cache
        subtree = yield from cache.scan_subtree(self.node, top_path)
        own = yield from cache.get(self.node, top_path)
        candidates: List[Tuple[str, Dict]] = list(subtree)
        if own is not None:
            candidates.append((top_path, own))
        removed = 0
        for path, record in candidates:
            if not record.get("committed") or record.get("deleted"):
                # Backup copy not in place yet — unsafe to drop.
                self.skipped_uncommitted += 1
                continue
            if (record.get("inline_data") and not record.get("large")
                    and not record.get("shadow")):
                # Flush inline bytes so the DFS copy is complete.
                yield from self._flush_inline(path, record)
                self.flushes += 1
            existed = yield from cache.delete(self.node, path)
            if existed:
                removed += 1
        return removed

    def _flush_inline(self, path: str,
                      record: Dict) -> Generator[Event, Any, None]:
        size = record.get("size", 0)
        if size <= 0:
            return
        try:
            yield from self.dfs_client.write(path, 0, size)
        except FileExists:  # pragma: no cover - defensive
            pass

    # -- background loop ----------------------------------------------------------
    def run(self, poll_interval: float = 1e-3) -> Generator[Event, Any, None]:
        """Background process: watch usage, evict to the target watermark."""
        target = self.config.eviction_target
        while True:
            yield self.env.timeout(poll_interval)
            while self.under_pressure():
                removed = yield from self.evict_once()
                if removed == 0:
                    break  # nothing evictable right now
                if all(s.kv.usage_fraction() <= target
                       for s in self.region.shards):
                    break
