"""Failure injection for client nodes and MDS servers (§III.G).

A failed client node loses (a) the cache shard it hosted — part of the
region's *primary* metadata copy — and (b) every uncommitted operation
sitting in its commit queue or mid-commit in its commit process.  The
blast radius is exactly one consistent region; other regions' caches and
queues are untouched, which the tests assert.

Recovery = bring the node back, restart its commit process at the
region's current barrier epoch (re-publishing any barrier markers the
crash destroyed so region-wide rendezvous can still complete), and
optionally roll the region subtree back to the latest checkpoint
(:class:`repro.core.checkpoint.CheckpointManager`).

An MDS crash is different in kind: Pacon clients keep working against
the cache, and the commit pipeline *replays* operations whose round
trips were lost (commit tokens make the replay idempotent), so an MDS
crash-recover cycle loses nothing — the convergence invariant in
:mod:`repro.chaos.invariants` asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commit import BarrierMessage, OpMessage

__all__ = ["FailureReport", "fail_node", "recover_node",
           "fail_mds", "recover_mds"]


@dataclass
class FailureReport:
    """What a node failure destroyed."""

    node_name: str
    region_name: str
    lost_cache_entries: int
    lost_queued_ops: int


def fail_node(region, node) -> FailureReport:
    """Crash ``node``: wipe its shard, drop its queued and in-flight ops,
    kill its commit process, and take its NIC offline.

    The commit process is aborted *before* the queue is drained: aborting
    cancels its pending ``get`` wait, which pushes a granted-but-
    undelivered message back into the queue so the drain counts it
    exactly once.  Only :class:`OpMessage` instances count as lost
    operations — barrier markers are control traffic, re-published by
    :func:`recover_node`, and counting them would break the
    ``submitted == committed + discarded + coalesced + lost`` identity
    the chaos invariant checker enforces.
    """
    if node not in region.nodes:
        raise ValueError(f"node {node.name} not in region {region.name}")
    node.fail()
    lost_cache = 0
    for shard in region.shards:
        if shard.node is node:
            lost_cache += len(shard.kv)
            shard.kv.flush_all()
    lost_ops = 0
    for cp in region.commit_processes:
        if cp.node is node:
            lost_ops += cp.abort(reason="node-failure")["total"]
    queue = region.queues.route(node.node_id)
    for msg in queue.drain():
        if isinstance(msg, OpMessage):
            lost_ops += 1
            if region.hub.enabled:
                # Reconcile the version-lag ledger: this published mutation
                # will never commit, so it must stop counting as pending.
                region.note_op_resolved(msg.path)
    return FailureReport(
        node_name=node.name,
        region_name=region.name,
        lost_cache_entries=lost_cache,
        lost_queued_ops=lost_ops,
    )


def recover_node(region, node, restart_commit: bool = True) -> None:
    """Bring a node back up (cache shard empty, queue empty) and restart
    its commit process at the region's current barrier position."""
    if node not in region.nodes:
        raise ValueError(f"node {node.name} not in region {region.name}")
    node.recover()
    if restart_commit:
        for cp in region.commit_processes:
            if cp.node is node and (cp.killed or cp._process is None
                                    or not cp._process.is_alive):
                # The kill interrupt (scheduled at higher priority) stops
                # the old loop before this fresh one's bootstrap runs.
                cp.killed = False
                # Epoch floor: epochs complete in order, so the restarted
                # process can never be asked to drain an epoch that the
                # region already finished — e.g. its own arrival was
                # triggered but undelivered at the crash instant.
                if region.barrier_epochs_completed > cp.current_epoch:
                    cp.current_epoch = region.barrier_epochs_completed
                cp.start()
                _republish_barriers(region, node, cp)


def _republish_barriers(region, node, cp) -> None:
    """Re-publish barrier markers the crash destroyed.

    The queue drain on failure also destroyed the barrier messages of
    epochs still in flight; without them the restarted commit process
    never drains those epochs and the region-wide rendezvous hangs every
    other node forever.  For each epoch between the process's resume
    point and the client epoch, publish the *shortfall* against the
    expected per-epoch count — markers that survived in the backlog (the
    failure may have raced a broadcast) are not double-published.
    """
    queue = region.queues.route(node.node_id)
    in_backlog: dict = {}
    for msg in queue.backlog():
        if isinstance(msg, BarrierMessage):
            in_backlog[msg.epoch] = in_backlog.get(msg.epoch, 0) + 1
    expected = region.expected_barrier_messages(node.node_id)
    for epoch in range(cp.current_epoch, region.client_epoch):
        for _ in range(expected - in_backlog.get(epoch, 0)):
            queue.publish(BarrierMessage(epoch=epoch,
                                         node_id=node.node_id,
                                         timestamp=region.env.now))


def fail_mds(dfs, index: int = 0):
    """Crash one MDS server's node; in-flight RPCs to it are dropped.

    Returns the server.  Clients inside a consistent region keep working
    (their writes are cache-side); commit processes see the loss as
    :class:`~repro.sim.network.NodeDownError` and replay.
    """
    server = dfs.mds_servers[index]
    server.node.fail()
    return server


def recover_mds(dfs, index: int = 0):
    """Bring an MDS server's node back; its service resumes immediately
    (handlers run in the caller's process — there is no loop to restart).
    """
    server = dfs.mds_servers[index]
    server.node.recover()
    return server
