"""Failure injection for client nodes (§III.G).

A failed client node loses (a) the cache shard it hosted — part of the
region's *primary* metadata copy — and (b) every uncommitted operation
sitting in its commit queue.  The blast radius is exactly one consistent
region; other regions' caches and queues are untouched, which the tests
assert.

Recovery = bring the node back, roll the region subtree back to the latest
checkpoint, and rebuild the cache (:class:`repro.core.checkpoint.CheckpointManager`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FailureReport", "fail_node", "recover_node"]


@dataclass
class FailureReport:
    """What a node failure destroyed."""

    node_name: str
    region_name: str
    lost_cache_entries: int
    lost_queued_ops: int


def fail_node(region, node) -> FailureReport:
    """Crash ``node``: wipe its shard, drop its queued and in-flight ops,
    kill its commit process, and take its NIC offline."""
    if node not in region.nodes:
        raise ValueError(f"node {node.name} not in region {region.name}")
    node.fail()
    lost_cache = 0
    for shard in region.shards:
        if shard.node is node:
            lost_cache += len(shard.kv)
            shard.kv.flush_all()
    queue = region.queues.route(node.node_id)
    lost_ops = len(queue.drain())
    for cp in region.commit_processes:
        if cp.node is node:
            lost_ops += cp._in_flight + len(cp._pending) + \
                sum(len(v) for v in cp._future.values())
            if cp._process is not None and cp._process.is_alive:
                cp.killed = True
                cp._process.interrupt("node-failure")
    return FailureReport(
        node_name=node.name,
        region_name=region.name,
        lost_cache_entries=lost_cache,
        lost_queued_ops=lost_ops,
    )


def recover_node(region, node, restart_commit: bool = True) -> None:
    """Bring a node back up (cache shard empty, queue empty) and restart
    its commit process."""
    if node not in region.nodes:
        raise ValueError(f"node {node.name} not in region {region.name}")
    node.recover()
    if restart_commit:
        for cp in region.commit_processes:
            if cp.node is node and (cp.killed or cp._process is None
                                    or not cp._process.is_alive):
                # The kill interrupt (scheduled at higher priority) stops
                # the old loop before this fresh one's bootstrap runs.
                cp.killed = False
                cp.start()
