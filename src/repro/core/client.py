"""The Pacon client: the application-facing file interface (§III.B/D).

Each application process holds one :class:`PaconClient`.  Operations under
the process's consistent region are served by the distributed metadata
cache and committed to the DFS asynchronously; operations outside every
known region are redirected, unmodified, to the underlying DFS client.

Operation semantics follow Table I of the paper:

=========== ================= ====================== ======================
op          cache operation   comm type with DFS     commit type
=========== ================= ====================== ======================
create      put               async                  independent
mkdir       put               async                  independent
rm          update & delete   async                  independent
getattr     get               none / sync (on miss)  none / indep. (miss)
rmdir       delete            sync                   barrier
readdir     (none)            sync                   barrier
=========== ================= ====================== ======================

Every method is a DES generator; wrap with
:func:`repro.sim.core.run_sync` (or use :class:`repro.core.deploy.PaconFS`)
for synchronous use.  When ``trace=True`` each call records the Table-I
classification it actually exercised in ``last_trace`` — the Table I
conformance tests and bench read that.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.cache import new_record
from repro.core.commit import OpMessage
from repro.core.region import ConsistentRegion, ReadOnlyRegion
from repro.dfs.errors import (
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.dfs.inode import FileType, Inode
from repro.dfs.namespace import normalize_path, parent_of
from repro.kvstore.memkv import CasMismatch, KeyExists
from repro.sim.core import Event
from repro.sim.rng import stable_hash

__all__ = ["PaconClient", "AggregateClient"]


def _traced(fn):
    """Wrap a client operation generator in an observability span.

    When neither the region's tracer nor its metrics hub is enabled (the
    default ``NULL_TRACER``/``NULL_HUB`` pair), the original generator is
    returned untouched — the fast path costs two attribute reads and no
    simulated time.  Otherwise the generator is driven through
    :meth:`PaconClient._spanned`, which emits paired ``op.start``/
    ``op.end`` events (closing the span even when the op raises) and feeds
    the per-op-type latency histogram.
    """
    op = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, path, *args, **kwargs):
        gen = fn(self, path, *args, **kwargs)
        region = self.region
        if not (region.tracer.enabled or region.hub.enabled):
            return gen
        return self._spanned(op, path, gen)

    return wrapper


class PaconClient:
    """Per-process handle bound to a node inside a consistent region."""

    #: Logical clients this handle stands for; AggregateClient overrides.
    #: Metric weights use this so hub counters/distributions agree between
    #: faithful and aggregate runs at matched logical scale.
    multiplier = 1

    def __init__(self, region: ConsistentRegion, node, trace: bool = False):
        self.region = region
        self.node = node
        self.env = region.env
        self.costs = region.cluster.costs
        self.config = region.config
        self.uid = region.config.uid
        self.gid = region.config.gid
        self.client_id = region.register_client(node)
        self.actor_name = f"client:{region.name}#{self.client_id}"
        # Redirect path: an ordinary DFS client for out-of-region requests
        # and for Pacon's own synchronous DFS calls.
        self.dfs_client = region.dfs.client(node, uid=self.uid, gid=self.gid)
        self.trace = trace
        self.last_trace: Optional[Dict[str, Any]] = None
        #: Table-I classification of the current/most recent op, kept as a
        #: cheap tuple so spans can tag op.end events with it.
        self.last_class: Optional[Tuple[str, str, str]] = None
        #: Ablation switch: emulate the traditional layer-by-layer
        #: permission check *inside the distributed cache* (one KV get per
        #: path level) instead of batch permission management.  Used by the
        #: batch-permissions ablation bench; always False in normal use.
        self.hierarchical_permissions = False
        # Parent directories this client has already verified (created or
        # checked).  Saves the per-create parent KV get on the hot path;
        # invalidated on this client's own rmdir/rm.  Correctness does not
        # depend on it: a stale positive only defers the existence error to
        # the commit path, which resubmits/discards per §III.E.
        self._parent_memo: set = set()
        # stats
        self.ops = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.redirects = 0

    # ------------------------------------------------------------------ utils
    def _note(self, op: str, cache_op: str, comm: str, commit: str) -> None:
        self.ops += 1
        self.last_class = (cache_op, comm, commit)
        if self.trace:
            self.last_trace = {"op": op, "cache_op": cache_op,
                               "comm": comm, "commit": commit}

    def _spanned(self, op: str, path: str,
                 inner: Generator[Event, Any, Any],
                 ) -> Generator[Event, Any, Any]:
        """Drive ``inner`` inside an op.start/op.end span (see _traced).

        When the tracer is on, a root :class:`SpanContext` is pushed onto
        the driving DES process for the duration of the op — child stages
        (cache RPCs, network transfers, MDS requests) find it there and
        emit their spans as children, forming the op's causal span tree.
        """
        tracer = self.region.tracer
        hub = self.region.hub
        actor = self.actor_name
        ctx = proc = None
        op_id = None
        t0 = self.env.now
        self.last_class = None
        if tracer.enabled:
            ctx = tracer.root_context()
            op_id = ctx.op_id
            proc = self.env.active_process
            tracer.push_context(proc, ctx)
            tracer.emit(t0, actor, "op.start", f"{op} {path}", op_id,
                        span_id=ctx.span_id)
        outcome = "ok"
        try:
            result = yield from inner
            return result
        except BaseException as exc:
            outcome = type(exc).__name__
            raise
        finally:
            t1 = self.env.now
            if ctx is not None:
                tracer.pop_context(proc, ctx)
                detail = f"{op} {path} [{outcome}]"
                if self.last_class is not None:
                    cache_op, comm, commit = self.last_class
                    detail += (f" cache={cache_op} comm={comm}"
                               f" commit={commit}")
                tracer.emit(t1, actor, "op.end", detail, op_id,
                            span_id=ctx.span_id)
            if hub.enabled:
                hub.observe_op(op, t1 - t0, ok=outcome == "ok",
                               weight=self.multiplier)

    def _stage_start(self, category: str, name: str = ""):
        """Open a child stage span under the current op; None when off."""
        tracer = self.region.tracer
        if not tracer.enabled:
            return None
        parent = tracer.current_context(self.env.active_process)
        if parent is None:
            return None
        ctx = tracer.child_context(parent)
        tracer.span_start(self.env.now, self.actor_name, ctx, category, name)
        return ctx

    def _stage_end(self, ctx) -> None:
        if ctx is not None:
            self.region.tracer.span_end(self.env.now, self.actor_name, ctx)

    def _provisional_ino(self) -> int:
        return self.region.alloc_provisional_ino()

    def _charge_client_cpu(self) -> Generator[Event, Any, None]:
        if self.costs.client_op_cpu > 0:
            yield self.env.timeout(self.costs.client_op_cpu)

    def _check_permission(self, op: str, path: str,
                          region: Optional[ConsistentRegion] = None,
                          ) -> Generator[Event, Any, None]:
        """Batch permission check (§III.C) with its (tiny) CPU cost.

        Checks against the *covering* region's permission information —
        for merged regions that is the information exchanged during the
        merge (§III.D.4 step 1).
        """
        region = region or self.region
        if normalize_path(path) == region.workspace:
            return  # region-root access was granted at region creation
        if self.hierarchical_permissions:
            yield from self._hierarchical_walk(path, region)
        receipt = region.permissions.check_op(op, path, self.uid, self.gid)
        cost = (self.costs.permission_check_batch * receipt.normal_checks +
                self.costs.permission_check_special_per_item *
                receipt.special_items_scanned)
        if cost > 0:
            yield self.env.timeout(cost)
        if not receipt.allowed:
            raise PermissionDenied(path, receipt.reason)

    def _hierarchical_walk(self, path: str,
                           region: ConsistentRegion) -> Generator[
                               Event, Any, None]:
        """Ablation: check each ancestor's cached record level by level.

        One KV get per path component between the workspace and the
        target — the traversal cost batch permission management removes.
        """
        ancestors = []
        current = parent_of(path)
        while current != region.workspace and \
                current.startswith(region.workspace):
            ancestors.append(current)
            current = parent_of(current)
        for ancestor in reversed(ancestors):
            yield from region.cache.get(self.node, ancestor)

    def _route(self, path: str) -> Optional[ConsistentRegion]:
        return self.region.covering_region(path)

    def _publish(self, op: str, path: str, mode: int,
                 gen_ino: int = -1) -> Generator[Event, Any, None]:
        """Push an operation message into the local commit queue.

        With ``config.commit_queue_capacity`` set, a full queue stalls the
        *client* until the commit process drains below the bound — the
        backpressure is a visible, metered delay instead of unbounded
        buffering.  Barrier control messages bypass this path entirely
        (``ConsistentRegion.trigger_barrier`` publishes directly), so
        backpressure can never deadlock a barrier rendezvous.
        """
        queue = self.region.queues.route(self.node.node_id)
        capacity = self.region.config.commit_queue_capacity
        if capacity is not None and len(queue) >= capacity:
            stall_started = self.env.now
            stall_ctx = self._stage_start("publish_stall", f"{op} {path}")
            while len(queue) >= capacity:
                yield self.env.timeout(self.region.config.commit_retry_delay)
            self._stage_end(stall_ctx)
            if self.region.hub.enabled:
                stalled = self.env.now - stall_started
                self.region.hub.observe("commit.publish_stall", stalled)
                self.region.hub.count("commit.publish_stalls")
                self.region.hub.timeline.record(
                    stall_started, "commit", "backpressure.stall",
                    queue.name, detail=f"{op} {path}", duration=stalled)
        if self.costs.commit_queue_push > 0:
            yield self.env.timeout(self.costs.commit_queue_push)
        msg = OpMessage(op=op, path=path, mode=mode, uid=self.uid,
                        gid=self.gid, timestamp=self.env.now,
                        epoch=self.region.client_epoch,
                        client_id=self.client_id, gen_ino=gen_ino,
                        weight=self.multiplier)
        tracer = self.region.tracer
        if tracer.enabled:
            parent = tracer.current_context(self.env.active_process)
            if parent is not None:
                # Commit-queue residency span: opened at publish, closed by
                # the commit process at commit/discard/coalesce.  Not an
                # attribution bucket — the async commit is off the client
                # critical path by design (that is the paper's claim) —
                # but it shows queue+commit time in the tree/Chrome views.
                cctx = tracer.child_context(parent)
                tracer.span_start(self.env.now,
                                  f"commitq:{self.region.name}", cctx,
                                  "commit_queue", f"{op} {path}")
                msg.op_id = cctx.op_id
                msg.span_id = cctx.span_id
        queue.publish(msg)
        self.region.ops_submitted += 1
        if self.region.hub.enabled:
            self.region.hub.count("commit.published")
            # Version-lag ledger: the MDS copy of ``path`` now lags the
            # cache by one more mutation, until the commit process
            # resolves this message (commit/discard/coalesce/abort).
            self.region.note_op_pending(path)

    def _parent_check(self, path: str) -> Generator[Event, Any, None]:
        """Verify the parent directory exists (cache first, DFS on miss).

        Applications that guarantee creation order can disable this
        (``config.parent_check = False``), as the paper allows.
        """
        parent = parent_of(path)
        if parent == self.region.workspace:
            return  # the workspace root always exists (created at init)
        if parent in self._parent_memo:
            self._observe_read("private", "lookup", parent)
            return  # verified earlier by this client
        record = yield from self.region.cache.get(self.node, parent)
        if record is not None:
            self.cache_hits += 1
            if record.get("deleted"):
                raise FileNotFound(parent)
            if record["ftype"] != FileType.DIRECTORY.value:
                raise NotADirectory(parent)
            self._observe_read("shared", "lookup", parent, record)
            self._parent_memo.add(parent)
            return
        self.cache_misses += 1
        # Not cached: it may exist on the DFS (§III.C) — check synchronously
        # and load it into the cache for next time.
        try:
            inode = yield from self.dfs_client.getattr(parent)
        except FileNotFound:
            raise FileNotFound(parent)
        if not inode.is_dir:
            raise NotADirectory(parent)
        self._observe_read("mds", "lookup", parent)
        record = new_record(inode.to_record(), committed=True)
        yield from self._cache_fill(parent, record)
        self._parent_memo.add(parent)

    def _observe_read(self, tier: str, op: str, path: str,
                      record: Optional[Dict] = None,
                      region: Optional[ConsistentRegion] = None) -> None:
        """Record staleness-at-read for one metadata read (hub-gated).

        ``tier`` is where the read was served: ``private`` (this client's
        parent memo), ``shared`` (the region's distributed cache), or
        ``mds`` (DFS fallthrough — authoritative by definition).  Age is
        how long the MDS copy has lagged the served value (time since the
        served record's last un-committed mutation); lag is the number of
        published-but-unresolved mutations for the path.  Zero-cost when
        no hub is attached: one ``enabled`` read, nothing allocated.
        """
        hub = self.region.hub
        if not hub.enabled:
            return
        region = region or self.region
        if tier == "mds" or record is None:
            # Served authoritatively (or from a bare existence memo with
            # no record to compare): age 0 by definition; the memo case
            # still reports the path's pending-mutation lag.
            lag = 0 if tier == "mds" else region.pending_mutations(path)
            hub.observe_staleness(tier, op, 0.0, lag, self.multiplier)
            return
        lag = region.pending_mutations(path)
        if record.get("committed") and lag == 0:
            age = 0.0
            # A committed record whose authoritative copy is gone means
            # the backup lost it (crash past the commit): count, don't age.
            namespace = getattr(region.dfs, "namespace", None)
            if namespace is not None and \
                    namespace.commit_stamp(path) is None:
                hub.count("consistency.orphan_reads", self.multiplier)
        else:
            # The cache (primary copy) is ahead of the MDS: the backup
            # has lagged since the record's last mutation.
            age = self.env.now - record.get("mtime", self.env.now)
        hub.observe_staleness(tier, op, age, lag, self.multiplier)

    def _cache_fill(self, path: str,
                    record: Dict) -> Generator[Event, Any, None]:
        """Best-effort insert of a DFS-loaded record (races are benign)."""
        try:
            yield from self.region.cache.add(self.node, path, record)
        except KeyExists:
            pass

    # ------------------------------------------------------- write operations
    @_traced
    def mkdir(self, path: str,
              mode: Optional[int] = None) -> Generator[Event, Any, Inode]:
        inode = yield from self._create_entry("mkdir", path, mode,
                                              FileType.DIRECTORY)
        return inode

    @_traced
    def create(self, path: str,
               mode: Optional[int] = None) -> Generator[Event, Any, Inode]:
        inode = yield from self._create_entry("create", path, mode,
                                              FileType.FILE)
        return inode

    def _create_entry(self, op: str, path: str, mode: Optional[int],
                      ftype: FileType) -> Generator[Event, Any, Inode]:
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note(op, "none", "sync", "none")
            dfs_op = self.dfs_client.mkdir if op == "mkdir" \
                else self.dfs_client.create
            inode = yield from dfs_op(path, **({} if mode is None
                                               else {"mode": mode}))
            return inode
        if target is not self.region:
            raise ReadOnlyRegion(
                f"{path} belongs to merged region {target.name};"
                " merged regions are read-only (§III.D.4)")
        yield from self._charge_client_cpu()
        yield from self._check_permission(op, path)
        if self.config.parent_check:
            yield from self._parent_check(path)
        if mode is None:
            mode = self.region.permissions.effective(path).mode
        record = new_record({
            "ino": self._provisional_ino(),
            "ftype": ftype.value,
            "mode": mode,
            "uid": self.uid,
            "gid": self.gid,
            "size": 0,
            "ctime": self.env.now,
            "mtime": self.env.now,
            "nlink": 1,
            "inline_data": b"" if ftype is FileType.FILE else None,
        }, committed=False)
        # Sub-operation 1: apply to the distributed cache (primary copy).
        while True:
            try:
                yield from self.region.cache.add(self.node, path, record)
                break
            except KeyExists:
                existing = yield from self.region.cache.gets(self.node, path)
                if existing is None:
                    continue  # deleted between add and gets: retry
                old, token = existing
                if not old.get("deleted"):
                    raise FileExists(path)
                # Recreate over a pending-removal entry: CAS it over.
                try:
                    yield from self.region.cache.cas(self.node, path, record,
                                                     token)
                    break
                except CasMismatch:
                    continue
        # Sub-operation 2: queue the asynchronous, independent commit.
        yield from self._publish(op, path, mode, gen_ino=record["ino"])
        if ftype is FileType.DIRECTORY:
            self._parent_memo.add(path)
        self._note(op, "put", "async", "indep")
        return Inode.from_record(record)

    @_traced
    def rm(self, path: str) -> Generator[Event, Any, None]:
        """Remove a file (Table I: update & delete / async / independent)."""
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("rm", "none", "sync", "none")
            yield from self.dfs_client.unlink(path)
            return
        if target is not self.region:
            raise ReadOnlyRegion(f"{path} is read-only (merged region)")
        yield from self._charge_client_cpu()
        yield from self._check_permission("rm", path)

        state = {"missing": False, "was_dir": False, "already_deleted": False}

        def mark_deleted(record):
            if record.get("deleted"):
                state["already_deleted"] = True
                return None
            if record["ftype"] == FileType.DIRECTORY.value:
                state["was_dir"] = True
                return None
            record["deleted"] = True
            record["mtime"] = self.env.now
            return record

        updated = yield from self.region.cache.update(self.node, path,
                                                      mark_deleted)
        if state["was_dir"]:
            raise IsADirectory(path)
        if state["already_deleted"]:
            raise FileNotFound(path)
        if updated is None:
            # Cache miss: the file may exist only on the DFS.  Load and
            # mark in one step.
            self.cache_misses += 1
            inode = yield from self.dfs_client.getattr(path)  # may raise
            if inode.is_dir:
                raise IsADirectory(path)
            record = new_record(inode.to_record(), committed=True,
                                deleted=True)
            yield from self._cache_fill(path, record)
            gen_ino = record["ino"]
        else:
            self.cache_hits += 1
            gen_ino = updated["ino"]
        yield from self._publish("rm", path, 0, gen_ino=gen_ino)
        self._note("rm", "update+delete", "async", "indep")

    unlink = rm

    # -------------------------------------------------------- read operations
    @_traced
    def getattr(self, path: str) -> Generator[Event, Any, Inode]:
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("getattr", "none", "sync", "none")
            inode = yield from self.dfs_client.getattr(path)
            return inode
        yield from self._charge_client_cpu()
        yield from self._check_permission("getattr", path, region=target)
        record = yield from target.cache.get(self.node, path)
        if record is not None:
            self.cache_hits += 1
            if record.get("deleted"):
                raise FileNotFound(path)
            self._observe_read("shared", "getattr", path, record,
                               region=target)
            self._note("getattr", "get", "none", "none")
            return Inode.from_record(record)
        self.cache_misses += 1
        # Miss: synchronously load from the DFS into the cache (Table I:
        # "sync (miss)", commit "indep. (miss)").
        inode = yield from self.dfs_client.getattr(path)  # may raise ENOENT
        self._observe_read("mds", "getattr", path, region=target)
        if target is self.region:
            record = new_record(inode.to_record(), committed=True)
            yield from self._cache_fill(path, record)
        self._note("getattr", "get", "sync(miss)", "indep(miss)")
        return inode

    stat = getattr

    def exists(self, path: str) -> Generator[Event, Any, bool]:
        try:
            yield from self.getattr(path)
            return True
        except FileNotFound:
            return False

    @_traced
    def readdir(self, path: str) -> Generator[Event, Any, List[str]]:
        """List a directory (Table I: no cache op, sync, barrier).

        Pacon deliberately does *not* assemble listings from the cache
        (that would be a full table scan over the shards); it barriers so
        every queued operation is visible on the DFS, then asks the DFS.
        """
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("readdir", "none", "sync", "none")
            names = yield from self.dfs_client.readdir(path)
            return names
        yield from self._charge_client_cpu()
        yield from self._check_permission("readdir", path, region=target)
        epoch, done = target.trigger_barrier()
        barrier_ctx = self._stage_start("barrier", f"epoch {epoch}")
        yield done
        self._stage_end(barrier_ctx)
        names = yield from self.dfs_client.readdir(path)
        self._note("readdir", "none", "sync", "barrier")
        return names

    # --------------------------------------------------- dependent operations
    @_traced
    def rmdir(self, path: str) -> Generator[Event, Any, int]:
        """Remove a directory tree (Table I: delete / sync / barrier)."""
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("rmdir", "none", "sync", "none")
            removed = yield from self.dfs_client.rmdir(path, recursive=True)
            return removed
        if target is not self.region:
            raise ReadOnlyRegion(f"{path} is read-only (merged region)")
        if path == self.region.workspace:
            raise PermissionDenied(path, "cannot remove the region root")
        yield from self._charge_client_cpu()
        yield from self._check_permission("rmdir", path)
        # Barrier: every operation that happened before this rmdir must be
        # on the DFS before the removal runs (§III.E dependent type).
        epoch, done = self.region.trigger_barrier()
        barrier_ctx = self._stage_start("barrier", f"epoch {epoch}")
        yield done
        self._stage_end(barrier_ctx)
        removed = yield from self.dfs_client.rmdir(path, recursive=True)
        self.region.note_removed_subtree(path)
        self._parent_memo = {p for p in self._parent_memo
                             if not (p == path or p.startswith(path + "/"))}
        # Clean related metadata from the distributed cache (§III.D.1).
        yield from self.region.cache.delete_subtree(self.node, path)
        self._note("rmdir", "delete", "sync", "barrier")
        return removed

    # ------------------------------------------------- extension operations
    @_traced
    def rename(self, src: str, dst: str) -> Generator[Event, Any, None]:
        """Atomic rename (extension beyond Table I).

        Rename is a *dependent* operation — its correctness depends on
        every earlier creation under ``src`` having reached the DFS — so
        it follows the barrier discipline like rmdir: barrier, rename on
        the DFS synchronously, then refresh the cache (old-path records
        dropped; they reload lazily from the DFS under the new path).
        """
        src = normalize_path(src)
        dst = normalize_path(dst)
        src_target = self._route(src)
        dst_target = self._route(dst)
        if src_target is None and dst_target is None:
            self.redirects += 1
            self._note("rename", "none", "sync", "none")
            yield from self.dfs_client.rename(src, dst)
            return
        if src_target is not self.region or dst_target is not self.region:
            raise ReadOnlyRegion(
                "rename must stay inside the caller's own region"
                f" ({src} -> {dst})")
        yield from self._charge_client_cpu()
        yield from self._check_permission("rm", src)      # parent write
        yield from self._check_permission("create", dst)  # parent write
        epoch, done = self.region.trigger_barrier()
        barrier_ctx = self._stage_start("barrier", f"epoch {epoch}")
        yield done
        self._stage_end(barrier_ctx)
        yield from self.dfs_client.rename(src, dst)
        # Drop stale cache state for both names; reads repopulate lazily.
        yield from self.region.cache.delete_subtree(self.node, src)
        yield from self.region.cache.delete(self.node, dst)
        self._parent_memo = {p for p in self._parent_memo
                             if not (p == src or p.startswith(src + "/"))}
        self._note("rename", "delete", "sync", "barrier")

    @_traced
    def chmod(self, path: str, mode: int) -> Generator[Event, Any, None]:
        """Change permissions (extension beyond Table I).

        Under batch permission management a per-entry mode change means
        the entry joins the region's *special permission list* (§III.C);
        the cached record and, synchronously, the DFS backup copy are
        updated as well so hierarchical checks outside the region agree.
        """
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("chmod", "none", "sync", "none")
            yield from self.dfs_client.setattr(path, mode=mode)
            return
        if target is not self.region:
            raise ReadOnlyRegion(f"{path} is read-only (merged region)")
        yield from self._charge_client_cpu()
        yield from self._check_permission("setattr", path)

        state = {"deleted": False, "committed": False}

        def apply(record):
            if record.get("deleted"):
                # Pending removal: the file is going away; chmod must fail
                # like it would on a removed file, not fall through to the
                # miss path and resurrect the old inode from the DFS.
                state["deleted"] = True
                return None
            state["committed"] = record.get("committed", False)
            record["mode"] = mode
            record["mtime"] = self.env.now
            return record

        updated = yield from self.region.cache.update(self.node, path,
                                                      apply)
        if state["deleted"]:
            raise FileNotFound(path)
        if updated is None:
            # Not cached — or the record vanished mid-update (a concurrent
            # rm commit or rmdir cleanup won the race).  Either way the
            # DFS copy is authoritative: it must exist there to be
            # chmod-able (getattr raises FileNotFound otherwise), and the
            # backup-copy update below must not be skipped.
            inode = yield from self.dfs_client.getattr(path)  # may raise
            record = new_record(inode.to_record(), committed=True)
            record["mode"] = mode
            yield from self._cache_fill(path, record)
            state["committed"] = True
        from repro.core.permissions import PermissionSpec
        self.region.permissions.add_special(
            path, PermissionSpec(mode=mode, uid=self.uid, gid=self.gid))
        if state["committed"]:
            yield from self.dfs_client.setattr(path, mode=mode)
        self._note("chmod", "cas-update", "sync", "none")

    # ------------------------------------------------------------- file data
    @_traced
    def write(self, path: str, offset: int, data: Optional[bytes] = None,
              size: Optional[int] = None) -> Generator[Event, Any, int]:
        """Write file data: inline in the cache while small, DFS once large.

        Pass real ``data`` bytes (stored inline, retrievable with
        :meth:`read`) or a synthetic ``size`` for benchmark workloads.
        """
        if (data is None) == (size is None):
            raise ValueError("pass exactly one of data= or size=")
        nbytes = len(data) if data is not None else int(size)
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("write", "none", "sync", "none")
            n = yield from self.dfs_client.write(path, offset, nbytes)
            return n
        if target is not self.region:
            raise ReadOnlyRegion(f"{path} is read-only (merged region)")
        yield from self._charge_client_cpu()
        yield from self._check_permission("write", path)

        got = yield from self.region.cache.gets(self.node, path)
        if got is None:
            # Not cached: a DFS-resident (large) file — pure redirect.
            self.cache_misses += 1
            n = yield from self.dfs_client.write(path, offset, nbytes)
            self._note("write", "none", "sync", "none")
            return n
        self.cache_hits += 1
        record, _token = got
        if record.get("deleted"):
            raise FileNotFound(path)
        if record["ftype"] == FileType.DIRECTORY.value:
            raise IsADirectory(path)
        new_size = max(record["size"], offset + nbytes)

        if record.get("large"):
            yield from self.dfs_client.write(path, offset, nbytes)
            if new_size > record["size"]:
                yield from self.region.cache.update(
                    self.node, path, lambda r: {**r, "size": max(r["size"],
                                                                 new_size)})
            self._note("write", "update", "sync", "none")
            return nbytes

        if new_size <= self.config.small_file_threshold:
            # Small file: data lives inline with the metadata (§III.D.2);
            # concurrent updates resolve through the CAS loop.
            def apply(rec):
                buf = bytearray(rec.get("inline_data") or b"")
                if len(buf) < offset + nbytes:
                    buf.extend(b"\x00" * (offset + nbytes - len(buf)))
                chunk = data if data is not None else b"\x00" * nbytes
                buf[offset:offset + nbytes] = chunk
                rec["inline_data"] = bytes(buf)
                rec["size"] = len(buf)
                rec["mtime"] = self.env.now
                return rec

            yield from self.region.cache.update(self.node, path, apply)
            self._note("write", "cas-update", "async", "indep")
            return nbytes

        # Crossing the threshold: materialize on the DFS and stop inlining.
        yield from self._convert_to_large(path, record, offset, nbytes,
                                          new_size)
        self._note("write", "update", "sync", "none")
        return nbytes

    def _convert_to_large(self, path: str, record: Dict, offset: int,
                          nbytes: int,
                          new_size: int) -> Generator[Event, Any, None]:
        """Small→large transition: ensure DFS file, flush inline, redirect."""
        if not record.get("committed"):
            # The asynchronous create may not have landed; create directly
            # (the commit process resolves the EEXIST via the committed
            # flag we set below).
            try:
                yield from self.dfs_client.create(path, mode=record["mode"])
            except FileExists:
                pass
        inline_size = record["size"]
        if inline_size > 0:
            yield from self.dfs_client.write(path, 0, inline_size)
        yield from self.dfs_client.write(path, offset, nbytes)

        def finalize(rec):
            rec["committed"] = True
            rec["large"] = True
            rec["inline_data"] = None
            rec["shadow"] = False
            rec["size"] = max(rec["size"], new_size)
            rec["mtime"] = self.env.now
            return rec

        yield from self.region.cache.update(self.node, path, finalize)

    @_traced
    def read(self, path: str, offset: int,
             size: int) -> Generator[Event, Any, bytes]:
        """Read file data; returns bytes (zero-filled for synthetic data)."""
        path = normalize_path(path)
        target = self._route(path)
        if target is None:
            self.redirects += 1
            self._note("read", "none", "sync", "none")
            n = yield from self.dfs_client.read(path, offset, size)
            return b"\x00" * n
        yield from self._charge_client_cpu()
        yield from self._check_permission("read", path, region=target)
        record = yield from target.cache.get(self.node, path)
        if record is None:
            self.cache_misses += 1
            n = yield from self.dfs_client.read(path, offset, size)
            self._observe_read("mds", "read", path, region=target)
            self._note("read", "none", "sync", "none")
            return b"\x00" * n
        self.cache_hits += 1
        if record.get("deleted"):
            raise FileNotFound(path)
        if record["ftype"] == FileType.DIRECTORY.value:
            raise IsADirectory(path)
        self._observe_read("shared", "read", path, record, region=target)
        if record.get("large"):
            n = yield from self.dfs_client.read(path, offset, size)
            self._note("read", "get", "sync", "none")
            return b"\x00" * n
        # Small file: metadata + data in the single KV get above (§III.D.2).
        data = record.get("inline_data") or b""
        self._note("read", "get", "none", "none")
        return data[offset:offset + size]

    @_traced
    def fsync(self, path: str) -> Generator[Event, Any, None]:
        """Force inline data to the DFS (§III.D.2).

        If the file's create has not committed yet, the data is written to
        a *cache file* with direct I/O and written back to its original
        position after the create commits (the commit process does the
        write-back).
        """
        path = normalize_path(path)
        target = self._route(path)
        if target is None or target is not self.region:
            self._note("fsync", "none", "sync", "none")
            return  # DFS writes in this model are already durable
        yield from self._charge_client_cpu()
        got = yield from self.region.cache.gets(self.node, path)
        if got is None:
            return  # large/DFS-resident: nothing inline to flush
        record, _token = got
        if record.get("deleted"):
            raise FileNotFound(path)
        if record.get("large") or record["size"] == 0:
            return
        if record.get("committed"):
            yield from self.dfs_client.write(path, 0, record["size"])
            self._note("fsync", "get", "sync", "none")
            return
        # Not on the DFS yet: park the bytes in a per-region cache file.
        # The name must come from a process-invariant hash: the built-in
        # hash() is salted per process, which would give every run (and
        # every client process) different shadow paths and break the
        # same-seed-identical-trace guarantee.
        shadow_path = (f"{self.region.dfs_shadow_dir}/"
                       f"{self.client_id}-{stable_hash(path) % (1 << 30)}")
        try:
            yield from self.dfs_client.create(shadow_path)
        except FileExists:
            pass
        yield from self.dfs_client.write(shadow_path, 0, record["size"])
        # Race with the commit process: if the create commits while we were
        # writing the cache file, write through to the real path instead of
        # setting a shadow flag nobody will ever write back.
        state = {"committed_meanwhile": False}

        def set_shadow(rec):
            if rec.get("committed"):
                state["committed_meanwhile"] = True
                return None
            rec["shadow"] = True
            return rec

        updated = yield from self.region.cache.update(self.node, path,
                                                      set_shadow)
        if updated is None and state["committed_meanwhile"]:
            yield from self.dfs_client.write(path, 0, record["size"])
        self._note("fsync", "cas-update", "sync", "none")


class AggregateClient(PaconClient):
    """One DES process standing in for ``multiplier`` identical clients.

    Hierarchical aggregation for very large client-count sweeps: instead
    of one simulated process per application rank, one process runs the
    op stream once and each completed op is *accounted* ``multiplier``
    times (``ops`` counts logical operations).  This trades per-rank
    fidelity for a 10–100× larger logical client population at the same
    event-heap footprint.

    The model is a documented approximation: it assumes the aggregated
    ranks are statistically identical and that per-op service times are
    load-independent over the aggregated population — physical contention
    (cache shards, commit queues, node CPUs) is exercised only by the
    physical processes, so saturation effects beyond the physical
    population are *not* reproduced.  Never used by the paper figures;
    deployments hand it out only when
    ``config.aggregate_multiplier > 1`` (see the fig11 aggregate
    scenario).
    """

    def __init__(self, region: ConsistentRegion, node, multiplier: int,
                 trace: bool = False):
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        super().__init__(region, node, trace=trace)
        self.multiplier = multiplier

    def _note(self, op: str, cache_op: str, comm: str, commit: str) -> None:
        super()._note(op, cache_op, comm, commit)
        # One physical op stands for ``multiplier`` logical ops.
        self.ops += self.multiplier - 1
