"""Pacon configuration (the paper's initialization parameters, §III.B).

An application configures Pacon with its workspace path and the nodes it
runs on; everything else has defaults matching the prototype in the paper
(4 KB small-file threshold, parent checking on, Linux-like default
permissions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.permissions import PermissionSpec

__all__ = ["PaconConfig"]


@dataclass
class PaconConfig:
    """Per-region configuration."""

    #: Root directory of the application's workspace (the consistent region).
    workspace: str = "/workspace"

    #: System user the application's clients run as (§II.A: one user per app).
    uid: int = 1000
    gid: int = 1000

    #: Files up to this many bytes (metadata + data) are stored inline with
    #: their metadata in the distributed cache (§III.D.2).
    small_file_threshold: int = 4 * 1024

    #: Check that the parent directory exists before create/mkdir.  The
    #: paper allows applications that guarantee correct creation order to
    #: turn this off (§III.C, last paragraph).
    parent_check: bool = True

    #: Predefined permission information for the workspace (§III.C).  When
    #: None, Pacon applies Linux-like defaults: everything in the workspace
    #: readable/writable/executable by the creating user.
    permissions: Optional[PermissionSpec] = None

    #: Distributed-cache capacity per node, in bytes (§III.F sizes a 500 MB
    #: cache for >10M entries).
    cache_capacity_bytes: int = 512 * 1024 * 1024

    #: Eviction trips when a shard's usage crosses the high watermark and
    #: frees entries until usage falls to the target (§III.F).
    eviction_high_watermark: float = 0.90
    eviction_target: float = 0.70

    #: Delay between commit retries when an operation does not yet satisfy
    #: the namespace conventions (parent not committed yet).
    commit_retry_delay: float = 50e-6

    #: Messages a commit process drains per wakeup.  1 reproduces the
    #: original op-at-a-time subscriber; larger values amortize the queue
    #: pop and let same-directory operations share one MDS round trip
    #: (``DFSClient.commit_batch``).  Convergence (§III.E) is unaffected:
    #: barrier messages cut batches and the discard rule stays per-op.
    commit_batch_size: int = 16

    #: Cancel a create/mkdir and a same-generation rm that meet inside one
    #: drained batch — neither ever reaches the MDS.
    commit_coalesce: bool = True

    #: Optional bound on each node's commit-queue depth.  When set,
    #: ``publish`` stalls the client (a visible, metered delay) until the
    #: commit process drains below the bound, instead of buffering
    #: unboundedly.  None keeps the paper's unbounded ZeroMQ behaviour.
    commit_queue_capacity: Optional[int] = None

    #: Optional periodic checkpoint interval in simulated seconds (§III.G;
    #: checkpointing is optional and application-driven).
    checkpoint_interval: Optional[float] = None

    #: Clients per node (used when a deployment auto-creates clients).
    clients_per_node: int = 20

    #: Hierarchical aggregation: each client object stands in for this
    #: many statistically identical application processes.  1 (default)
    #: gives one DES process per client — the faithful model every paper
    #: figure uses.  Larger values make deployments hand out
    #: :class:`~repro.core.client.AggregateClient` instances whose ops
    #: are counted ``aggregate_multiplier`` times, extending client-count
    #: sweeps 10–100× at the same event-heap footprint (opt-in; used only
    #: by the aggregate scalability scenario).
    aggregate_multiplier: int = 1

    def __post_init__(self) -> None:
        if self.small_file_threshold < 0:
            raise ValueError("small_file_threshold must be >= 0")
        if not (0.0 < self.eviction_target
                < self.eviction_high_watermark <= 1.0):
            raise ValueError(
                "need 0 < eviction_target < eviction_high_watermark <= 1")
        if self.cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive")
        if self.commit_batch_size < 1:
            raise ValueError("commit_batch_size must be >= 1")
        if self.commit_queue_capacity is not None \
                and self.commit_queue_capacity < 1:
            raise ValueError("commit_queue_capacity must be >= 1 or None")
        if self.aggregate_multiplier < 1:
            raise ValueError("aggregate_multiplier must be >= 1")
