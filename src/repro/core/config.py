"""Pacon configuration (the paper's initialization parameters, §III.B).

An application configures Pacon with its workspace path and the nodes it
runs on; everything else has defaults matching the prototype in the paper
(4 KB small-file threshold, parent checking on, Linux-like default
permissions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.permissions import PermissionSpec

__all__ = ["PaconConfig"]


@dataclass
class PaconConfig:
    """Per-region configuration."""

    #: Root directory of the application's workspace (the consistent region).
    workspace: str = "/workspace"

    #: System user the application's clients run as (§II.A: one user per app).
    uid: int = 1000
    gid: int = 1000

    #: Files up to this many bytes (metadata + data) are stored inline with
    #: their metadata in the distributed cache (§III.D.2).
    small_file_threshold: int = 4 * 1024

    #: Check that the parent directory exists before create/mkdir.  The
    #: paper allows applications that guarantee correct creation order to
    #: turn this off (§III.C, last paragraph).
    parent_check: bool = True

    #: Predefined permission information for the workspace (§III.C).  When
    #: None, Pacon applies Linux-like defaults: everything in the workspace
    #: readable/writable/executable by the creating user.
    permissions: Optional[PermissionSpec] = None

    #: Distributed-cache capacity per node, in bytes (§III.F sizes a 500 MB
    #: cache for >10M entries).
    cache_capacity_bytes: int = 512 * 1024 * 1024

    #: Eviction trips when a shard's usage crosses the high watermark and
    #: frees entries until usage falls to the target (§III.F).
    eviction_high_watermark: float = 0.90
    eviction_target: float = 0.70

    #: Delay between commit retries when an operation does not yet satisfy
    #: the namespace conventions (parent not committed yet).
    commit_retry_delay: float = 50e-6

    #: Messages a commit process drains per wakeup.  1 reproduces the
    #: original op-at-a-time subscriber; larger values amortize the queue
    #: pop and let same-directory operations share one MDS round trip
    #: (``DFSClient.commit_batch``).  Convergence (§III.E) is unaffected:
    #: barrier messages cut batches and the discard rule stays per-op.
    commit_batch_size: int = 16

    #: Cancel a create/mkdir and a same-generation rm that meet inside one
    #: drained batch — neither ever reaches the MDS.
    commit_coalesce: bool = True

    #: Optional bound on each node's commit-queue depth.  When set,
    #: ``publish`` stalls the client (a visible, metered delay) until the
    #: commit process drains below the bound, instead of buffering
    #: unboundedly.  None keeps the paper's unbounded ZeroMQ behaviour.
    commit_queue_capacity: Optional[int] = None

    #: Optional periodic checkpoint interval in simulated seconds (§III.G;
    #: checkpointing is optional and application-driven).
    checkpoint_interval: Optional[float] = None

    #: Clients per node (used when a deployment auto-creates clients).
    clients_per_node: int = 20

    #: Hierarchical aggregation: each client object stands in for this
    #: many statistically identical application processes.  1 (default)
    #: gives one DES process per client — the faithful model every paper
    #: figure uses.  Larger values make deployments hand out
    #: :class:`~repro.core.client.AggregateClient` instances whose ops
    #: are counted ``aggregate_multiplier`` times, extending client-count
    #: sweeps 10–100× at the same event-heap footprint (opt-in; used only
    #: by the aggregate scalability scenario).
    aggregate_multiplier: int = 1

    # -- autoscaler (repro.core.autoscale) --------------------------------
    #: Pool bounds for the elastic controller: it never shrinks the
    #: region below ``autoscale_min_nodes`` or grows beyond
    #: ``autoscale_max_nodes``.
    autoscale_min_nodes: int = 1
    autoscale_max_nodes: int = 16

    #: Controller tick interval (simulated seconds) and the minimum gap
    #: between two scaling actions.  The cooldown is what keeps one burst
    #: from triggering a grow/retire/grow oscillation while migrations
    #: are still settling.
    autoscale_interval: float = 1e-3
    autoscale_cooldown: float = 3e-3

    #: Utilization watermarks over the hottest node's busiest resource
    #: (CPU, NIC, or cache-shard worker pool), windowed per tick.  Scale
    #: up above high, down below low — the gap is the hysteresis band.
    autoscale_util_high: float = 0.75
    autoscale_util_low: float = 0.20

    #: Commit backlog watermarks, in queued messages per region node.
    autoscale_backlog_high: float = 32.0
    autoscale_backlog_low: float = 2.0

    #: Consecutive over/under-watermark ticks required before acting —
    #: the temporal half of the hysteresis (shrinking demands a longer
    #: streak than growing, so transient lulls don't flap the pool).
    autoscale_up_consecutive: int = 2
    autoscale_down_consecutive: int = 4

    #: Optional SLO hook: when set, the controller also evaluates a
    #: burn-rate objective over ``consistency.pending_age`` (threshold =
    #: this value, budget = ``autoscale_burn_budget``) and forces a
    #: scale-up when the error budget is burning on every window —
    #: regardless of the utilization streak, though still subject to
    #: cooldown and the max bound.  None disables the SLO trigger.
    autoscale_burn_threshold: Optional[float] = None
    autoscale_burn_budget: float = 0.25

    def __post_init__(self) -> None:
        if self.small_file_threshold < 0:
            raise ValueError("small_file_threshold must be >= 0")
        if not (0.0 < self.eviction_target
                < self.eviction_high_watermark <= 1.0):
            raise ValueError(
                "need 0 < eviction_target < eviction_high_watermark <= 1")
        if self.cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive")
        if self.commit_batch_size < 1:
            raise ValueError("commit_batch_size must be >= 1")
        if self.commit_queue_capacity is not None \
                and self.commit_queue_capacity < 1:
            raise ValueError("commit_queue_capacity must be >= 1 or None")
        if self.aggregate_multiplier < 1:
            raise ValueError("aggregate_multiplier must be >= 1")
        if self.autoscale_min_nodes < 1:
            raise ValueError("autoscale_min_nodes must be >= 1")
        if self.autoscale_max_nodes < self.autoscale_min_nodes:
            raise ValueError(
                "autoscale_max_nodes must be >= autoscale_min_nodes")
        if self.autoscale_interval <= 0 or self.autoscale_cooldown < 0:
            raise ValueError("autoscale_interval must be > 0 and "
                             "autoscale_cooldown >= 0")
        if not (0.0 <= self.autoscale_util_low
                < self.autoscale_util_high <= 1.0):
            raise ValueError(
                "need 0 <= autoscale_util_low < autoscale_util_high <= 1")
        if not (0.0 <= self.autoscale_backlog_low
                < self.autoscale_backlog_high):
            raise ValueError("need 0 <= autoscale_backlog_low "
                             "< autoscale_backlog_high")
        if self.autoscale_up_consecutive < 1 \
                or self.autoscale_down_consecutive < 1:
            raise ValueError("autoscale_*_consecutive must be >= 1")
        if self.autoscale_burn_threshold is not None \
                and self.autoscale_burn_threshold <= 0:
            raise ValueError(
                "autoscale_burn_threshold must be > 0 or None")
        if self.autoscale_burn_budget <= 0:
            raise ValueError("autoscale_burn_budget must be > 0")
