"""The distributed in-memory metadata cache (primary copy, §III.A).

One :class:`CacheShard` runs on every node of a consistent region (the
Memcached instance of the prototype); a :class:`DistributedCache` spreads
full-path keys over the shards with a consistent-hash ring and gives
clients generator methods for the Memcached verbs Pacon uses — including
``update``, the CAS retry loop of §III.D.3.

Cached records are plain dicts: the inode fields
(:meth:`repro.dfs.inode.Inode.to_record`) plus Pacon bookkeeping flags:

``committed``
    backup copy (DFS) is up to date for the creation of this entry,
``deleted``
    removed in the region but the removal has not committed yet (the
    paper: "removed files are marked and their cached metadata are
    deleted after the operations are committed"),
``large``
    file data has outgrown the inline threshold and lives on the DFS,
``shadow``
    inline data was fsynced to a cache file on the DFS before the real
    file existed there (§III.D.2) and must be written back after create
    commits.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.kvstore.dht import ConsistentHashRing
from repro.kvstore.memkv import CasMismatch, MemKV
from repro.sim.core import Event
from repro.sim.network import Cluster, Node, Service

__all__ = ["CacheShard", "DistributedCache", "new_record"]


def new_record(inode_record: Dict[str, Any], committed: bool = False,
               **flags: Any) -> Dict[str, Any]:
    """Build a cache record from inode fields plus Pacon flags."""
    record = dict(inode_record)
    record.setdefault("inline_data", None)
    record["committed"] = committed
    record["deleted"] = flags.pop("deleted", False)
    record["large"] = flags.pop("large", False)
    record["shadow"] = flags.pop("shadow", False)
    if flags:
        raise TypeError(f"unknown record flags: {sorted(flags)}")
    return record


class CacheShard(Service):
    """Memcached-equivalent shard as an RPC service on one region node."""

    # Attribution buckets: KV service time vs. shard worker-pool wait.
    span_queue_category = "queue_wait"
    span_service_category = "cache"

    def __init__(self, cluster: Cluster, node: Node, capacity_bytes: int,
                 name: str = "cache"):
        super().__init__(cluster, node, name,
                         workers=cluster.costs.memkv_workers)
        self.kv = MemKV(capacity_bytes=capacity_bytes, name=name)

    def _charge(self) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.costs.memkv_op)

    def handle_get(self, key: str) -> Generator[Event, Any, Optional[Dict]]:
        yield from self._charge()
        return self.kv.get(key)

    def handle_gets(self, key: str) -> Generator[Event, Any,
                                                 Optional[Tuple[Dict, int]]]:
        yield from self._charge()
        return self.kv.gets(key)

    def handle_set(self, key: str, value: Dict) -> Generator[Event, Any, int]:
        yield from self._charge()
        return self.kv.set(key, value)

    def handle_add(self, key: str, value: Dict) -> Generator[Event, Any, int]:
        yield from self._charge()
        return self.kv.add(key, value)

    def handle_cas(self, key: str, value: Dict,
                   token: int) -> Generator[Event, Any, int]:
        yield from self._charge()
        return self.kv.cas(key, value, token)

    def handle_delete(self, key: str) -> Generator[Event, Any, bool]:
        yield from self._charge()
        return self.kv.delete(key)

    def handle_delete_if_ino(self, key: str,
                             ino: int) -> Generator[Event, Any, bool]:
        """Atomic conditional delete: only the matching generation dies."""
        yield from self._charge()
        record = self.kv.get(key)
        if record is not None and record.get("ino") == ino:
            return self.kv.delete(key)
        return False

    def handle_scan_prefix(self, prefix: str) -> Generator[
            Event, Any, List[Tuple[str, Dict]]]:
        """Full-table scan — cold path only (rmdir cleanup, rebuild)."""
        yield self.env.timeout(self.costs.memkv_op +
                               self.costs.memkv_scan_per_item * len(self.kv))
        return list(self.kv.scan_prefix(prefix))

    def handle_delete_prefix(self, prefix: str) -> Generator[Event, Any, int]:
        yield self.env.timeout(self.costs.memkv_op +
                               self.costs.memkv_scan_per_item * len(self.kv))
        doomed = [k for k, _ in self.kv.scan_prefix(prefix)]
        for k in doomed:
            self.kv.delete(k)
        return len(doomed)


class DistributedCache:
    """Consistent-hash view over the region's cache shards."""

    def __init__(self, shards: List[CacheShard]):
        if not shards:
            raise ValueError("need at least one cache shard")
        self.shards = list(shards)
        self.ring: ConsistentHashRing[CacheShard] = ConsistentHashRing()
        for shard in self.shards:
            self.ring.add(shard)
        self.cas_retries = 0

    def shard_for(self, path: str) -> CacheShard:
        return self.ring.lookup(path)

    # -- basic verbs (generators; run inside a DES process) -------------------
    def get(self, src: Node, path: str) -> Generator[Event, Any,
                                                     Optional[Dict]]:
        result = yield from self.shard_for(path).request(src, "get", path)
        return result

    def gets(self, src: Node, path: str) -> Generator[
            Event, Any, Optional[Tuple[Dict, int]]]:
        result = yield from self.shard_for(path).request(src, "gets", path)
        return result

    def set(self, src: Node, path: str,
            record: Dict) -> Generator[Event, Any, int]:
        token = yield from self.shard_for(path).request(src, "set", path,
                                                        record)
        return token

    def add(self, src: Node, path: str,
            record: Dict) -> Generator[Event, Any, int]:
        token = yield from self.shard_for(path).request(src, "add", path,
                                                        record)
        return token

    def cas(self, src: Node, path: str, record: Dict,
            token: int) -> Generator[Event, Any, int]:
        new_token = yield from self.shard_for(path).request(
            src, "cas", path, record, token)
        return new_token

    def delete(self, src: Node, path: str) -> Generator[Event, Any, bool]:
        existed = yield from self.shard_for(path).request(src, "delete", path)
        return existed

    def delete_if_ino(self, src: Node, path: str,
                      ino: int) -> Generator[Event, Any, bool]:
        existed = yield from self.shard_for(path).request(
            src, "delete_if_ino", path, ino)
        return existed

    # -- compound operations ------------------------------------------------------
    def update(self, src: Node, path: str,
               fn: Callable[[Dict], Optional[Dict]],
               ) -> Generator[Event, Any, Optional[Dict]]:
        """CAS retry loop (§III.D.3): re-read and re-apply until it sticks.

        ``fn`` receives a copy of the current record and returns the new
        record, or None to abort.  Returns the stored record, or None if
        the key vanished or ``fn`` aborted.
        """
        while True:
            got = yield from self.gets(src, path)
            if got is None:
                return None
            record, token = got
            new_record_value = fn(dict(record))
            if new_record_value is None:
                return None
            try:
                yield from self.cas(src, path, new_record_value, token)
                return new_record_value
            except CasMismatch:
                self.cas_retries += 1
                continue

    def delete_subtree(self, src: Node,
                       prefix: str) -> Generator[Event, Any, int]:
        """Remove every cached entry at or under ``prefix`` on all shards."""
        total = 0
        for shard in self.shards:
            n = yield from shard.request(src, "delete_prefix",
                                         prefix.rstrip("/") + "/")
            total += n
            existed = yield from shard.request(src, "delete", prefix)
            total += 1 if existed else 0
        return total

    def scan_subtree(self, src: Node, prefix: str) -> Generator[
            Event, Any, List[Tuple[str, Dict]]]:
        """Collect all cached entries under ``prefix`` (cold path)."""
        out: List[Tuple[str, Dict]] = []
        for shard in self.shards:
            part = yield from shard.request(src, "scan_prefix",
                                            prefix.rstrip("/") + "/")
            out.extend(part)
        return sorted(out)

    # -- introspection ---------------------------------------------------------------
    def total_items(self) -> int:
        return sum(len(s.kv) for s in self.shards)

    def used_bytes(self) -> int:
        return sum(s.kv.used_bytes for s in self.shards)

    def hit_miss_counts(self) -> Tuple[int, int]:
        """(hits, misses) summed over all shards."""
        return (sum(s.kv.hits for s in self.shards),
                sum(s.kv.misses for s in self.shards))

    def hit_rate(self) -> float:
        hits = sum(s.kv.hits for s in self.shards)
        misses = sum(s.kv.misses for s in self.shards)
        total = hits + misses
        return hits / total if total else 0.0

    def peek(self, path: str) -> Optional[Dict]:
        """Zero-cost read for tests/assertions (not a simulated op).

        Bypasses the shard's hit/miss accounting so peeking in assertions
        does not perturb measured cache statistics.
        """
        item = self.shard_for(path).kv._items.get(path)
        return None if item is None else item.value
