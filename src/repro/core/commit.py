"""Metadata operation commit (§III.D.1, §III.E).

Every metadata update in Pacon is two sub-operations: apply to the
distributed cache (done by the client), then apply to the DFS — done here.
Each region node runs one :class:`CommitProcess` (the subscriber of the
paper's Fig. 5) that drains its node's commit queue and applies operations
through an ordinary DFS client.

Commit disciplines:

* **Independent commit** — create/mkdir/rm need no temporal order, only the
  namespace conventions, which the DFS itself enforces by rejecting
  violations.  A rejected operation (e.g. parent not created yet because
  its creation sits in another node's queue) is simply *resubmitted* until
  it succeeds.  The §III.E proof that any such interleaving converges to
  the same namespace is exercised by
  ``tests/properties/test_commit_equivalence.py``.
* **Barrier commit** — rmdir/readdir must see all earlier operations
  committed.  Clients stamp every operation with a barrier epoch; a
  dependent operation broadcasts one barrier message per client into every
  node's queue and bumps the epoch.  A commit process that has drained all
  its local epoch-``e`` work arrives at a region-wide barrier; when the
  last process arrives, epoch ``e`` is globally committed and the waiting
  client proceeds.

One special rule from the paper: creations inside a directory removed by a
committed rmdir are *discarded*, not retried (they can never satisfy the
namespace conventions again).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.dfs.errors import (
    FileExists,
    FileNotFound,
    NotADirectory,
)
from repro.dfs.namespace import parent_of
from repro.mq.queue import QueueClosed
from repro.sim.core import Event, cancel_wait
from repro.sim.network import NodeDownError

__all__ = ["OpMessage", "BarrierMessage", "CommitProcess", "CommitStalled"]

#: Operations committed independently (non-dependent type).
INDEPENDENT_OPS = ("create", "mkdir", "rm")


class CommitStalled(RuntimeError):
    """An operation exceeded the resubmission cap — indicates a logic bug,
    since under the namespace conventions every operation eventually
    becomes committable."""


@dataclass
class OpMessage:
    """One queued metadata mutation (paper: path + op info + timestamp)."""

    op: str                      # create | mkdir | rm
    path: str
    mode: int = 0o644
    uid: int = 1000
    gid: int = 1000
    timestamp: float = 0.0
    epoch: int = 0
    client_id: int = -1
    retries: int = 0
    #: Times this op was re-queued after a transient transport failure
    #: (MDS down mid-commit); distinct from ``retries`` which counts
    #: namespace-convention rejections.
    replays: int = 0
    #: Generation tag: the provisional ino of the cache record this
    #: operation belongs to.  A name can be created, removed, and
    #: recreated; post-commit cache bookkeeping must only touch its own
    #: generation, or a late rm commit would delete the *new* file's
    #: record (and a late create commit would mark it committed).
    gen_ino: int = -1
    #: Span-context ids carried across the queue (observability only).
    #: The client opens a ``commit_queue`` span at publish; the commit
    #: process closes it at commit/discard/coalesce and parents its own
    #: DFS/MDS spans under it.  -1 when tracing is off.
    op_id: int = -1
    span_id: int = -1
    #: Logical operations this message stands for (the publishing
    #: client's ``multiplier``); consistency metrics weight by it so
    #: aggregate and faithful runs agree at matched logical scale.
    weight: int = 1

    def __post_init__(self) -> None:
        if self.op not in INDEPENDENT_OPS:
            raise ValueError(f"only independent ops ride the queue, got"
                             f" {self.op!r}")


@dataclass
class BarrierMessage:
    """Barrier marker: 'everything this client did in `epoch` is queued'."""

    epoch: int
    node_id: int
    #: Publish instant.  Stamped like OpMessage.timestamp so a queue's
    #: head message always lower-bounds the age of its whole backlog
    #: (publish stamps are monotone) — the removed-subtree pruner keys
    #: off that bound.
    timestamp: float = 0.0


class CommitProcess:
    """Per-node subscriber that applies queued operations to the DFS."""

    MAX_RETRIES = 10_000

    def __init__(self, region, node, dfs_client):
        self.region = region
        self.node = node
        self.env = region.env
        self.costs = region.cluster.costs
        self.queue = region.queues.route(node.node_id)
        self.dfs_client = dfs_client
        # Join at the region's current epoch: a process added by elastic
        # growth (after quiesce) must not wait for barrier epochs that
        # completed before it existed.
        self.current_epoch = region.client_epoch
        self._barrier_counts: Dict[int, int] = {}
        self._pending: Deque[OpMessage] = deque()      # current-epoch retries
        self._future: Dict[int, List[Any]] = {}        # epoch -> held msgs
        # Batched draining (§III.E stays intact: barrier messages cut
        # batches, resubmission and the discard rule are per-op).
        self.batch_size = max(1, region.config.commit_batch_size)
        self.coalesce_enabled = region.config.commit_coalesce
        # stats
        self.committed = 0
        self.discarded = 0
        self.resubmissions = 0
        self.coalesced = 0
        self.barriers_passed = 0
        self.replays = 0
        self.aborts = 0
        self._process = None
        self._in_flight = 0
        #: In-flight ops whose commit accounting already ran (they are in
        #: post-commit bookkeeping, or awaiting their segment's bulk
        #: resolution).  ``abort`` must not count these as lost — they are
        #: on the DFS and in ``committed``.
        self._in_flight_committed = 0
        #: Oldest publish timestamp among ops drained but not yet resolved
        #: (the removed-subtree pruner must see them as outstanding).
        self._in_flight_oldest: Optional[float] = None
        #: Ledger shadow of drained-but-unresolved ops, maintained only
        #: while a hub is attached: on a crash, exactly these (plus
        #: ``_pending``/``_future``) are the published mutations that will
        #: never resolve, and the region's version-lag ledger must be
        #: reconciled for them or post-fault staleness never drains.
        self._in_flight_msgs: List[OpMessage] = []
        #: Set by failure injection; the interrupt that actually stops the
        #: loop is delivered on the next simulation step, so recovery code
        #: keys off this flag rather than the process's alive state.
        self.killed = False
        self.region.commit_processes.append(self)

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Spawn the commit loop as a DES process; returns the Process."""
        self._process = self.env.process(
            self.run(), label=f"commit:{self.region.name}:{self.node.name}")
        return self._process

    @property
    def idle(self) -> bool:
        """No queued, held, retrying, or in-flight work."""
        return (len(self.queue) == 0 and not self._pending
                and not any(self._future.values())
                and self._in_flight == 0)

    @property
    def alive(self) -> bool:
        """True while the commit loop's DES process is running."""
        return self._process is not None and self._process.is_alive

    @property
    def dead(self) -> bool:
        """Crashed and not (yet) restarted.

        A dead process will never drain its queue again — messages that
        land there after the crash (barrier broadcasts, racing publishes)
        sit until :func:`repro.core.failure.recover_node` restarts the
        loop.  Quiescing must skip such processes or it waits forever on
        work that recovery, not draining, is responsible for.  A loop
        that exited *cleanly* (queue closed and drained) is not dead —
        it is simply finished, and trivially idle.
        """
        if self.killed:
            return True
        return (self._process is not None and not self._process.is_alive
                and not self.queue.closed)

    def abort(self, reason: str = "abort") -> Dict[str, int]:
        """Drop all unresolved work and stop the loop; return loss counts.

        This is the crash path (§III.G): in-flight, retrying, and
        held-for-future-epoch operations are destroyed, the commit loop
        is interrupted, and the counts of what was lost are returned so
        failure injection can account for them exactly.  The loop's wait
        (queue get, barrier arrival, MDS worker slot, ...) is cancelled
        first so no waiter registration or granted-but-unconsumed
        resource slot leaks past the crash.
        """
        counts = {
            # An op interrupted *after* its commit accounting ran (mid
            # post-commit bookkeeping, or awaiting its segment's bulk
            # decrement) is on the DFS, not lost.
            "in_flight": max(0, self._in_flight - self._in_flight_committed),
            "pending": len(self._pending),
            "future": sum(len(v) for v in self._future.values()),
        }
        counts["total"] = sum(counts.values())
        self._resolve_lost_ledger()
        self._pending.clear()
        self._future.clear()
        self._barrier_counts.clear()
        self._in_flight = 0
        self._in_flight_committed = 0
        self._in_flight_oldest = None
        self.aborts += 1
        if self.region.hub.enabled:
            self.region.hub.count("commit.aborts")
        proc = self._process
        if proc is not None and proc.is_alive:
            self.killed = True
            cancel_wait(proc.waiting_on)
            proc.interrupt(reason)
        return counts

    def oldest_outstanding_timestamp(self) -> Optional[float]:
        """Oldest publish timestamp among this process's unresolved ops
        (retrying, held for a future epoch, or mid-commit); None if none."""
        oldest = self._in_flight_oldest
        for op in self._pending:
            if oldest is None or op.timestamp < oldest:
                oldest = op.timestamp
        for msgs in self._future.values():
            for msg in msgs:
                ts = getattr(msg, "timestamp", None)
                if ts is not None and (oldest is None or ts < oldest):
                    oldest = ts
        return oldest

    # -- version-lag ledger shadow (hub-gated) --------------------------------
    def _ledger_track(self, ops: List[OpMessage]) -> None:
        """Note drained ops as unresolved (only while a hub is attached)."""
        if self.region.hub.enabled:
            self._in_flight_msgs.extend(ops)

    def _ledger_untrack(self, op: OpMessage) -> None:
        if self._in_flight_msgs:
            try:
                self._in_flight_msgs.remove(op)
            except ValueError:
                pass

    def _resolve_ledger(self, op: OpMessage) -> None:
        """The op left the pipeline (committed/discarded/coalesced)."""
        self._ledger_untrack(op)
        if self.region.hub.enabled:
            self.region.note_op_resolved(op.path)

    def _resolve_lost_ledger(self) -> None:
        """Crash path: every unresolved op is lost — reconcile the ledger
        exactly once per op or post-fault version lag never drains."""
        if self.region.hub.enabled:
            for op in self._in_flight_msgs:
                self.region.note_op_resolved(op.path)
            for op in self._pending:
                self.region.note_op_resolved(op.path)
            for msgs in self._future.values():
                for msg in msgs:
                    if isinstance(msg, OpMessage):
                        self.region.note_op_resolved(msg.path)
        self._in_flight_msgs.clear()

    # -- main loop -----------------------------------------------------------
    def run(self) -> Generator[Event, Any, None]:
        """Commit loop; dies cleanly (dropping state) on node failure."""
        from repro.sim.core import Interrupt

        try:
            yield from self._loop()
        except Interrupt:
            # Node crash (§III.G): whatever was queued or in flight here is
            # lost; isolation means only this region is affected.  After an
            # abort() the lists below are already empty, so the ledger
            # reconciliation cannot double-resolve.
            self._resolve_lost_ledger()
            self._pending.clear()
            self._future.clear()
            self._barrier_counts.clear()
            self._in_flight = 0
            self._in_flight_committed = 0
            self._in_flight_oldest = None

    def _loop(self) -> Generator[Event, Any, None]:
        from repro.sim.core import Interrupt

        closing = False
        while True:
            # Backstop for a swallowed kill: if abort() flagged this loop
            # dead but its Interrupt got absorbed downstream (e.g. caught
            # mid-RPC and replaced by a network error), stop here rather
            # than run on as a zombie corrupting in-flight accounting.
            if self.killed:
                raise Interrupt("aborted")
            # Barrier: local epoch fully drained -> rendezvous region-wide.
            if (self._barrier_counts.get(self.current_epoch, 0)
                    >= self.region.expected_barrier_messages(
                        self.node.node_id)
                    and not self._pending):
                epoch = self.current_epoch
                wait_started = self.env.now
                gen = yield self.region.commit_barrier.arrive()
                # All commit processes have drained this epoch.
                self.region.signal_barrier_complete(gen)
                self._barrier_counts.pop(epoch, None)
                self.current_epoch += 1
                self.barriers_passed += 1
                self.region.tracer.emit(self.env.now,
                                        f"commit:{self.node.name}",
                                        "barrier", f"epoch {epoch} done")
                hub = self.region.hub
                if hub.enabled:
                    # Stall between local drain and region-wide release.
                    hub.observe("commit.barrier_wait",
                                self.env.now - wait_started)
                    hub.count("commit.barriers_passed")
                # An epoch boundary is a natural low-water mark: every op
                # older than the epoch has committed region-wide, so stale
                # removed-subtree entries can go.
                self.region.prune_removed_subtrees()
                # Release operations held for the new epoch.
                for msg in self._future.pop(self.current_epoch, []):
                    yield from self._dispatch(msg)
                continue

            if len(self.queue) > 0 or (not self._pending and not closing):
                try:
                    msg = yield self.queue.get()
                except QueueClosed:
                    closing = True
                    continue
                if self.batch_size > 1:
                    batch = [msg]
                    batch.extend(self.queue.get_batch(self.batch_size - 1))
                    yield from self._dispatch_batch(batch)
                else:
                    yield from self._dispatch(msg)
            elif self._pending:
                # Nothing new; give blocked dependencies a beat, then retry.
                yield self.env.timeout(
                    self.region.config.commit_retry_delay)
                op = self._pending.popleft()
                yield from self._commit_one(op)
            else:
                # closing and fully drained
                return

    def _dispatch(self, msg: Any) -> Generator[Event, Any, None]:
        if isinstance(msg, BarrierMessage):
            self._barrier_counts[msg.epoch] = \
                self._barrier_counts.get(msg.epoch, 0) + 1
            return
        if msg.epoch > self.current_epoch:
            self._future.setdefault(msg.epoch, []).append(msg)
            return
        yield from self._commit_one(msg)

    def _commit_one(self, op: OpMessage) -> Generator[Event, Any, None]:
        """Commit a single op with in-flight accounting around the attempt."""
        self._in_flight += 1
        self._ledger_track([op])
        previous_oldest = self._in_flight_oldest
        if previous_oldest is None or op.timestamp < previous_oldest:
            self._in_flight_oldest = op.timestamp
        try:
            yield from self._try_commit(op)
        finally:
            self._in_flight -= 1
            self._in_flight_committed = 0
            self._in_flight_oldest = previous_oldest

    def _dispatch_batch(self, msgs: List[Any]) -> Generator[Event, Any,
                                                            None]:
        """Resolve one wakeup's worth of drained messages.

        The queue-pop overhead is paid once for the whole drain — that is
        the amortization batching buys on the queue side.  Barrier
        messages cut the drain into segments: operations on either side of
        a barrier marker never share a coalescing window or an MDS batch,
        preserving the §III.E epoch discipline.

        Every drained op message counts as in-flight (and holds down the
        removed-subtree prune cutoff) from the moment it leaves the queue
        until its segment resolves — ``Region.quiesce`` must never observe
        a lull while drained work sits in a local variable here.
        """
        held = [m for m in msgs if not isinstance(m, BarrierMessage)]
        self._in_flight += len(held)
        self._ledger_track(held)
        previous_oldest = self._in_flight_oldest
        if held:
            oldest = min(m.timestamp for m in held)
            if previous_oldest is None or oldest < previous_oldest:
                self._in_flight_oldest = oldest
        outstanding = len(held)
        try:
            if self.costs.commit_queue_pop > 0:
                yield self.env.timeout(self.costs.commit_queue_pop)
            if self.region.hub.enabled:
                self.region.hub.observe("commit.batch_size", len(msgs))
            segment: List[OpMessage] = []
            for msg in msgs:
                if isinstance(msg, BarrierMessage):
                    yield from self._commit_segment(segment)
                    self._in_flight -= len(segment)
                    self._in_flight_committed = 0
                    outstanding -= len(segment)
                    segment = []
                    self._barrier_counts[msg.epoch] = \
                        self._barrier_counts.get(msg.epoch, 0) + 1
                elif msg.epoch > self.current_epoch:
                    self._future.setdefault(msg.epoch, []).append(msg)
                    self._ledger_untrack(msg)  # _future is scanned on crash
                    self._in_flight -= 1
                    outstanding -= 1
                else:
                    segment.append(msg)
            yield from self._commit_segment(segment)
            self._in_flight -= len(segment)
            self._in_flight_committed = 0
            outstanding -= len(segment)
        finally:
            # Only nonzero when an exception cut the drain short.
            self._in_flight -= outstanding
            self._in_flight_committed = 0
            self._in_flight_oldest = previous_oldest

    def _commit_segment(self, ops: List[OpMessage]) -> Generator[Event, Any,
                                                                 None]:
        """Commit one barrier-free run of ops (already counted in-flight)."""
        if not ops:
            return
        if self.coalesce_enabled and len(ops) > 1:
            ops = yield from self._coalesce(ops)
            if not ops:
                return
        if len(ops) == 1:
            op = ops[0]
            if self.region.inside_removed_subtree(op.path, op.timestamp):
                self._discard(op)
                return
            yield from self._attempt_single(op, self._committed_mode(op))
        else:
            yield from self._commit_batched(ops)

    def _coalesce(self, ops: List[OpMessage]) -> Generator[Event, Any,
                                                           List[OpMessage]]:
        """Cancel (create|mkdir, same-generation rm) pairs inside a batch.

        Neither side of a cancelled pair ever reaches the MDS; the rm's
        post-commit cache bookkeeping (dropping this generation's
        tombstone record) still runs, exactly as its commit would have.
        Generation tags make this safe: a pair only cancels when the cache
        still holds *this* generation uncommitted — if the create already
        materialized out of band (small-file threshold crossing) the DFS
        holds the file and the rm must really run.
        """
        alive: List[Optional[OpMessage]] = list(ops)
        creations: Dict[Tuple[str, int], int] = {}
        for i, op in enumerate(ops):
            if op.op in ("create", "mkdir"):
                creations[(op.path, op.gen_ino)] = i
            elif op.op == "rm":
                j = creations.get((op.path, op.gen_ino))
                if j is None or alive[j] is None:
                    continue
                record = self.region.cache.peek(op.path)
                if record is None or record.get("ino") != op.gen_ino \
                        or record.get("committed"):
                    continue
                self._close_queue_span(ops[j])
                self._close_queue_span(op)
                alive[i] = None
                alive[j] = None
                del creations[(op.path, op.gen_ino)]
                self.coalesced += 2
                self._resolve_ledger(ops[j])
                self._resolve_ledger(op)
                self.region.tracer.emit(
                    self.env.now, f"commit:{self.node.name}", "coalesce",
                    f"create+rm {op.path}")
                if self.region.hub.enabled:
                    self.region.hub.count("commit.coalesced", 2)
                try:
                    yield from self.region.cache.delete_if_ino(
                        self.node, op.path, op.gen_ino)
                except NodeDownError:
                    if self.region.hub.enabled:
                        self.region.hub.count("commit.postcommit_skipped")
        return [op for op in alive if op is not None]

    def _commit_batched(self, ops: List[OpMessage]) -> Generator[Event, Any,
                                                                 None]:
        """Commit a segment, sharing MDS round trips per parent directory.

        The §III.D.1 discard rule is applied per-op first; survivors are
        grouped by parent so N same-directory operations pay one ancestor
        traversal and one (discounted) MDS request.  Each op's outcome is
        resolved independently — rejected ops resubmit, exactly as they
        would op-at-a-time.
        """
        groups: Dict[str, List[Tuple[OpMessage, int]]] = {}
        for op in ops:
            if self.region.inside_removed_subtree(op.path, op.timestamp):
                self._discard(op)
                continue
            groups.setdefault(parent_of(op.path), []).append(
                (op, self._committed_mode(op)))
        for group in groups.values():
            if len(group) == 1:
                op, mode = group[0]
                yield from self._attempt_single(op, mode)
                continue
            payload = []
            for op, mode in group:
                kwargs: Dict[str, Any] = (
                    {} if op.op == "rm" else {"mode": mode})
                token = self._commit_token(op)
                if token is not None:
                    kwargs["token"] = token
                payload.append(
                    ("unlink" if op.op == "rm" else op.op, op.path, kwargs))
            try:
                results = yield from self.dfs_client.commit_batch(payload)
            except NodeDownError:
                for op, mode in group:
                    self._replay(op)
                continue
            except (FileNotFound, NotADirectory) as exc:
                # The shared ancestor traversal failed (parent creation
                # pending in some queue, or subtree removed): every op in
                # the group fails the same way it would have op-at-a-time.
                for op, mode in group:
                    yield from self._handle_commit_failure(op, mode, exc)
                continue
            for (op, mode), (status, detail) in zip(group, results):
                if status == "ok":
                    yield from self._commit_success(op, mode)
                else:
                    yield from self._handle_commit_failure(op, mode, detail)

    # -- committing one operation ------------------------------------------------
    def _try_commit(self, op: OpMessage) -> Generator[Event, Any, None]:
        if self.costs.commit_queue_pop > 0:
            yield self.env.timeout(self.costs.commit_queue_pop)
        # Paper §III.D.1: discard creations inside removed directories.
        # Only ops older than the removal are discarded; later re-creations
        # of the same names are legitimate work.
        if self.region.inside_removed_subtree(op.path, op.timestamp):
            self._discard(op)
            return
        yield from self._attempt_single(op, self._committed_mode(op))

    def _commit_token(self, op: OpMessage) -> Optional[Tuple]:
        """Idempotency key for this op's MDS mutation (None when untagged).

        ``(region, gen_ino, op)`` uniquely names one generation's mutation:
        replaying it after a lost response must not re-apply.  Ops without
        a generation tag stay untagged (no dedup — they also never ride
        the replay path, which is the only at-least-once producer).
        """
        if op.gen_ino == -1:
            return None
        return (self.region.name, op.gen_ino, op.op)

    def _replay(self, op: OpMessage) -> None:
        """Re-queue an op whose MDS round trip failed in transport.

        Transport loss (MDS crash mid-commit, partition) is transient and
        unbounded — exempt from the MAX_RETRIES resubmission cap, which
        exists to catch namespace-convention livelocks.  The op's commit
        token makes the retry idempotent if the lost RPC actually applied.
        """
        op.replays += 1
        self.replays += 1
        self._ledger_untrack(op)  # still pending; _pending is crash-scanned
        if self.region.hub.enabled:
            self.region.hub.count("commit.replays")
        self._pending.append(op)

    def _committed_mode(self, op: OpMessage) -> int:
        """The mode this op should commit with.

        The mode may have changed since the op was queued (chmod on a
        not-yet-committed entry); the cache record of this generation is
        authoritative.
        """
        mode = op.mode
        if op.op in ("mkdir", "create"):
            record = self.region.cache.peek(op.path)
            if record is not None and record.get("ino") == op.gen_ino:
                mode = record.get("mode", mode)
        return mode

    def _attempt_single(self, op: OpMessage,
                        mode: int) -> Generator[Event, Any, None]:
        tracer = self.region.tracer
        ctx = proc = None
        if tracer.enabled and op.span_id >= 0:
            # Adopt the op's commit_queue span so the DFS/MDS spans this
            # attempt generates nest under it in the op's span tree.
            ctx = tracer.adopt_context(op.op_id, op.span_id)
            proc = self.env.active_process
            tracer.push_context(proc, ctx)
        try:
            token = self._commit_token(op)
            try:
                if op.op == "mkdir":
                    yield from self.dfs_client.mkdir(op.path, mode=mode,
                                                     token=token)
                elif op.op == "create":
                    yield from self.dfs_client.create(op.path, mode=mode,
                                                      token=token)
                elif op.op == "rm":
                    yield from self.dfs_client.unlink(op.path, token=token)
                else:  # pragma: no cover - OpMessage validates op names
                    raise ValueError(op.op)
            except (FileExists, FileNotFound, NotADirectory) as exc:
                yield from self._handle_commit_failure(op, mode, exc)
                return
            except NodeDownError:
                # MDS (or the wire to it) went down mid-commit: the op may
                # or may not have applied.  Replay with the same token —
                # the MDS dedup memory resolves the ambiguity.
                self._replay(op)
                return
            yield from self._commit_success(op, mode)
        finally:
            if ctx is not None:
                tracer.pop_context(proc, ctx)

    def _handle_commit_failure(self, op: OpMessage, mode: int,
                               exc: Exception) -> Generator[Event, Any, None]:
        """Resolve a DFS rejection: committed-elsewhere, orphan, or retry."""
        if isinstance(exc, FileExists):
            # The name is occupied.  Either *this generation* was
            # materialized out of band (small-file threshold crossing
            # creates directly and flips the committed flag — check the
            # cache, matching on the generation tag), or an older same-name
            # file awaits a pending rm in another queue — resubmit until
            # that rm lands (plain EEXIST-as-success would commit the
            # recreate *before* the remove and converge to the wrong
            # namespace).
            record = self.region.cache.peek(op.path)
            if (record is not None and record.get("committed")
                    and record.get("ino") == op.gen_ino):
                # this generation is on the DFS; count it committed
                yield from self._commit_success(op, mode)
            else:
                yield from self._resubmit(op)
            return
        if isinstance(exc, (FileNotFound, NotADirectory)):
            # Namespace conventions not yet satisfied — usually the parent
            # creation is pending in some queue: resubmit (§III.E).  But a
            # creation under a removed subtree whose parent has no cache
            # record is an orphan: nothing queued anywhere can ever create
            # its parent, so retrying is a livelock — discard it (the
            # §III.D.1 discard rule extended to post-removal stragglers).
            if (op.op in ("create", "mkdir")
                    and self.region.inside_removed_subtree(op.path)
                    and self.region.cache.peek(parent_of(op.path)) is None):
                self._discard(op, orphan=True)
                return
            yield from self._resubmit(op)
            return
        raise exc  # not a namespace-convention rejection: a real bug

    def _close_queue_span(self, op: OpMessage) -> None:
        """Close the op's commit_queue span (opened at client publish)."""
        tracer = self.region.tracer
        if tracer.enabled and op.span_id >= 0:
            ctx = tracer.adopt_context(op.op_id, op.span_id)
            tracer.span_end(self.env.now, f"commitq:{self.region.name}", ctx)

    def _commit_success(self, op: OpMessage,
                        mode: int) -> Generator[Event, Any, None]:
        self.committed += 1
        # From here until the op leaves the in-flight window (its segment
        # resolves) a crash must not count it as lost: it is on the DFS.
        self._in_flight_committed += 1
        self.region.ops_committed += 1
        self._close_queue_span(op)
        self.region.tracer.emit(self.env.now, f"commit:{self.node.name}",
                                "commit", f"{op.op} {op.path}",
                                op_id=op.op_id if op.op_id >= 0 else None)
        hub = self.region.hub
        self._resolve_ledger(op)
        if hub.enabled:
            # Publish→commit latency: OpMessage.timestamp is stamped when
            # the client pushes the message into its commit queue.
            hub.observe_commit(op.op, self.env.now - op.timestamp)
            hub.observe_visibility("committed", op.op,
                                   self.env.now - op.timestamp,
                                   weight=op.weight)
            if op.retries > 0:
                hub.observe("commit.retries_to_commit", op.retries)
        try:
            yield from self._after_commit(op, committed_mode=mode)
        except NodeDownError:
            # The op is committed on the DFS; only the cache-side
            # bookkeeping RPC was lost (cache node down or partitioned).
            # Replaying would double-count the commit via token dedup, so
            # just note the skip — the record reconverges via eviction or
            # the next mutation of the name.
            if hub.enabled:
                hub.count("commit.postcommit_skipped")
        else:
            # Globally visible: the primary (cache) copy now agrees with
            # the committed DFS copy — later reads anywhere see the commit.
            if hub.enabled:
                hub.observe_visibility("global", op.op,
                                       self.env.now - op.timestamp,
                                       weight=op.weight)

    def _discard(self, op: OpMessage, orphan: bool = False) -> None:
        self.discarded += 1
        self._resolve_ledger(op)
        self._close_queue_span(op)
        label = f"{op.op} {op.path}"
        self.region.tracer.emit(self.env.now, f"commit:{self.node.name}",
                                "discard",
                                f"orphan {label}" if orphan else label,
                                op_id=op.op_id if op.op_id >= 0 else None)
        if self.region.hub.enabled:
            self.region.hub.count("commit.discarded")

    def _resubmit(self, op: OpMessage) -> Generator[Event, Any, None]:
        op.retries += 1
        self.resubmissions += 1
        self._ledger_untrack(op)  # still pending; _pending is crash-scanned
        if self.region.hub.enabled:
            self.region.hub.count("commit.resubmissions")
        if op.retries > self.MAX_RETRIES:
            raise CommitStalled(f"{op.op} {op.path} exceeded"
                                f" {self.MAX_RETRIES} resubmissions")
        self._pending.append(op)
        return
        yield  # pragma: no cover - generator marker

    def _after_commit(self, op: OpMessage,
                      committed_mode: int = -1) -> Generator[Event, Any,
                                                             None]:
        """Post-commit bookkeeping on the cached (primary) copy.

        All updates are generation-guarded: if the cache record now
        belongs to a newer generation of the same name (the application
        removed and recreated it while this commit was in flight), leave
        it alone — the newer generation's own operations manage it.
        """
        cache = self.region.cache
        if op.op == "rm":
            # "removed files are marked and their cached metadata are
            # deleted after the operations are committed."  Conditional on
            # the generation: never delete a recreated entry's record.
            yield from cache.delete_if_ino(self.node, op.path, op.gen_ino)
            return
        # create/mkdir: flip the committed flag; write back fsynced inline
        # data that had been parked in a cache file (§III.D.2); reconcile a
        # mode changed by chmod while the create was in flight.
        shadow_size = 0
        mode_drift = None

        def mark_committed(record):
            nonlocal shadow_size, mode_drift
            if record.get("ino") != op.gen_ino:
                return None  # newer generation owns this record now
            record["committed"] = True
            if record.get("shadow") and record.get("inline_data") is not None:
                shadow_size = record["size"]
                record["shadow"] = False
            if committed_mode >= 0 and record["mode"] != committed_mode:
                mode_drift = record["mode"]
            return record

        updated = yield from cache.update(self.node, op.path, mark_committed)
        if updated is not None and shadow_size > 0:
            yield from self.dfs_client.write(op.path, 0, shadow_size)
        if updated is not None and mode_drift is not None:
            yield from self.dfs_client.setattr(op.path, mode=mode_drift)
