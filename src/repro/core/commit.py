"""Metadata operation commit (§III.D.1, §III.E).

Every metadata update in Pacon is two sub-operations: apply to the
distributed cache (done by the client), then apply to the DFS — done here.
Each region node runs one :class:`CommitProcess` (the subscriber of the
paper's Fig. 5) that drains its node's commit queue and applies operations
through an ordinary DFS client.

Commit disciplines:

* **Independent commit** — create/mkdir/rm need no temporal order, only the
  namespace conventions, which the DFS itself enforces by rejecting
  violations.  A rejected operation (e.g. parent not created yet because
  its creation sits in another node's queue) is simply *resubmitted* until
  it succeeds.  The §III.E proof that any such interleaving converges to
  the same namespace is exercised by
  ``tests/properties/test_commit_equivalence.py``.
* **Barrier commit** — rmdir/readdir must see all earlier operations
  committed.  Clients stamp every operation with a barrier epoch; a
  dependent operation broadcasts one barrier message per client into every
  node's queue and bumps the epoch.  A commit process that has drained all
  its local epoch-``e`` work arrives at a region-wide barrier; when the
  last process arrives, epoch ``e`` is globally committed and the waiting
  client proceeds.

One special rule from the paper: creations inside a directory removed by a
committed rmdir are *discarded*, not retried (they can never satisfy the
namespace conventions again).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List

from repro.dfs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    NotADirectory,
)
from repro.dfs.namespace import parent_of
from repro.mq.queue import QueueClosed
from repro.sim.core import Event

__all__ = ["OpMessage", "BarrierMessage", "CommitProcess", "CommitStalled"]

#: Operations committed independently (non-dependent type).
INDEPENDENT_OPS = ("create", "mkdir", "rm")


class CommitStalled(RuntimeError):
    """An operation exceeded the resubmission cap — indicates a logic bug,
    since under the namespace conventions every operation eventually
    becomes committable."""


@dataclass
class OpMessage:
    """One queued metadata mutation (paper: path + op info + timestamp)."""

    op: str                      # create | mkdir | rm
    path: str
    mode: int = 0o644
    uid: int = 1000
    gid: int = 1000
    timestamp: float = 0.0
    epoch: int = 0
    client_id: int = -1
    retries: int = 0
    #: Generation tag: the provisional ino of the cache record this
    #: operation belongs to.  A name can be created, removed, and
    #: recreated; post-commit cache bookkeeping must only touch its own
    #: generation, or a late rm commit would delete the *new* file's
    #: record (and a late create commit would mark it committed).
    gen_ino: int = -1

    def __post_init__(self) -> None:
        if self.op not in INDEPENDENT_OPS:
            raise ValueError(f"only independent ops ride the queue, got"
                             f" {self.op!r}")


@dataclass
class BarrierMessage:
    """Barrier marker: 'everything this client did in `epoch` is queued'."""

    epoch: int
    node_id: int


class CommitProcess:
    """Per-node subscriber that applies queued operations to the DFS."""

    MAX_RETRIES = 10_000

    def __init__(self, region, node, dfs_client):
        self.region = region
        self.node = node
        self.env = region.env
        self.costs = region.cluster.costs
        self.queue = region.queues.route(node.node_id)
        self.dfs_client = dfs_client
        # Join at the region's current epoch: a process added by elastic
        # growth (after quiesce) must not wait for barrier epochs that
        # completed before it existed.
        self.current_epoch = region.client_epoch
        self._barrier_counts: Dict[int, int] = {}
        self._pending: Deque[OpMessage] = deque()      # current-epoch retries
        self._future: Dict[int, List[Any]] = {}        # epoch -> held msgs
        # stats
        self.committed = 0
        self.discarded = 0
        self.resubmissions = 0
        self.barriers_passed = 0
        self._process = None
        self._in_flight = 0
        #: Set by failure injection; the interrupt that actually stops the
        #: loop is delivered on the next simulation step, so recovery code
        #: keys off this flag rather than the process's alive state.
        self.killed = False
        self.region.commit_processes.append(self)

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Spawn the commit loop as a DES process; returns the Process."""
        self._process = self.env.process(
            self.run(), label=f"commit:{self.region.name}:{self.node.name}")
        return self._process

    @property
    def idle(self) -> bool:
        """No queued, held, retrying, or in-flight work."""
        return (len(self.queue) == 0 and not self._pending
                and not any(self._future.values())
                and self._in_flight == 0)

    # -- main loop -----------------------------------------------------------
    def run(self) -> Generator[Event, Any, None]:
        """Commit loop; dies cleanly (dropping state) on node failure."""
        from repro.sim.core import Interrupt

        try:
            yield from self._loop()
        except Interrupt:
            # Node crash (§III.G): whatever was queued or in flight here is
            # lost; isolation means only this region is affected.
            self._pending.clear()
            self._future.clear()
            self._barrier_counts.clear()
            self._in_flight = 0

    def _loop(self) -> Generator[Event, Any, None]:
        closing = False
        while True:
            # Barrier: local epoch fully drained -> rendezvous region-wide.
            if (self._barrier_counts.get(self.current_epoch, 0)
                    >= self.region.expected_barrier_messages(
                        self.node.node_id)
                    and not self._pending):
                epoch = self.current_epoch
                wait_started = self.env.now
                gen = yield self.region.commit_barrier.arrive()
                # All commit processes have drained this epoch.
                self.region.signal_barrier_complete(gen)
                self._barrier_counts.pop(epoch, None)
                self.current_epoch += 1
                self.barriers_passed += 1
                self.region.tracer.emit(self.env.now,
                                        f"commit:{self.node.name}",
                                        "barrier", f"epoch {epoch} done")
                hub = self.region.hub
                if hub.enabled:
                    # Stall between local drain and region-wide release.
                    hub.observe("commit.barrier_wait",
                                self.env.now - wait_started)
                    hub.count("commit.barriers_passed")
                # Release operations held for the new epoch.
                for msg in self._future.pop(self.current_epoch, []):
                    yield from self._dispatch(msg)
                continue

            if len(self.queue) > 0 or (not self._pending and not closing):
                try:
                    msg = yield self.queue.get()
                except QueueClosed:
                    closing = True
                    continue
                yield from self._dispatch(msg)
            elif self._pending:
                # Nothing new; give blocked dependencies a beat, then retry.
                yield self.env.timeout(
                    self.region.config.commit_retry_delay)
                op = self._pending.popleft()
                self._in_flight += 1
                try:
                    yield from self._try_commit(op)
                finally:
                    self._in_flight -= 1
            else:
                # closing and fully drained
                return

    def _dispatch(self, msg: Any) -> Generator[Event, Any, None]:
        if isinstance(msg, BarrierMessage):
            self._barrier_counts[msg.epoch] = \
                self._barrier_counts.get(msg.epoch, 0) + 1
            return
        if msg.epoch > self.current_epoch:
            self._future.setdefault(msg.epoch, []).append(msg)
            return
        self._in_flight += 1
        try:
            yield from self._try_commit(msg)
        finally:
            self._in_flight -= 1

    # -- committing one operation ------------------------------------------------
    def _try_commit(self, op: OpMessage) -> Generator[Event, Any, None]:
        if self.costs.commit_queue_pop > 0:
            yield self.env.timeout(self.costs.commit_queue_pop)
        # Paper §III.D.1: discard creations inside removed directories.
        # Only ops older than the removal are discarded; later re-creations
        # of the same names are legitimate work.
        if self.region.inside_removed_subtree(op.path, op.timestamp):
            self.discarded += 1
            self.region.tracer.emit(self.env.now, f"commit:{self.node.name}",
                                    "discard", f"{op.op} {op.path}")
            if self.region.hub.enabled:
                self.region.hub.count("commit.discarded")
            return
        # The mode may have changed since the op was queued (chmod on a
        # not-yet-committed entry); the cache record of this generation is
        # authoritative.
        mode = op.mode
        if op.op in ("mkdir", "create"):
            record = self.region.cache.peek(op.path)
            if record is not None and record.get("ino") == op.gen_ino:
                mode = record.get("mode", mode)
        try:
            if op.op == "mkdir":
                yield from self.dfs_client.mkdir(op.path, mode=mode)
            elif op.op == "create":
                yield from self.dfs_client.create(op.path, mode=mode)
            elif op.op == "rm":
                yield from self.dfs_client.unlink(op.path)
            else:  # pragma: no cover - OpMessage validates op names
                raise ValueError(op.op)
        except FileExists:
            # The name is occupied.  Either *this generation* was
            # materialized out of band (small-file threshold crossing
            # creates directly and flips the committed flag — check the
            # cache, matching on the generation tag), or an older same-name
            # file awaits a pending rm in another queue — resubmit until
            # that rm lands (plain EEXIST-as-success would commit the
            # recreate *before* the remove and converge to the wrong
            # namespace).
            record = self.region.cache.peek(op.path)
            if (record is not None and record.get("committed")
                    and record.get("ino") == op.gen_ino):
                pass  # this generation is on the DFS; fall through
            else:
                yield from self._resubmit(op)
                return
        except (FileNotFound, NotADirectory):
            # Namespace conventions not yet satisfied — usually the parent
            # creation is pending in some queue: resubmit (§III.E).  But a
            # creation under a removed subtree whose parent has no cache
            # record is an orphan: nothing queued anywhere can ever create
            # its parent, so retrying is a livelock — discard it (the
            # §III.D.1 discard rule extended to post-removal stragglers).
            if (op.op in ("create", "mkdir")
                    and self.region.inside_removed_subtree(op.path)
                    and self.region.cache.peek(parent_of(op.path)) is None):
                self.discarded += 1
                self.region.tracer.emit(self.env.now,
                                        f"commit:{self.node.name}",
                                        "discard",
                                        f"orphan {op.op} {op.path}")
                if self.region.hub.enabled:
                    self.region.hub.count("commit.discarded")
                return
            yield from self._resubmit(op)
            return
        self.committed += 1
        self.region.ops_committed += 1
        self.region.tracer.emit(self.env.now, f"commit:{self.node.name}",
                                "commit", f"{op.op} {op.path}")
        hub = self.region.hub
        if hub.enabled:
            # Publish→commit latency: OpMessage.timestamp is stamped when
            # the client pushes the message into its commit queue.
            hub.observe_commit(op.op, self.env.now - op.timestamp)
            if op.retries > 0:
                hub.observe("commit.retries_to_commit", op.retries)
        yield from self._after_commit(op, committed_mode=mode)

    def _resubmit(self, op: OpMessage) -> Generator[Event, Any, None]:
        op.retries += 1
        self.resubmissions += 1
        if self.region.hub.enabled:
            self.region.hub.count("commit.resubmissions")
        if op.retries > self.MAX_RETRIES:
            raise CommitStalled(f"{op.op} {op.path} exceeded"
                                f" {self.MAX_RETRIES} resubmissions")
        self._pending.append(op)
        return
        yield  # pragma: no cover - generator marker

    def _after_commit(self, op: OpMessage,
                      committed_mode: int = -1) -> Generator[Event, Any,
                                                             None]:
        """Post-commit bookkeeping on the cached (primary) copy.

        All updates are generation-guarded: if the cache record now
        belongs to a newer generation of the same name (the application
        removed and recreated it while this commit was in flight), leave
        it alone — the newer generation's own operations manage it.
        """
        cache = self.region.cache
        if op.op == "rm":
            # "removed files are marked and their cached metadata are
            # deleted after the operations are committed."  Conditional on
            # the generation: never delete a recreated entry's record.
            yield from cache.delete_if_ino(self.node, op.path, op.gen_ino)
            return
        # create/mkdir: flip the committed flag; write back fsynced inline
        # data that had been parked in a cache file (§III.D.2); reconcile a
        # mode changed by chmod while the create was in flight.
        shadow_size = 0
        mode_drift = None

        def mark_committed(record):
            nonlocal shadow_size, mode_drift
            if record.get("ino") != op.gen_ino:
                return None  # newer generation owns this record now
            record["committed"] = True
            if record.get("shadow") and record.get("inline_data") is not None:
                shadow_size = record["size"]
                record["shadow"] = False
            if committed_mode >= 0 and record["mode"] != committed_mode:
                mode_drift = record["mode"]
            return record

        updated = yield from cache.update(self.node, op.path, mark_committed)
        if updated is not None and shadow_size > 0:
            yield from self.dfs_client.write(op.path, 0, shadow_size)
        if updated is not None and mode_drift is not None:
            yield from self.dfs_client.setattr(op.path, mode=mode_drift)
