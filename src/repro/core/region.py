"""Consistent regions: the unit of partial consistency (§III.A).

A region is one application workspace: a subtree of the global namespace,
the set of nodes the application runs on, a distributed metadata cache
sharded over those nodes, per-node commit queues feeding commit processes,
and the barrier-epoch machinery that serializes dependent operations
(§III.E).

Regions are isolated from each other — different regions have disjoint
caches and queues, which is both the scalability mechanism (Fig. 8) and
the failure-isolation property (§III.G).  ``merge`` connects regions so
clients of one can *read* the other's cache (§III.D.4: "Currently, Pacon
only supports read-only access to the merged consistent region").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.cache import CacheShard, DistributedCache
from repro.core.config import PaconConfig
from repro.core.permissions import RegionPermissions
from repro.dfs.namespace import is_within, normalize_path
from repro.mq.queue import QueueGroup
from repro.sim.core import Event
from repro.sim.network import Cluster, Node
from repro.sim.resources import Barrier

__all__ = ["ConsistentRegion", "RegionManager", "ReadOnlyRegion"]


class ReadOnlyRegion(PermissionError):
    """Write attempted through a merged (read-only) region."""


class ConsistentRegion:
    """State and coordination for one application workspace."""

    def __init__(self, cluster: Cluster, dfs, config: PaconConfig,
                 nodes: List[Node], name: str = ""):
        if not nodes:
            raise ValueError("a region needs at least one node")
        self.cluster = cluster
        self.env = cluster.env
        self.dfs = dfs
        self.config = config
        self.workspace = normalize_path(config.workspace)
        self.name = name or self.workspace
        self.nodes = list(nodes)
        # Distributed cache: one shard per region node.
        self.shards = [
            CacheShard(cluster, node, config.cache_capacity_bytes,
                       name=f"{self.name}.cache[{node.name}]")
            for node in self.nodes
        ]
        self.cache = DistributedCache(self.shards)
        # Batch permissions (predefined or Linux-like default, §III.C).
        if config.permissions is not None:
            self.permissions = RegionPermissions(self.workspace,
                                                 config.permissions)
        else:
            self.permissions = RegionPermissions.linux_like_default(
                self.workspace, config.uid, config.gid)
        # Commit queues: one per node (Fig. 5).
        self.queues = QueueGroup(self.env, name=f"{self.name}.commitq")
        for node in self.nodes:
            self.queues.add_node(node.node_id)
        # Barrier-epoch machinery (§III.E).
        self.client_epoch = 0
        self.commit_barrier = Barrier(self.env, parties=len(self.nodes),
                                      name=f"{self.name}.barrier")
        self._barrier_done: Dict[int, Event] = {}
        # Clients per node (the commit process needs the local count to
        # know when a barrier epoch is fully flushed, Fig. 6).
        self.clients_on_node: Dict[int, int] = {n.node_id: 0 for n in nodes}
        self._next_client_id = 0
        # Subtrees removed by committed rmdirs: commit processes discard
        # pending creations inside them (§III.D.1).  Indexed by normalized
        # prefix so a discard check walks the op path's ancestors (O(depth)
        # dict lookups) instead of scanning every removal ever recorded.
        # Timestamped entries are pruned once no outstanding operation can
        # still be older than the removal; the timestamp-free set answers
        # the "was this prefix ever removed" orphan query and only dedups.
        self._removed_subtrees: Dict[str, float] = {}
        self._ever_removed: Set[str] = set()
        # Barrier-party bumps deferred while a rendezvous is in flight
        # (epoch watermarks; see add_node).
        self._deferred_barrier_parties: List[int] = []
        # Merged regions reachable for read-only access (§III.D.4).
        self.merged: List["ConsistentRegion"] = []
        # Commit processes register here (deploy wires them).
        self.commit_processes: List = []
        # Optional observability (repro.sim.trace / repro.obs); NULL by
        # default so the hot path pays nothing.  MetricsHub.attach_region
        # swaps both in.
        from repro.obs.hub import NULL_HUB
        from repro.sim.trace import NULL_TRACER
        self.tracer = NULL_TRACER
        self.hub = NULL_HUB
        # Shadow directory on the DFS for fsync-before-create cache files
        # (§III.D.2); the deployment materializes it.
        safe = self.workspace.strip("/").replace("/", "_") or "root"
        self.dfs_shadow_dir = f"/.pacon/{safe}"
        self._next_provisional_ino = 1 << 30
        # stats
        self.ops_submitted = 0
        self.ops_committed = 0
        self.barrier_epochs_completed = 0
        # Membership history: ``(time, node_count)`` per change, seeded
        # with the initial size.  The autoscaler bench integrates this
        # into provisioned cost (node-seconds); see :meth:`node_seconds`.
        self.membership_log: List[Tuple[float, int]] = [
            (self.env.now, len(self.nodes))]
        # Version-lag ledger: per-path count of published-but-unresolved
        # mutations (resolved = committed, discarded, or coalesced away).
        # Maintained only while a hub is attached (call sites guard on
        # ``hub.enabled``); feeds staleness-at-read version lag.
        self._pending_mutations: Dict[str, int] = {}

    def alloc_provisional_ino(self) -> int:
        """Region-unique ino for entries that only exist in the cache yet."""
        ino = self._next_provisional_ino
        self._next_provisional_ino += 1
        return ino

    # -- membership -----------------------------------------------------------
    def register_client(self, node: Node) -> int:
        if node.node_id not in self.clients_on_node:
            raise ValueError(
                f"node {node.name} is not a member of region {self.name}")
        self.clients_on_node[node.node_id] += 1
        client_id = self._next_client_id
        self._next_client_id += 1
        return client_id

    def total_clients(self) -> int:
        return sum(self.clients_on_node.values())

    # -- coverage ---------------------------------------------------------------
    def covers(self, path: str) -> bool:
        return is_within(path, self.workspace)

    def covering_region(self, path: str) -> Optional["ConsistentRegion"]:
        """This region, a merged region, or None (redirect to DFS)."""
        if self.covers(path):
            return self
        for other in self.merged:
            if other.covers(path):
                return other
        return None

    # -- elasticity (§III.A Benefit 2) ------------------------------------------------
    def add_node(self, node: Node) -> "CacheShard":
        """Grow the region onto another node.

        Pacon services launch with the application's clients, so a region
        can expand when the scheduler gives the application more nodes.
        The new shard joins the consistent-hash ring (moving ~1/N of the
        key space to it) and gets its own commit queue.

        Use :meth:`repro.core.deploy.PaconDeployment.grow_region`, which
        wraps this with the required quiesce (an uncommitted entry whose
        key moved would otherwise become unreachable) and migrates the
        moved records onto the new shard.
        """
        if node in self.nodes:
            raise ValueError(f"node {node.name} already in region"
                             f" {self.name}")
        shard = CacheShard(self.cluster, node,
                           self.config.cache_capacity_bytes,
                           name=f"{self.name}.cache[{node.name}]")
        self.nodes.append(node)
        self.shards.append(shard)
        self.cache.ring.add(shard)
        self.cache.shards.append(shard)
        self.queues.add_node(node.node_id)
        self.clients_on_node[node.node_id] = 0
        # The region-wide commit barrier now has one more party — but only
        # for epochs triggered from here on.  Epochs already triggered
        # (including a rendezvous mid-flight right now) were broadcast
        # before this node's queue existed, so its commit process can never
        # arrive for them; bumping parties immediately would deadlock the
        # in-flight epoch (or, with the bump racing arrivals, double-count
        # a release).  Defer the bump until every already-triggered epoch
        # has completed.
        if self.barrier_epochs_completed >= self.client_epoch \
                and self.commit_barrier.n_waiting == 0:
            self.commit_barrier.parties += 1
        else:
            self._deferred_barrier_parties.append(self.client_epoch)
        self.membership_log.append((self.env.now, len(self.nodes)))
        if self.hub.enabled:
            self.hub.timeline.record(
                self.env.now, "membership", "node.joined", node.name,
                detail=f"nodes={len(self.nodes)}")
        return shard

    def remove_node(self, node: Node) -> "CacheShard":
        """Shrink the region off ``node``; returns the detached shard.

        The inverse of :meth:`add_node` for planned (non-crash) departure
        — cache-node churn on the DHT ring.  Preconditions: the node must
        host no clients, and all barrier epochs must be settled (the
        departing commit process may still be draining; closing its queue
        lets it exit cleanly).  Use
        :meth:`repro.core.deploy.PaconDeployment.retire_node`, which
        wraps this with the required quiesce and migrates the departing
        shard's records back onto the ring.
        """
        if node not in self.nodes:
            raise ValueError(f"node {node.name} not in region {self.name}")
        if len(self.nodes) == 1:
            raise ValueError(f"cannot remove the last node of {self.name}")
        if self.clients_on_node.get(node.node_id, 0) > 0:
            raise RuntimeError(
                f"node {node.name} still hosts clients; move them first")
        if self.barrier_epochs_completed < self.client_epoch \
                or self.commit_barrier.n_waiting > 0:
            raise RuntimeError(
                f"region {self.name} has barrier epochs in flight;"
                " settle them before removing a node")
        shard = next(s for s in self.shards if s.node is node)
        self.nodes.remove(node)
        self.shards.remove(shard)
        self.cache.ring.remove(shard)
        self.cache.shards.remove(shard)
        # Pop from the group before closing so a concurrent broadcast
        # never trips over a closed member queue.
        queue = self.queues.remove_node(node.node_id)
        queue.close()
        del self.clients_on_node[node.node_id]
        self.commit_barrier.parties -= 1
        self.membership_log.append((self.env.now, len(self.nodes)))
        if self.hub.enabled:
            self.hub.timeline.record(
                self.env.now, "membership", "node.departed", node.name,
                detail=f"nodes={len(self.nodes)}")
        return shard

    def node_seconds(self, until: Optional[float] = None) -> float:
        """Provisioned cost so far: the step integral of member count
        over simulated time.  A static region of N nodes over a span T
        costs exactly ``N * T``; an autoscaled one pays only for the
        nodes while they are members."""
        end = self.env.now if until is None else until
        total = 0.0
        for i, (start, count) in enumerate(self.membership_log):
            stop = (self.membership_log[i + 1][0]
                    if i + 1 < len(self.membership_log) else end)
            total += count * max(0.0, stop - start)
        return total

    # -- merging (§III.D.4) ----------------------------------------------------------
    def merge(self, other: "ConsistentRegion", mutual: bool = True) -> None:
        """Connect regions so clients can read each other's workspace.

        Step 1 of the paper (exchange basic information) is the object
        reference; step 2 (establish connections) is modeled by the
        network paths to the other region's shards, which are used on
        every read.
        """
        if other is self:
            raise ValueError("cannot merge a region with itself")
        if is_within(other.workspace, self.workspace) or \
                is_within(self.workspace, other.workspace):
            raise ValueError(
                "overlapping workspaces are one region, not a merge"
                " (paper §III.B case 3)")
        if other not in self.merged:
            self.merged.append(other)
        if mutual and self not in other.merged:
            other.merged.append(self)

    # -- barrier epochs (§III.E) ---------------------------------------------------------
    def trigger_barrier(self) -> Tuple[int, Event]:
        """Start a barrier epoch for a dependent operation.

        Pushes one barrier message per client into each node's commit
        queue (every client "generates a barrier message" — the shared
        epoch counter makes this an atomic instant in the simulation) and
        bumps the client epoch.  Returns ``(epoch, done_event)`` where the
        event fires once every commit process has drained that epoch.
        """
        from repro.core.commit import BarrierMessage

        epoch = self.client_epoch
        self.client_epoch += 1
        for node in self.nodes:
            queue = self.queues.route(node.node_id)
            for _ in range(max(1, self.clients_on_node[node.node_id])):
                queue.publish(BarrierMessage(epoch=epoch,
                                             node_id=node.node_id,
                                             timestamp=self.env.now))
        done = self._barrier_done.setdefault(
            epoch, self.env.event(name=f"{self.name}.barrier[{epoch}]"))
        return epoch, done

    def barrier_done_event(self, epoch: int) -> Event:
        return self._barrier_done.setdefault(
            epoch, self.env.event(name=f"{self.name}.barrier[{epoch}]"))

    def signal_barrier_complete(self, epoch: int) -> None:
        """Called by the commit process that completes the epoch barrier."""
        ev = self._barrier_done.setdefault(
            epoch, self.env.event(name=f"{self.name}.barrier[{epoch}]"))
        if not ev.triggered:
            self.barrier_epochs_completed += 1
            ev.succeed(epoch)
        # Epochs complete in order, so once every epoch triggered before an
        # elastic add_node has finished, the deferred party bump is safe:
        # the grown process participates in all later epochs.
        while self._deferred_barrier_parties and \
                self.barrier_epochs_completed >= \
                self._deferred_barrier_parties[0]:
            self._deferred_barrier_parties.pop(0)
            self.commit_barrier.parties += 1

    def expected_barrier_messages(self, node_id: int) -> int:
        # .get: a retiring node's commit process re-checks its barrier
        # state after remove_node dropped its membership entry, while it
        # drains toward the queue-closed exit.
        return max(1, self.clients_on_node.get(node_id, 0))

    # -- removed-subtree bookkeeping -----------------------------------------------------
    @property
    def removed_subtrees(self) -> List[Tuple[str, float]]:
        """Unpruned timestamped removal entries (inspection only)."""
        return sorted(self._removed_subtrees.items())

    @staticmethod
    def _prefixes(path: str) -> Iterator[str]:
        """``path`` and every proper ancestor, deepest first (not '/')."""
        while path != "/":
            yield path
            idx = path.rfind("/")
            path = path[:idx] if idx > 0 else "/"

    def note_removed_subtree(self, path: str) -> None:
        """Record a committed rmdir at the current instant.

        Only operations *older* than the removal are doomed (they raced
        with the rmdir and their parent is gone); a later re-creation of
        the same name is legitimate, so the discard check is
        timestamp-bounded.
        """
        self.prune_removed_subtrees()
        path = normalize_path(path)
        self._removed_subtrees[path] = self.env.now
        self._ever_removed.add(path)

    def inside_removed_subtree(self, path: str,
                               timestamp: Optional[float] = None) -> bool:
        """Was ``path`` inside a subtree removed after ``timestamp``?

        ``timestamp=None`` asks the unbounded question — was this prefix
        *ever* removed (the orphaned-straggler discard extension).
        """
        if timestamp is None:
            if not self._ever_removed:
                return False
            path = normalize_path(path)
            return any(prefix in self._ever_removed
                       for prefix in self._prefixes(path))
        if not self._removed_subtrees:
            return False
        path = normalize_path(path)
        for prefix in self._prefixes(path):
            removed_at = self._removed_subtrees.get(prefix)
            if removed_at is not None and timestamp <= removed_at:
                return True
        return False

    # -- version-lag ledger (observability; hub-gated at call sites) ---------
    def note_op_pending(self, path: str) -> None:
        """A mutation for ``path`` was published into a commit queue."""
        self._pending_mutations[path] = \
            self._pending_mutations.get(path, 0) + 1

    def note_op_resolved(self, path: str) -> None:
        """A published mutation for ``path`` left the pipeline (committed,
        discarded, coalesced, or lost to an abort)."""
        n = self._pending_mutations.get(path, 0)
        if n <= 1:
            self._pending_mutations.pop(path, None)
        else:
            self._pending_mutations[path] = n - 1

    def pending_mutations(self, path: str) -> int:
        """Published-but-unresolved mutation count for ``path`` (the
        version lag a read of ``path`` observes vs. the MDS copy)."""
        return self._pending_mutations.get(path, 0)

    def total_pending_mutations(self) -> int:
        return sum(self._pending_mutations.values())

    def oldest_outstanding_op_timestamp(self) -> Optional[float]:
        """Publish timestamp of the oldest operation still anywhere in the
        commit pipeline (queued, held, retrying, or in flight); None when
        the pipeline is empty.

        Publish stamps are monotone, and each queue is FIFO, so its head
        message lower-bounds the whole queue — no backlog scan needed.
        """
        oldest: Optional[float] = None
        for queue in self.queues.queues():
            head = queue.peek_head()
            ts = getattr(head, "timestamp", None)
            if ts is not None and (oldest is None or ts < oldest):
                oldest = ts
        for cp in self.commit_processes:
            ts = cp.oldest_outstanding_timestamp()
            if ts is not None and (oldest is None or ts < oldest):
                oldest = ts
        return oldest

    def prune_removed_subtrees(self) -> int:
        """Drop timestamped removal entries no outstanding op can match.

        An entry ``(path, removed_at)`` only ever dooms operations with
        ``timestamp <= removed_at``; once every operation still in the
        pipeline is strictly newer, the entry is dead weight.  Without
        pruning the index grows per rmdir for the life of the region
        (and, before the prefix index, was *linearly scanned on every
        commit attempt*).  Returns the number of entries pruned.
        """
        if not self._removed_subtrees:
            return 0
        cutoff = self.oldest_outstanding_op_timestamp()
        if cutoff is None:
            cutoff = self.env.now
        stale = [path for path, removed_at in self._removed_subtrees.items()
                 if removed_at < cutoff]
        for path in stale:
            del self._removed_subtrees[path]
        return len(stale)

    # -- shutdown ----------------------------------------------------------------
    def close(self) -> None:
        """Close commit queues (commit processes drain and exit)."""
        self.queues.close_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ConsistentRegion {self.name} nodes={len(self.nodes)}"
                f" clients={self.total_clients()}>")


class RegionManager:
    """Registry of regions; routes paths and applies the overlap rule."""

    def __init__(self):
        self._regions: Dict[str, ConsistentRegion] = {}

    def register(self, region: ConsistentRegion) -> ConsistentRegion:
        """Register a region, applying §III.B case 3 for overlaps.

        If the new workspace lies inside an existing region's workspace,
        the existing (larger) region is returned instead of registering a
        new one.  An existing region nested inside the new workspace is an
        error — the outer application must be configured first.
        """
        ws = region.workspace
        for existing_ws, existing in self._regions.items():
            if is_within(ws, existing_ws):
                return existing
            if is_within(existing_ws, ws):
                raise ValueError(
                    f"workspace {ws} contains existing region"
                    f" {existing_ws}; configure the outer application"
                    " first (paper §III.B case 3)")
        self._regions[ws] = region
        return region

    def region_for(self, path: str) -> Optional[ConsistentRegion]:
        """Longest-prefix region covering ``path``, or None."""
        path = normalize_path(path)
        best: Optional[ConsistentRegion] = None
        for ws, region in self._regions.items():
            if is_within(path, ws):
                if best is None or len(ws) > len(best.workspace):
                    best = region
        return best

    def regions(self) -> List[ConsistentRegion]:
        return list(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)
