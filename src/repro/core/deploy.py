"""Deployment glue: wire Pacon onto a cluster + DFS, and a sync facade.

:class:`PaconDeployment` is the initialization phase of §III.B: given an
application's workspace and node list it materializes the workspace on the
DFS, builds the consistent region (cache shards, commit queues), and
launches one commit process per node.

:class:`PaconFS` is the library-style entry point for users who just want
a file-system object: it assembles a whole simulated world (cluster, a
BeeGFS-like DFS, one region) and exposes synchronous methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.checkpoint import CheckpointManager
from repro.core.client import AggregateClient, PaconClient
from repro.core.commit import CommitProcess
from repro.core.config import PaconConfig
from repro.core.eviction import EvictionManager
from repro.core.region import ConsistentRegion, RegionManager
from repro.dfs.beegfs import BeeGFS
from repro.dfs.namespace import split_path
from repro.kvstore.memkv import KeyExists
from repro.sim.core import run_sync
from repro.sim.costs import CostModel
from repro.sim.network import Cluster, Node

__all__ = ["PaconDeployment", "PaconFS"]


class PaconDeployment:
    """Builds and tracks consistent regions over one DFS."""

    def __init__(self, cluster: Cluster, dfs: BeeGFS):
        self.cluster = cluster
        self.dfs = dfs
        self.manager = RegionManager()
        self._commit_started: Dict[str, bool] = {}

    # -- region lifecycle ---------------------------------------------------
    def create_region(self, config: PaconConfig, nodes: List[Node],
                      start_commit: bool = True) -> ConsistentRegion:
        """Initialize Pacon for one application (§III.B).

        Materializes the workspace (and Pacon's shadow directory) on the
        DFS as the admin would, registers the region (applying the
        overlapping-workspace rule), and starts the per-node commit
        processes.
        """
        region = ConsistentRegion(self.cluster, self.dfs, config, nodes)
        registered = self.manager.register(region)
        if registered is not region:
            return registered  # overlap: ride the existing (outer) region
        self._ensure_dfs_path(region.workspace,
                              mode=region.permissions.normal.mode,
                              uid=config.uid, gid=config.gid)
        self._ensure_dfs_path(region.dfs_shadow_dir, mode=0o777,
                              uid=config.uid, gid=config.gid)
        if start_commit:
            self.start_commit_processes(region)
        if config.checkpoint_interval is not None:
            # §III.G: periodic checkpointing at the application's cadence.
            ckpt = self.checkpointer(region)
            region.checkpoint_manager = ckpt
            self.cluster.env.process(
                ckpt.run(config.checkpoint_interval),
                label=f"checkpoint:{region.name}")
        return region

    def _ensure_dfs_path(self, path: str, mode: int, uid: int,
                         gid: int) -> None:
        """Admin-side mkdir -p on the DFS namespace (zero simulated cost)."""
        ns = self.dfs.namespace
        current = ""
        parts = split_path(path)
        for i, name in enumerate(parts):
            current += "/" + name
            if not ns.exists(current):
                is_leaf = i == len(parts) - 1
                ns.mkdir(current,
                         mode=mode if is_leaf else 0o755,
                         uid=uid if is_leaf else 0,
                         gid=gid if is_leaf else 0,
                         now=self.cluster.env.now, check_perms=False)

    def start_commit_processes(self, region: ConsistentRegion) -> None:
        if self._commit_started.get(region.name):
            return
        self._commit_started[region.name] = True
        for node in region.nodes:
            dfs_client = self.dfs.client(node, uid=region.config.uid,
                                         gid=region.config.gid)
            CommitProcess(region, node, dfs_client).start()

    def grow_region_async(self, region: ConsistentRegion, node: Node):
        """Generator form of :meth:`grow_region` for in-simulation callers
        (chaos churn injects growth as a DES event mid-run)."""
        yield from self.quiesce(region)
        new_shard = region.add_node(node)
        dfs_client = self.dfs.client(node, uid=region.config.uid,
                                     gid=region.config.gid)
        CommitProcess(region, node, dfs_client).start()
        moved = 0
        for old in region.shards:
            if old is new_shard:
                continue
            if not old.node.alive:
                # Crashed shards were wiped by fail_node; their records
                # will be re-fetched from the DFS on demand.  Growth must
                # not stall (or crash) on an unreachable peer.
                continue
            entries = yield from old.request(node, "scan_prefix", "")
            for key, record in entries:
                if region.cache.shard_for(key) is new_shard:
                    # Only-if-absent, same as retirement: clients already
                    # route ``key`` to the new shard once ``add_node``
                    # updated the ring, so a record mutated there during
                    # this migration is newer than the copy being moved
                    # and must win.  Either way the stale copy on the old
                    # shard is dropped only once the new home holds one.
                    try:
                        yield from new_shard.request(node, "add", key,
                                                     record)
                        moved += 1
                    except KeyExists:
                        pass  # concurrent mutation on the new home wins
                    yield from old.request(node, "delete", key)
        return moved

    def grow_region(self, region: ConsistentRegion, node: Node) -> int:
        """Elastically expand a region onto ``node`` (§III.A Benefit 2).

        Quiesces the region first (every entry gets its DFS backup copy),
        joins the new cache shard/queue/commit process, then migrates the
        cache records whose ring placement moved to the new shard — so
        inline small-file data and metadata stay primary-copy-resident
        across the membership change.  Returns the number of records
        migrated (consistent hashing keeps this near 1/(N+1) of the keys).

        Growth skips crashed peers (their shards were wiped at fault
        time) and uses only-if-absent ``add`` for the moved records, so
        it composes with chaos faults and with clients mutating the new
        shard mid-migration.

        Growth is also safe *without* this quiesce while a barrier epoch
        is in flight: ``ConsistentRegion.add_node`` defers the commit
        barrier's party bump until every already-triggered epoch has
        completed, so the new node joins the rendezvous only for epochs
        whose barrier messages actually reach its queue.
        """
        return run_sync(self.cluster.env,
                        self.grow_region_async(region, node),
                        label=f"grow:{region.name}")

    def retire_node_async(self, region: ConsistentRegion, node: Node):
        """Generator: shrink the region off ``node`` (planned departure).

        Quiesces, waits for barrier epochs to settle, detaches the node
        (ring, shard, queue — its commit process exits via queue close),
        then migrates the departing shard's records back onto the ring.
        The migration runs *after* ring removal and uses only-if-absent
        ``add`` so a record mutated concurrently on its new home shard is
        never clobbered by the stale departing copy.  Returns the number
        of records migrated.

        Refuses to shrink the region below one node: the last shard has
        nowhere to migrate to, and ``remove_node`` would reject it anyway
        — but only after this method had already quiesced and looked for
        a survivor, so the guard lives up front where it can fail fast
        and leave the region untouched.
        """
        env = self.cluster.env
        if node not in region.nodes:
            raise ValueError(f"{node.name} is not part of region "
                             f"{region.name}")
        if len(region.nodes) == 1:
            raise ValueError(
                f"cannot retire {node.name}: it is the last node of "
                f"region {region.name}; a region cannot shrink below "
                f"one node")
        yield from self.quiesce(region)
        while region.barrier_epochs_completed < region.client_epoch \
                or region.commit_barrier.n_waiting > 0:
            yield env.timeout(200e-6)
            yield from self.quiesce(region)
        departing_cp = next((cp for cp in region.commit_processes
                             if cp.node is node), None)
        survivor = next(n for n in region.nodes if n is not node)
        shard = region.remove_node(node)
        if departing_cp is not None:
            region.commit_processes.remove(departing_cp)
        # The node is alive (this is retirement, not a crash): read the
        # departing shard directly, then write each record to its new
        # ring home.
        entries = yield from shard.request(survivor, "scan_prefix", "")
        moved = 0
        for key, record in entries:
            try:
                yield from region.cache.shard_for(key).request(
                    survivor, "add", key, record)
                moved += 1
            except KeyExists:
                pass  # newer record already lives on the new home shard
        shard.kv.flush_all()
        return moved

    def retire_node(self, region: ConsistentRegion, node: Node) -> int:
        return run_sync(self.cluster.env,
                        self.retire_node_async(region, node),
                        label=f"retire:{region.name}")

    # -- component factories --------------------------------------------------
    def client(self, region: ConsistentRegion, node: Node,
               trace: bool = False) -> PaconClient:
        multiplier = region.config.aggregate_multiplier
        if multiplier > 1:
            return AggregateClient(region, node, multiplier, trace=trace)
        return PaconClient(region, node, trace=trace)

    def evictor(self, region: ConsistentRegion,
                node: Optional[Node] = None) -> EvictionManager:
        node = node or region.nodes[0]
        dfs_client = self.dfs.client(node, uid=region.config.uid,
                                     gid=region.config.gid)
        return EvictionManager(region, node, dfs_client)

    def checkpointer(self, region: ConsistentRegion,
                     node: Optional[Node] = None,
                     keep: int = 4) -> CheckpointManager:
        node = node or region.nodes[0]
        dfs_client = self.dfs.client(node, uid=region.config.uid,
                                     gid=region.config.gid)
        return CheckpointManager(region, node, dfs_client, keep=keep)

    # -- quiescing ---------------------------------------------------------------
    def quiesce(self, region: ConsistentRegion,
                poll_interval: float = 200e-6):
        """Generator: wait until every queued operation has committed.

        Dead commit processes (crashed, not yet restarted) are skipped:
        their queues only drain when :func:`repro.core.failure.recover_node`
        restarts the loop, so polling them would hang grow/retire/close
        forever after a chaos ``fail_node``.  Their backlog is recovery's
        responsibility, not quiescing's.
        """
        env = self.cluster.env
        while True:
            if all(cp.idle for cp in region.commit_processes
                   if not cp.dead):
                return
            yield env.timeout(poll_interval)

    def quiesce_sync(self, region: ConsistentRegion) -> None:
        run_sync(self.cluster.env, self.quiesce(region),
                 label=f"quiesce:{region.name}")


class PaconFS:
    """Synchronous, single-object facade over a full Pacon world.

    Builds a simulated cluster, a BeeGFS-like DFS, one consistent region on
    ``nodes`` client nodes, and drives every call to completion with the
    event loop hidden.  This is the five-minute on-ramp used by
    ``examples/quickstart.py``.
    """

    def __init__(self, workspace: str = "/workspace", nodes: int = 4,
                 config: Optional[PaconConfig] = None,
                 costs: Optional[CostModel] = None,
                 n_mds: int = 1, n_data: int = 3, seed: int = 0xC0FFEE):
        self.cluster = Cluster(costs=costs, seed=seed)
        self.dfs = BeeGFS(self.cluster, n_mds=n_mds, n_data=n_data)
        self.client_nodes = [self.cluster.add_node(f"client{i}")
                             for i in range(nodes)]
        if config is None:
            config = PaconConfig(workspace=workspace)
        elif config.workspace != workspace:
            raise ValueError("workspace argument and config.workspace differ")
        self.deployment = PaconDeployment(self.cluster, self.dfs)
        self.region = self.deployment.create_region(config, self.client_nodes)
        self._client = self.deployment.client(self.region,
                                              self.client_nodes[0])
        self._closed = False

    # -- sync wrappers -------------------------------------------------------
    def _run(self, gen, label: str):
        if self._closed:
            raise RuntimeError("PaconFS is closed")
        return run_sync(self.cluster.env, gen, label=label)

    def mkdir(self, path: str, mode: Optional[int] = None):
        return self._run(self._client.mkdir(path, mode), f"mkdir:{path}")

    def create(self, path: str, mode: Optional[int] = None):
        return self._run(self._client.create(path, mode), f"create:{path}")

    def rm(self, path: str) -> None:
        self._run(self._client.rm(path), f"rm:{path}")

    def rmdir(self, path: str) -> int:
        return self._run(self._client.rmdir(path), f"rmdir:{path}")

    def stat(self, path: str):
        return self._run(self._client.getattr(path), f"stat:{path}")

    def exists(self, path: str) -> bool:
        return self._run(self._client.exists(path), f"exists:{path}")

    def readdir(self, path: str) -> List[str]:
        return self._run(self._client.readdir(path), f"readdir:{path}")

    def write(self, path: str, offset: int = 0,
              data: Optional[bytes] = None,
              size: Optional[int] = None) -> int:
        return self._run(self._client.write(path, offset, data=data,
                                            size=size), f"write:{path}")

    def read(self, path: str, offset: int = 0, size: int = 1 << 20) -> bytes:
        return self._run(self._client.read(path, offset, size),
                         f"read:{path}")

    def fsync(self, path: str) -> None:
        self._run(self._client.fsync(path), f"fsync:{path}")

    def rename(self, src: str, dst: str) -> None:
        self._run(self._client.rename(src, dst), f"rename:{src}")

    def chmod(self, path: str, mode: int) -> None:
        self._run(self._client.chmod(path, mode), f"chmod:{path}")

    # -- lifecycle -----------------------------------------------------------------
    def quiesce(self) -> None:
        """Block until all asynchronous commits have reached the DFS."""
        self.deployment.quiesce_sync(self.region)

    def close(self) -> None:
        """Quiesce, then shut down commit processes."""
        if self._closed:
            return
        self.quiesce()
        self.region.close()
        self.cluster.env.run()
        self._closed = True

    def __enter__(self) -> "PaconFS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Simulated time consumed so far (seconds)."""
        return self.cluster.env.now

    def dfs_namespace_entries(self) -> int:
        return self.dfs.namespace.count_entries()

    def cache_items(self) -> int:
        return self.region.cache.total_items()
