"""Batch permission management (§III.C, Motivation 2).

Instead of checking r/w/x bits on every level of a path (which costs one
network round trip per level in a DFS), Pacon exploits two HPC facts:

1. all clients of an application use one system user, and
2. the application can predeclare the permissions of its workspace.

A region therefore carries a **normal permission** — the mode/owner that
applies to (almost) every file and directory in the workspace — plus a
**special permission list** for the exceptions.  A permission check then
costs one mode-bit match against the normal permission plus one scan of
the (short) special list, independent of path depth.

The check is *equivalent* to hierarchical traversal under the stated HPC
assumptions: because every non-special ancestor inside the region shares
the normal permission, checking EXECUTE once against the normal permission
answers for all of them; special ancestors are covered by the list scan.
(`tests/properties/test_permission_equivalence.py` verifies this against
the real namespace traversal.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dfs.inode import AccessMode, check_mode_bits
from repro.dfs.namespace import is_within, normalize_path, parent_of, split_path

__all__ = ["PermissionSpec", "RegionPermissions", "CheckReceipt"]


@dataclass(frozen=True)
class PermissionSpec:
    """(mode, owner uid, owner gid) for a file/directory class."""

    mode: int = 0o700
    uid: int = 1000
    gid: int = 1000

    def permits(self, uid: int, gid: int, want: AccessMode) -> bool:
        return check_mode_bits(self.mode, uid, gid, self.uid, self.gid, want)


@dataclass
class CheckReceipt:
    """Outcome + work performed by one batch permission check."""

    allowed: bool
    normal_checks: int = 0
    special_items_scanned: int = 0
    reason: str = ""


class RegionPermissions:
    """Normal + special permission information for one consistent region."""

    def __init__(self, workspace: str, normal: PermissionSpec,
                 special: Optional[Dict[str, PermissionSpec]] = None):
        self.workspace = normalize_path(workspace)
        self.normal = normal
        self._special: Dict[str, PermissionSpec] = {}
        for path, spec in (special or {}).items():
            self.add_special(path, spec)

    # -- special list maintenance -------------------------------------------
    def add_special(self, path: str, spec: PermissionSpec) -> None:
        path = normalize_path(path)
        if not is_within(path, self.workspace):
            raise ValueError(
                f"special permission {path!r} outside workspace"
                f" {self.workspace!r}")
        self._special[path] = spec

    def remove_special(self, path: str) -> None:
        self._special.pop(normalize_path(path), None)

    @property
    def special(self) -> Dict[str, PermissionSpec]:
        return dict(self._special)

    def effective(self, path: str) -> PermissionSpec:
        """The permission spec that governs ``path``."""
        return self._special.get(normalize_path(path), self.normal)

    # -- the batch check -------------------------------------------------------
    def check(self, path: str, uid: int, gid: int,
              want: AccessMode) -> CheckReceipt:
        """Check ``want`` access on ``path`` without path traversal.

        Search permission on all ancestors inside the region is validated
        with a single EXECUTE match on the normal permission plus one scan
        of the special list for ancestor overrides; ``want`` is then
        matched against the target's effective permission.
        """
        path = normalize_path(path)
        receipt = CheckReceipt(allowed=False)
        if not is_within(path, self.workspace):
            receipt.reason = "outside region"
            return receipt
        # 1) Region-wide search permission via the normal spec (one check
        #    answers for every non-special ancestor inside the region).
        receipt.normal_checks = 1
        if path != self.workspace:
            if not self.normal.permits(uid, gid, AccessMode.EXECUTE):
                # Every ancestor strictly inside the region carries the
                # normal spec unless overridden; if even one ancestor with
                # the normal spec exists on the path, access dies here.
                if self._has_normal_ancestor(path):
                    receipt.reason = "search permission (normal)"
                    return receipt
        # 2) Scan the special list for ancestor overrides.
        for special_path, spec in self._special.items():
            receipt.special_items_scanned += 1
            if special_path != path and is_within(path, special_path) \
                    and special_path != self.workspace:
                if not spec.permits(uid, gid, AccessMode.EXECUTE):
                    receipt.reason = f"search permission ({special_path})"
                    return receipt
        # 3) The target itself.  Search permission on the workspace root is
        #    granted by region membership (established at region creation),
        #    so only the non-EXECUTE bits are checked there.
        want_bits = int(want)
        if path == self.workspace:
            want_bits &= ~int(AccessMode.EXECUTE)
        target_spec = self._special.get(path, self.normal)
        if want_bits and not target_spec.permits(uid, gid,
                                                 AccessMode(want_bits)):
            receipt.reason = "target permission"
            return receipt
        receipt.allowed = True
        return receipt

    def check_op(self, op: str, path: str, uid: int,
                 gid: int) -> CheckReceipt:
        """Permission check for a named metadata operation.

        Mirrors what hierarchical traversal enforces: mutations need
        WRITE|EXECUTE on the parent directory; reads need the appropriate
        bit on the target.
        """
        path = normalize_path(path)
        if op in ("create", "mkdir", "rm", "unlink", "rmdir"):
            parent = parent_of(path) if split_path(path) else path
            receipt = self.check(parent, uid, gid,
                                 AccessMode.WRITE | AccessMode.EXECUTE)
            if not receipt.allowed:
                return receipt
            return receipt
        if op in ("getattr", "stat", "read"):
            # getattr needs traversal only; reading data needs READ.
            want = AccessMode.READ if op == "read" else AccessMode(0)
            if int(want) == 0:
                # Pure traversal: validated by the ancestor machinery; use
                # EXECUTE on the parent as the final gate.
                parent = parent_of(path) if split_path(path) else path
                return self.check(parent, uid, gid, AccessMode.EXECUTE)
            return self.check(path, uid, gid, want)
        if op in ("readdir",):
            return self.check(path, uid, gid, AccessMode.READ)
        if op in ("write", "setattr", "fsync"):
            return self.check(path, uid, gid, AccessMode.WRITE)
        raise ValueError(f"unknown operation {op!r}")

    def _has_normal_ancestor(self, path: str) -> bool:
        """True if some strict ancestor inside the region is non-special."""
        current = parent_of(path)
        while is_within(current, self.workspace) and \
                current != self.workspace:
            if current not in self._special:
                return True
            current = parent_of(current)
        return False

    # -- defaults -----------------------------------------------------------------
    @classmethod
    def linux_like_default(cls, workspace: str, uid: int,
                           gid: int) -> "RegionPermissions":
        """§III.C default: creator has full access to everything."""
        return cls(workspace, PermissionSpec(mode=0o700, uid=uid, gid=gid))

    def cost_items(self) -> Tuple[int, int]:
        """(normal checks, special list length) — for the cost model."""
        return 1, len(self._special)
