"""Post-recovery convergence invariants (§III.E, §III.G).

The convergence claim a chaos run must prove has three parts:

1. **Namespace convergence** — after recovery and quiesce, the committed
   namespace equals the one a fault-free run of the same seed produces.
   For loss-free faults (MDS crash with replay, partitions, planned
   churn) equality is byte-exact; for destructive faults (client-node
   crash) the faulty run's namespace must be a subset of the reference
   and the difference must be fully explained by the loss accounting.
2. **No stuck machinery** — every commit process is alive, idle, and
   unkilled; no barrier arrival is pending; every triggered epoch
   completed; queues are empty with no leaked waiter registrations.
3. **Exact loss accounting** — ``ops_submitted`` equals
   ``ops_committed + discarded + coalesced + lost``, where ``lost`` is
   the sum of :class:`~repro.core.failure.FailureReport` queued-op
   counts.  Nothing disappears without being counted.

Digests deliberately exclude inos and timestamps: a fault perturbs
commit order, and the DFS allocates inos in commit order, so only the
logical content (path, type, mode, ownership, size) is compared.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["namespace_entries", "namespace_digest", "InvariantReport",
           "check_convergence"]

#: One canonical namespace entry: (path, is_dir, mode, uid, gid, size).
Entry = Tuple[str, bool, int, int, int, int]


def namespace_entries(namespace, root: str = "/") -> List[Entry]:
    """Canonical, order-independent view of a committed subtree."""
    entries = []
    for path, inode in namespace.walk(root):
        entries.append((path, inode.is_dir, inode.mode, inode.uid,
                        inode.gid, inode.size))
    entries.sort()
    return entries


def namespace_digest(entries: List[Entry]) -> str:
    """Stable hex digest of a canonical entry list."""
    h = hashlib.sha256()
    for entry in entries:
        h.update(repr(entry).encode())
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class InvariantReport:
    """Outcome of one convergence check."""

    ok: bool
    digest: str
    problems: List[str] = field(default_factory=list)
    checks: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        lines = [f"convergence {status} (digest {self.digest[:12]})"]
        for name, value in sorted(self.checks.items()):
            lines.append(f"  {name}: {value}")
        for problem in self.problems:
            lines.append(f"  !! {problem}")
        return "\n".join(lines)


def check_convergence(region, dfs, *,
                      reference_entries: Optional[List[Entry]] = None,
                      lost_ops: int = 0,
                      require_identical: Optional[bool] = None,
                      ) -> InvariantReport:
    """Assert the region reconverged after fault injection + recovery.

    Call only after every fault has recovered and the region quiesced.
    ``reference_entries`` is the canonical namespace of a fault-free run
    of the same seed (see :func:`namespace_entries`); ``lost_ops`` is the
    total queued-op loss reported by failure injection.
    ``require_identical`` defaults to ``lost_ops == 0`` — loss-free
    faults must reproduce the reference byte-exactly, destructive faults
    must produce a subset of it.
    """
    problems: List[str] = []
    checks: Dict[str, Any] = {}

    # -- no stuck machinery -------------------------------------------------
    for cp in region.commit_processes:
        who = f"commit[{cp.node.name}]"
        if not cp.alive:
            problems.append(f"{who} is dead")
        if cp.killed:
            problems.append(f"{who} still flagged killed")
        if not cp.idle:
            problems.append(
                f"{who} not idle (queue={len(cp.queue)},"
                f" pending={len(cp._pending)}, in_flight={cp._in_flight})")
    checks["commit_processes"] = len(region.commit_processes)

    if region.commit_barrier.n_waiting != 0:
        problems.append(f"{region.commit_barrier.n_waiting} commit"
                        " processes stuck at the barrier")
    if region.barrier_epochs_completed != region.client_epoch:
        problems.append(
            f"barrier epochs incomplete:"
            f" {region.barrier_epochs_completed}/{region.client_epoch}")
    checks["barrier_epochs"] = region.barrier_epochs_completed

    leaked = 0
    for queue in region.queues.queues():
        if len(queue) != 0:
            problems.append(f"queue {queue.name} still holds"
                            f" {len(queue)} messages")
        # Exactly one blocked getter (the idle commit loop) is the steady
        # state; more means an aborted wait leaked its registration.
        if queue.waiting_getters > 1:
            leaked += queue.waiting_getters - 1
            problems.append(f"queue {queue.name} has"
                            f" {queue.waiting_getters} waiting getters"
                            " (leaked waiter)")
    checks["leaked_waiters"] = leaked

    # -- exact loss accounting ---------------------------------------------
    committed = region.ops_committed
    discarded = sum(cp.discarded for cp in region.commit_processes)
    coalesced = sum(cp.coalesced for cp in region.commit_processes)
    accounted = committed + discarded + coalesced + lost_ops
    checks["accounting"] = (f"{region.ops_submitted} submitted ="
                            f" {committed} committed + {discarded} discarded"
                            f" + {coalesced} coalesced + {lost_ops} lost")
    if region.ops_submitted != accounted:
        problems.append(
            f"loss accounting broken: {region.ops_submitted} submitted"
            f" != {accounted} accounted"
            f" (committed={committed}, discarded={discarded},"
            f" coalesced={coalesced}, lost={lost_ops})")

    # -- namespace convergence ----------------------------------------------
    entries = namespace_entries(dfs.namespace, region.workspace)
    digest = namespace_digest(entries)
    checks["entries"] = len(entries)
    if reference_entries is not None:
        ref_digest = namespace_digest(reference_entries)
        if require_identical is None:
            require_identical = lost_ops == 0
        if require_identical:
            if digest != ref_digest:
                extra = sorted(set(entries) - set(reference_entries))
                missing = sorted(set(reference_entries) - set(entries))
                problems.append(
                    f"namespace diverged from fault-free reference:"
                    f" {len(missing)} missing, {len(extra)} extra"
                    f" (e.g. missing={missing[:3]}, extra={extra[:3]})")
            checks["reference"] = "identical" if digest == ref_digest \
                else "DIVERGED"
        else:
            extra = sorted(set(entries) - set(reference_entries))
            if extra:
                problems.append(
                    f"faulty run committed {len(extra)} entries absent"
                    f" from the fault-free reference (e.g. {extra[:3]})")
            checks["reference"] = (f"subset ({len(reference_entries)} ref,"
                                   f" {len(entries)} faulty)")

    return InvariantReport(ok=not problems, digest=digest,
                           problems=problems, checks=checks)
